//! The paper's central experimental claim (§5): no single retrieval
//! strategy wins everywhere. This example sweeps k for one query and prints
//! the ERA / TA / ITA / Merge times side by side, the shape of one panel of
//! Figures 4–6.
//!
//! ```sh
//! cargo run --release --example strategy_tradeoffs
//! ```

use trex::corpus::{CorpusConfig, IeeeGenerator};
use trex::{EvalOptions, ListKind, Strategy, StrategyStats, TrexConfig, TrexSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let store = std::env::temp_dir().join(format!("trex-tradeoffs-{}.db", std::process::id()));
    let _ = std::fs::remove_file(&store);

    eprintln!("building IEEE-like collection…");
    let system = TrexSystem::build(
        TrexConfig::new(&store),
        IeeeGenerator::new(CorpusConfig {
            docs: 400,
            ..CorpusConfig::ieee_default()
        })
        .documents(),
    )?;

    let query = "//article//sec[about(., introduction information retrieval)]";
    system.materialize_for(query, ListKind::Both)?;

    // ERA and Merge compute all answers: one number each.
    let era = system.search_with(query, None, Strategy::Era)?;
    let merge = system.search_with(query, None, Strategy::Merge)?;
    println!("query: {query}");
    println!("answers: {}", era.total_answers);
    println!(
        "\nERA   (all answers): {:>10.3} ms",
        era.stats.wall().as_secs_f64() * 1e3
    );
    println!(
        "Merge (all answers): {:>10.3} ms",
        merge.stats.wall().as_secs_f64() * 1e3
    );

    // TA and ITA as functions of k.
    println!(
        "\n{:>8} {:>12} {:>12} {:>10} {:>16}",
        "k", "TA (ms)", "ITA (ms)", "depth", "entire lists?"
    );
    let mut k = 1usize;
    while k <= era.total_answers.max(1) * 2 {
        let result = system.engine().evaluate(
            query,
            EvalOptions::new()
                .k(k)
                .strategy(Strategy::Ta)
                .measure_heap(true),
        )?;
        if let StrategyStats::Ta(stats) = &result.stats {
            println!(
                "{:>8} {:>12.3} {:>12.3} {:>10} {:>16}",
                k,
                stats.wall.as_secs_f64() * 1e3,
                stats.ita_time().as_secs_f64() * 1e3,
                stats.sorted_accesses,
                stats.read_entire_lists,
            );
        }
        k *= 4;
    }

    println!("\nThe pattern of §5.2: TA is attractive only for small k; once k grows the\nentire RPLs are read and the heap/stop-condition overhead makes Merge win.");

    std::fs::remove_file(&store).ok();
    Ok(())
}
