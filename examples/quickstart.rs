//! Quickstart: build an index over a handful of XML documents and run a
//! NEXI query with each retrieval strategy.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use trex::{ListKind, Strategy, TrexConfig, TrexSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let store = std::env::temp_dir().join(format!("trex-quickstart-{}.db", std::process::id()));
    let _ = std::fs::remove_file(&store);

    // A miniature collection in the shape of the INEX IEEE corpus. Note the
    // ss1 tag: it is a synonym of sec and the alias summary collapses them.
    let documents = vec![
        r#"<article><fm><atl>XML retrieval systems</atl></fm>
            <bdy><sec>ranked xml query evaluation with structural summaries</sec>
                 <sec>inverted lists and posting layouts</sec></bdy></article>"#
            .to_string(),
        r#"<article><fm><atl>Databases</atl></fm>
            <bdy><ss1>query evaluation over relational storage</ss1>
                 <sec>transaction processing</sec></bdy></article>"#
            .to_string(),
        r#"<article><fm><atl>Information retrieval</atl></fm>
            <bdy><sec>keyword search and xml ranking with top-k indexes</sec></bdy></article>"#
            .to_string(),
    ];

    let system = TrexSystem::build(TrexConfig::new(&store), documents)?;

    let query = "//article//sec[about(., xml query evaluation)]";
    println!("query: {query}\n");

    // The translation phase: each root-to-about() path becomes sids + terms.
    let translation = system.engine().translate(query, Default::default())?;
    println!(
        "translation: {} sid(s) {:?}, {} term(s)",
        translation.sids.len(),
        translation.sids,
        translation.terms.len()
    );

    // 1. ERA needs no redundant indexes.
    let era = system.search_with(query, Some(5), Strategy::Era)?;
    println!("\nERA answers ({} total):", era.total_answers);
    for a in &era.answers {
        println!(
            "  doc {} end {} len {}  score {:.4}",
            a.element.doc, a.element.end, a.element.length, a.score
        );
    }

    // 2. Materialise the query's RPLs and ERPLs, then run TA and Merge.
    system.materialize_for(query, ListKind::Both)?;
    let ta = system.search_with(query, Some(5), Strategy::Ta)?;
    let merge = system.search_with(query, Some(5), Strategy::Merge)?;
    println!(
        "\nTA top-1    : doc {} score {:.4}",
        ta.answers[0].element.doc, ta.answers[0].score
    );
    println!(
        "Merge top-1 : doc {} score {:.4}",
        merge.answers[0].element.doc, merge.answers[0].score
    );

    // All three strategies agree on the ranking.
    assert_eq!(era.answers.len(), ta.answers.len());
    assert_eq!(era.answers[0].element, merge.answers[0].element);

    // 3. Auto picks a strategy based on what is materialised and k.
    let auto = system.search(query, Some(3))?;
    println!("\nAuto strategy used: {:?}", strategy_name(&auto));

    std::fs::remove_file(&store).ok();
    Ok(())
}

fn strategy_name(result: &trex::QueryResult) -> &'static str {
    match &result.stats {
        trex::StrategyStats::Era(_) => "ERA",
        trex::StrategyStats::Ta(_) => "TA",
        trex::StrategyStats::Merge(_) => "Merge",
        trex::StrategyStats::Race { .. } => "Race",
        trex::StrategyStats::Scatter { .. } => "Scatter",
    }
}
