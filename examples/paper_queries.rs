//! Reproduces the paper's Table 1 at a reduced scale: builds the synthetic
//! IEEE-like and Wikipedia-like collections, translates the seven INEX
//! queries, and reports #sids / #terms / #answers per query.
//!
//! ```sh
//! cargo run --release --example paper_queries [-- <ieee_docs> <wiki_docs>]
//! ```

use trex::corpus::{Collection, CorpusConfig, IeeeGenerator, WikiGenerator, PAPER_QUERIES};
use trex::{Strategy, TrexConfig, TrexSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let ieee_docs: usize = args.get(1).map_or(400, |s| s.parse().expect("ieee docs"));
    let wiki_docs: usize = args.get(2).map_or(800, |s| s.parse().expect("wiki docs"));

    let tmp = std::env::temp_dir();
    let ieee_store = tmp.join(format!("trex-paperq-ieee-{}.db", std::process::id()));
    let wiki_store = tmp.join(format!("trex-paperq-wiki-{}.db", std::process::id()));

    eprintln!("building IEEE-like collection ({ieee_docs} docs)…");
    let ieee = TrexSystem::build(
        TrexConfig::new(&ieee_store),
        IeeeGenerator::new(CorpusConfig {
            docs: ieee_docs,
            ..CorpusConfig::ieee_default()
        })
        .documents(),
    )?;

    eprintln!("building Wikipedia-like collection ({wiki_docs} docs)…");
    let wiki = {
        let mut config = TrexConfig::new(&wiki_store);
        config.alias = trex::AliasMap::inex_wiki();
        TrexSystem::build(
            config,
            WikiGenerator::new(CorpusConfig {
                docs: wiki_docs,
                ..CorpusConfig::wiki_default()
            })
            .documents(),
        )?
    };

    println!("\nTable 1 (synthetic scale: {ieee_docs} IEEE-like / {wiki_docs} Wiki-like docs)");
    println!(
        "{:>4}  {:<74} {:<5} {:>5} {:>6} {:>8}",
        "ID", "NEXI Expression", "Coll", "#sids", "#terms", "#answers"
    );
    for q in PAPER_QUERIES {
        let system = match q.collection {
            Collection::Ieee => &ieee,
            Collection::Wiki => &wiki,
        };
        let result = system.search_with(q.nexi, None, Strategy::Era)?;
        println!(
            "{:>4}  {:<74} {:<5} {:>5} {:>6} {:>8}",
            q.id,
            q.nexi,
            match q.collection {
                Collection::Ieee => "IEEE",
                Collection::Wiki => "Wiki",
            },
            result.translation.sids.len(),
            result.translation.terms.len(),
            result.total_answers,
        );
    }

    std::fs::remove_file(&ieee_store).ok();
    std::fs::remove_file(&wiki_store).ok();
    Ok(())
}
