//! The self-managing advisor (paper §4): give TReX a workload and a disk
//! budget; it measures per-query savings, solves the selection problem
//! (greedy and exact LP), materialises the chosen RPL/ERPL lists, and drops
//! the rest.
//!
//! ```sh
//! cargo run --release --example self_managing
//! ```

use trex::corpus::{CorpusConfig, IeeeGenerator};
use trex::{AdvisorOptions, SelectionMethod, TrexConfig, TrexSystem, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let store = std::env::temp_dir().join(format!("trex-selfmgmt-{}.db", std::process::id()));
    let _ = std::fs::remove_file(&store);

    eprintln!("building IEEE-like collection…");
    let system = TrexSystem::build(
        TrexConfig::new(&store),
        IeeeGenerator::new(CorpusConfig {
            docs: 250,
            ..CorpusConfig::ieee_default()
        })
        .documents(),
    )?;

    // A workload in the sense of Definition 4.1: frequencies sum to 1.
    let workload = Workload::from_weights(vec![
        (
            "//article//sec[about(., xml query evaluation)]".into(),
            5.0,
            10,
        ),
        (
            "//article[about(., ontologies)]//sec[about(., ontologies case study)]".into(),
            3.0,
            10,
        ),
        ("//sec[about(., code signing verification)]".into(), 2.0, 20),
    ])?;

    for (label, method) in [
        ("greedy (2-approximation, §4.2)", SelectionMethod::Greedy),
        ("exact boolean LP (§4.1)", SelectionMethod::Lp),
    ] {
        for budget in [4 * 1024u64, 64 * 1024, 4 * 1024 * 1024] {
            let report = system.advisor().apply(
                &workload,
                AdvisorOptions {
                    budget_bytes: budget,
                    method,
                    measure_runs: 1,
                },
            )?;
            println!("\n{label}, budget {budget} bytes:");
            for (i, (choice, wq)) in report
                .selection
                .choices
                .iter()
                .zip(workload.queries())
                .enumerate()
            {
                println!(
                    "  Q{i} (f={:.2}) {:<68} -> {:?}",
                    wq.frequency, wq.nexi, choice
                );
            }
            println!(
                "  kept {} bytes of redundant lists, dropped {} lists, expected saving {:.6}s per workload execution",
                report.bytes_used, report.lists_dropped, report.expected_saving
            );
            assert!(report.bytes_used <= budget || report.bytes_used == 0);
        }
    }

    std::fs::remove_file(&store).ok();
    Ok(())
}
