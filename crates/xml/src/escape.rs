//! Entity escaping and unescaping for the five predefined XML entities and
//! numeric character references.

use crate::error::{Result, XmlError, XmlErrorKind};

/// Escapes `text` for use as XML character data (`&`, `<`, `>`).
pub fn escape_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            other => out.push(other),
        }
    }
    out
}

/// Escapes `text` for use inside a double-quoted attribute value.
pub fn escape_attr(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
    out
}

/// Resolves the entity whose name (without `&`/`;`) is `name`.
///
/// Supports the five predefined entities and decimal / hexadecimal character
/// references. `offset` is used for error reporting.
pub fn resolve_entity(name: &str, offset: usize) -> Result<char> {
    match name {
        "amp" => Ok('&'),
        "lt" => Ok('<'),
        "gt" => Ok('>'),
        "quot" => Ok('"'),
        "apos" => Ok('\''),
        _ => {
            if let Some(body) = name.strip_prefix('#') {
                let code =
                    if let Some(hex) = body.strip_prefix('x').or_else(|| body.strip_prefix('X')) {
                        u32::from_str_radix(hex, 16)
                    } else {
                        body.parse::<u32>()
                    };
                code.ok().and_then(char::from_u32).ok_or_else(|| XmlError {
                    offset,
                    kind: XmlErrorKind::InvalidCharRef(body.to_string()),
                })
            } else {
                Err(XmlError {
                    offset,
                    kind: XmlErrorKind::UnknownEntity(name.to_string()),
                })
            }
        }
    }
}

/// Unescapes all entity and character references in `text`.
pub fn unescape(text: &str) -> Result<String> {
    if !text.contains('&') {
        return Ok(text.to_string());
    }
    let mut out = String::with_capacity(text.len());
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'&' {
            let rest = &text[i + 1..];
            let Some(end) = rest.find(';') else {
                return Err(XmlError {
                    offset: i,
                    kind: XmlErrorKind::UnexpectedEof("entity reference"),
                });
            };
            out.push(resolve_entity(&rest[..end], i)?);
            i += end + 2;
        } else {
            let c = text[i..].chars().next().expect("in-bounds char");
            out.push(c);
            i += c.len_utf8();
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_text_handles_specials() {
        assert_eq!(escape_text("a<b & c>d"), "a&lt;b &amp; c&gt;d");
        assert_eq!(escape_text("plain"), "plain");
    }

    #[test]
    fn escape_attr_also_escapes_quotes() {
        assert_eq!(escape_attr("say \"hi\""), "say &quot;hi&quot;");
    }

    #[test]
    fn unescape_round_trips_escape() {
        let original = "x < y && y > \"z\" 'w'";
        assert_eq!(unescape(&escape_attr(original)).unwrap(), original);
    }

    #[test]
    fn numeric_references_decimal_and_hex() {
        assert_eq!(unescape("&#65;&#x42;&#x63;").unwrap(), "ABc");
        assert_eq!(unescape("&#x20AC;").unwrap(), "\u{20AC}");
    }

    #[test]
    fn unknown_entity_is_an_error() {
        let e = unescape("&nbsp;").unwrap_err();
        assert!(matches!(e.kind, XmlErrorKind::UnknownEntity(ref n) if n == "nbsp"));
    }

    #[test]
    fn invalid_char_ref_is_an_error() {
        assert!(unescape("&#xD800;").is_err()); // surrogate
        assert!(unescape("&#99999999;").is_err());
        assert!(unescape("&#xZZ;").is_err());
    }

    #[test]
    fn unterminated_entity_is_an_error() {
        assert!(matches!(
            unescape("tail &amp").unwrap_err().kind,
            XmlErrorKind::UnexpectedEof(_)
        ));
    }

    #[test]
    fn multibyte_text_passes_through() {
        assert_eq!(unescape("héllo ☃ &amp; done").unwrap(), "héllo ☃ & done");
    }
}
