//! Parse errors with byte-offset context.

use std::fmt;

/// An XML parse error, carrying the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset into the input where the problem was found.
    pub offset: usize,
    /// What went wrong.
    pub kind: XmlErrorKind,
}

/// The kinds of parse failure the reader reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlErrorKind {
    /// Input ended inside a construct (tag, comment, CDATA, …).
    UnexpectedEof(&'static str),
    /// A character that cannot start or continue the current construct.
    Unexpected(char, &'static str),
    /// `</b>` closed `<a>`.
    MismatchedClose { expected: String, found: String },
    /// A close tag with no matching open tag.
    UnmatchedClose(String),
    /// Open tags left unclosed at end of input.
    UnclosedElements(usize),
    /// `&name;` where `name` is not a recognised entity.
    UnknownEntity(String),
    /// `&#...;` that does not denote a valid character.
    InvalidCharRef(String),
    /// An element or attribute name that is empty or starts illegally.
    InvalidName,
    /// The same attribute appeared twice on one tag.
    DuplicateAttribute(String),
    /// Document contains no root element.
    NoRootElement,
    /// Content after the root element closed.
    TrailingContent,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at byte {}: ", self.offset)?;
        match &self.kind {
            XmlErrorKind::UnexpectedEof(what) => write!(f, "unexpected end of input in {what}"),
            XmlErrorKind::Unexpected(c, what) => write!(f, "unexpected {c:?} in {what}"),
            XmlErrorKind::MismatchedClose { expected, found } => {
                write!(
                    f,
                    "mismatched close tag: expected </{expected}>, found </{found}>"
                )
            }
            XmlErrorKind::UnmatchedClose(name) => write!(f, "close tag </{name}> matches nothing"),
            XmlErrorKind::UnclosedElements(n) => write!(f, "{n} element(s) left unclosed"),
            XmlErrorKind::UnknownEntity(name) => write!(f, "unknown entity &{name};"),
            XmlErrorKind::InvalidCharRef(body) => {
                write!(f, "invalid character reference &#{body};")
            }
            XmlErrorKind::InvalidName => write!(f, "invalid XML name"),
            XmlErrorKind::DuplicateAttribute(name) => write!(f, "duplicate attribute {name}"),
            XmlErrorKind::NoRootElement => write!(f, "document has no root element"),
            XmlErrorKind::TrailingContent => write!(f, "content after root element"),
        }
    }
}

impl std::error::Error for XmlError {}

/// Result alias for XML parsing.
pub type Result<T> = std::result::Result<T, XmlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset_and_detail() {
        let e = XmlError {
            offset: 17,
            kind: XmlErrorKind::MismatchedClose {
                expected: "sec".into(),
                found: "article".into(),
            },
        };
        let s = e.to_string();
        assert!(s.contains("17"));
        assert!(s.contains("</sec>"));
        assert!(s.contains("</article>"));
    }
}
