//! Streaming (pull) XML parser.
//!
//! [`Reader`] walks a UTF-8 document and yields [`Event`]s. It checks
//! well-formedness (balanced tags, attribute syntax, entity validity) and
//! reports byte offsets, which the indexing layer uses only indirectly — the
//! retrieval positions in TReX are *token* offsets assigned later.
//!
//! Supported constructs: element tags with attributes, self-closing tags,
//! character data with entity/char references, CDATA sections, comments,
//! processing instructions, an XML declaration, and a DOCTYPE declaration
//! (skipped, including an internal subset). Namespaces are not interpreted;
//! a name like `xlink:href` is kept verbatim, matching how INEX-era systems
//! treated tags as plain strings.

use crate::error::{Result, XmlError, XmlErrorKind};
use crate::escape::{resolve_entity, unescape};

/// An attribute on a start tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name, verbatim.
    pub name: String,
    /// Attribute value with entities resolved.
    pub value: String,
}

/// A parse event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `<name attr="…">` or the opening half of `<name/>`.
    StartElement {
        /// Element name, verbatim.
        name: String,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
    },
    /// `</name>` or the closing half of `<name/>`.
    EndElement {
        /// Element name.
        name: String,
    },
    /// Character data (entities resolved). CDATA sections also arrive here.
    Text(String),
    /// `<!-- … -->` (content verbatim, without the delimiters).
    Comment(String),
    /// `<?target data?>` other than the XML declaration.
    ProcessingInstruction(String),
}

/// Pull parser over an in-memory document.
pub struct Reader<'a> {
    input: &'a str,
    pos: usize,
    stack: Vec<String>,
    seen_root: bool,
    /// Queued end event for a self-closing tag.
    pending_end: Option<String>,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `input`. A leading UTF-8 byte-order mark is
    /// skipped (editors and exporters commonly prepend one).
    pub fn new(input: &'a str) -> Reader<'a> {
        let pos = if input.starts_with('\u{feff}') { 3 } else { 0 };
        Reader {
            input,
            pos,
            stack: Vec::new(),
            seen_root: false,
            pending_end: None,
        }
    }

    /// Current byte offset into the input.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Depth of currently open elements.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    fn err<T>(&self, kind: XmlErrorKind) -> Result<T> {
        Err(XmlError {
            offset: self.pos,
            kind,
        })
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn starts_with(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_whitespace(&mut self) {
        let rest = self.rest();
        let trimmed = rest.trim_start();
        self.pos += rest.len() - trimmed.len();
    }

    /// Returns the next event, or `None` at a well-formed end of input.
    pub fn next_event(&mut self) -> Result<Option<Event>> {
        if let Some(name) = self.pending_end.take() {
            self.pop_stack(&name)?;
            return Ok(Some(Event::EndElement { name }));
        }
        loop {
            if self.pos >= self.input.len() {
                if !self.stack.is_empty() {
                    return self.err(XmlErrorKind::UnclosedElements(self.stack.len()));
                }
                if !self.seen_root {
                    return self.err(XmlErrorKind::NoRootElement);
                }
                return Ok(None);
            }
            if self.starts_with("<?") {
                let pi = self.read_pi()?;
                // Swallow the XML declaration; surface other PIs.
                if !pi.starts_with("xml ") && pi != "xml" {
                    return Ok(Some(Event::ProcessingInstruction(pi)));
                }
                continue;
            }
            if self.starts_with("<!--") {
                return Ok(Some(Event::Comment(self.read_comment()?)));
            }
            if self.starts_with("<![CDATA[") {
                return Ok(Some(Event::Text(self.read_cdata()?)));
            }
            if self.starts_with("<!DOCTYPE") {
                self.skip_doctype()?;
                continue;
            }
            if self.starts_with("</") {
                let name = self.read_close_tag()?;
                self.pop_stack(&name)?;
                return Ok(Some(Event::EndElement { name }));
            }
            if self.starts_with("<") {
                return self.read_open_tag().map(Some);
            }
            // Character data up to the next '<'.
            let text = self.read_text()?;
            if self.stack.is_empty() {
                // Outside the root only whitespace is allowed.
                if text.trim().is_empty() {
                    continue;
                }
                return self.err(if self.seen_root {
                    XmlErrorKind::TrailingContent
                } else {
                    XmlErrorKind::NoRootElement
                });
            }
            return Ok(Some(Event::Text(text)));
        }
    }

    fn pop_stack(&mut self, name: &str) -> Result<()> {
        match self.stack.pop() {
            Some(open) if open == name => Ok(()),
            Some(open) => self.err(XmlErrorKind::MismatchedClose {
                expected: open,
                found: name.to_string(),
            }),
            None => self.err(XmlErrorKind::UnmatchedClose(name.to_string())),
        }
    }

    fn read_text(&mut self) -> Result<String> {
        let rest = self.rest();
        let end = rest.find('<').unwrap_or(rest.len());
        let raw = &rest[..end];
        self.bump(end);
        unescape(raw).map_err(|mut e| {
            e.offset += self.pos - raw.len();
            e
        })
    }

    fn read_pi(&mut self) -> Result<String> {
        debug_assert!(self.starts_with("<?"));
        self.bump(2);
        let rest = self.rest();
        let Some(end) = rest.find("?>") else {
            return self.err(XmlErrorKind::UnexpectedEof("processing instruction"));
        };
        let body = rest[..end].to_string();
        self.bump(end + 2);
        Ok(body)
    }

    fn read_comment(&mut self) -> Result<String> {
        debug_assert!(self.starts_with("<!--"));
        self.bump(4);
        let rest = self.rest();
        let Some(end) = rest.find("-->") else {
            return self.err(XmlErrorKind::UnexpectedEof("comment"));
        };
        let body = rest[..end].to_string();
        self.bump(end + 3);
        Ok(body)
    }

    fn read_cdata(&mut self) -> Result<String> {
        debug_assert!(self.starts_with("<![CDATA["));
        self.bump(9);
        let rest = self.rest();
        let Some(end) = rest.find("]]>") else {
            return self.err(XmlErrorKind::UnexpectedEof("CDATA section"));
        };
        let body = rest[..end].to_string();
        self.bump(end + 3);
        Ok(body)
    }

    fn skip_doctype(&mut self) -> Result<()> {
        debug_assert!(self.starts_with("<!DOCTYPE"));
        self.bump(9);
        // Scan to the matching '>' — an internal subset may contain '[' … ']'.
        let mut in_subset = false;
        let rest = self.rest();
        for (i, c) in rest.char_indices() {
            match c {
                '[' => in_subset = true,
                ']' => in_subset = false,
                '>' if !in_subset => {
                    self.bump(i + 1);
                    return Ok(());
                }
                _ => {}
            }
        }
        self.err(XmlErrorKind::UnexpectedEof("DOCTYPE declaration"))
    }

    fn read_close_tag(&mut self) -> Result<String> {
        debug_assert!(self.starts_with("</"));
        self.bump(2);
        let name = self.read_name()?;
        self.skip_whitespace();
        if !self.starts_with(">") {
            let c = self.rest().chars().next().unwrap_or('\0');
            return self.err(XmlErrorKind::Unexpected(c, "close tag"));
        }
        self.bump(1);
        Ok(name)
    }

    fn read_open_tag(&mut self) -> Result<Event> {
        debug_assert!(self.starts_with("<"));
        self.bump(1);
        let name = self.read_name()?;
        let mut attributes: Vec<Attribute> = Vec::new();
        loop {
            self.skip_whitespace();
            if self.starts_with("/>") {
                self.bump(2);
                self.seen_root = true;
                self.stack.push(name.clone());
                self.pending_end = Some(name.clone());
                return Ok(Event::StartElement { name, attributes });
            }
            if self.starts_with(">") {
                self.bump(1);
                self.seen_root = true;
                self.stack.push(name.clone());
                return Ok(Event::StartElement { name, attributes });
            }
            if self.pos >= self.input.len() {
                return self.err(XmlErrorKind::UnexpectedEof("open tag"));
            }
            let attr = self.read_attribute()?;
            if attributes.iter().any(|a| a.name == attr.name) {
                return self.err(XmlErrorKind::DuplicateAttribute(attr.name));
            }
            attributes.push(attr);
        }
    }

    fn read_attribute(&mut self) -> Result<Attribute> {
        let name = self.read_name()?;
        self.skip_whitespace();
        if !self.starts_with("=") {
            let c = self.rest().chars().next().unwrap_or('\0');
            return self.err(XmlErrorKind::Unexpected(c, "attribute (expected '=')"));
        }
        self.bump(1);
        self.skip_whitespace();
        let quote = match self.rest().chars().next() {
            Some(q @ ('"' | '\'')) => q,
            Some(c) => return self.err(XmlErrorKind::Unexpected(c, "attribute value")),
            None => return self.err(XmlErrorKind::UnexpectedEof("attribute value")),
        };
        self.bump(1);
        let rest = self.rest();
        let Some(end) = rest.find(quote) else {
            return self.err(XmlErrorKind::UnexpectedEof("attribute value"));
        };
        let raw = &rest[..end];
        self.bump(end + 1);
        let value = unescape(raw).map_err(|mut e| {
            e.offset += self.pos - raw.len() - 1;
            e
        })?;
        Ok(Attribute { name, value })
    }

    fn read_name(&mut self) -> Result<String> {
        let rest = self.rest();
        let mut chars = rest.char_indices();
        match chars.next() {
            Some((_, c)) if is_name_start(c) => {}
            _ => return self.err(XmlErrorKind::InvalidName),
        }
        let mut end = rest.len();
        for (i, c) in chars {
            if !is_name_char(c) {
                end = i;
                break;
            }
        }
        let name = rest[..end].to_string();
        self.bump(end);
        Ok(name)
    }
}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || c == ':'
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | ':' | '-' | '.')
}

/// Resolves a standalone entity name — re-exported convenience for callers
/// that process raw text fragments themselves.
pub fn entity(name: &str) -> Result<char> {
    resolve_entity(name, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Result<Vec<Event>> {
        let mut r = Reader::new(input);
        let mut out = Vec::new();
        while let Some(e) = r.next_event()? {
            out.push(e);
        }
        Ok(out)
    }

    fn start(name: &str) -> Event {
        Event::StartElement {
            name: name.into(),
            attributes: vec![],
        }
    }

    fn end(name: &str) -> Event {
        Event::EndElement { name: name.into() }
    }

    #[test]
    fn simple_document() {
        let evs = events("<a><b>hi</b></a>").unwrap();
        assert_eq!(
            evs,
            vec![
                start("a"),
                start("b"),
                Event::Text("hi".into()),
                end("b"),
                end("a"),
            ]
        );
    }

    #[test]
    fn self_closing_emits_both_events() {
        let evs = events("<a><b/></a>").unwrap();
        assert_eq!(evs, vec![start("a"), start("b"), end("b"), end("a")]);
    }

    #[test]
    fn attributes_are_parsed_with_entities() {
        let evs = events(r#"<a x="1" y='two &amp; three'/>"#).unwrap();
        let Event::StartElement { attributes, .. } = &evs[0] else {
            panic!("expected start");
        };
        assert_eq!(attributes.len(), 2);
        assert_eq!(attributes[0].name, "x");
        assert_eq!(attributes[0].value, "1");
        assert_eq!(attributes[1].value, "two & three");
    }

    #[test]
    fn text_entities_are_resolved() {
        let evs = events("<a>x &lt; y &#65;</a>").unwrap();
        assert_eq!(evs[1], Event::Text("x < y A".into()));
    }

    #[test]
    fn cdata_is_verbatim_text() {
        let evs = events("<a><![CDATA[<raw> & stuff]]></a>").unwrap();
        assert_eq!(evs[1], Event::Text("<raw> & stuff".into()));
    }

    #[test]
    fn declaration_doctype_comments_and_pis() {
        let doc = r#"<?xml version="1.0"?>
<!DOCTYPE article [ <!ENTITY foo "bar"> ]>
<!-- header -->
<a><?target data?></a>"#;
        let evs = events(doc).unwrap();
        assert_eq!(
            evs,
            vec![
                Event::Comment(" header ".into()),
                start("a"),
                Event::ProcessingInstruction("target data".into()),
                end("a"),
            ]
        );
    }

    #[test]
    fn mismatched_close_is_rejected() {
        let e = events("<a><b></a></b>").unwrap_err();
        assert!(matches!(e.kind, XmlErrorKind::MismatchedClose { .. }));
    }

    #[test]
    fn unclosed_elements_are_rejected() {
        let e = events("<a><b>").unwrap_err();
        assert!(matches!(e.kind, XmlErrorKind::UnclosedElements(2)));
    }

    #[test]
    fn unmatched_close_is_rejected() {
        let e = events("<a></a></b>").unwrap_err();
        // After the root closed, `</b>` has no opener.
        assert!(matches!(
            e.kind,
            XmlErrorKind::UnmatchedClose(_) | XmlErrorKind::TrailingContent
        ));
    }

    #[test]
    fn trailing_content_is_rejected() {
        let e = events("<a/>tail").unwrap_err();
        assert!(matches!(e.kind, XmlErrorKind::TrailingContent));
    }

    #[test]
    fn empty_input_has_no_root() {
        let e = events("   ").unwrap_err();
        assert!(matches!(e.kind, XmlErrorKind::NoRootElement));
    }

    #[test]
    fn duplicate_attribute_is_rejected() {
        let e = events(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(matches!(e.kind, XmlErrorKind::DuplicateAttribute(_)));
    }

    #[test]
    fn whitespace_in_tags_is_tolerated() {
        let evs = events("<a  x = \"1\" ></a >").unwrap();
        assert_eq!(evs.len(), 2);
    }

    #[test]
    fn unicode_names_and_text() {
        let evs = events("<résumé>café ☕</résumé>").unwrap();
        assert_eq!(evs[0], start("résumé"));
        assert_eq!(evs[1], Event::Text("café ☕".into()));
    }

    #[test]
    fn deeply_nested_document() {
        let mut doc = String::new();
        for _ in 0..500 {
            doc.push_str("<d>");
        }
        doc.push('x');
        for _ in 0..500 {
            doc.push_str("</d>");
        }
        let evs = events(&doc).unwrap();
        assert_eq!(evs.len(), 1001);
    }

    #[test]
    fn utf8_bom_is_skipped() {
        let evs = events("\u{feff}<a>x</a>").unwrap();
        assert_eq!(evs.len(), 3);
        // BOM in the middle of text is content, not a marker.
        let evs = events("<a>x\u{feff}y</a>").unwrap();
        assert_eq!(evs[1], Event::Text("x\u{feff}y".into()));
    }

    #[test]
    fn depth_tracks_open_elements() {
        let mut r = Reader::new("<a><b/></a>");
        r.next_event().unwrap(); // <a>
        assert_eq!(r.depth(), 1);
        r.next_event().unwrap(); // <b>
        assert_eq!(r.depth(), 2);
        r.next_event().unwrap(); // </b>
        assert_eq!(r.depth(), 1);
    }
}
