//! Arena-based DOM built on top of the streaming [`crate::reader::Reader`].
//!
//! Nodes live in one `Vec` and are addressed by [`NodeId`], which keeps the
//! tree compact and traversals allocation-free — the summary builder walks
//! every element of every document.

use crate::error::Result;
use crate::escape::{escape_attr, escape_text};
use crate::reader::{Attribute, Event, Reader};

/// Index of a node within its [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Payload of a DOM node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// An element with its tag name and attributes.
    Element {
        /// Tag name, verbatim.
        name: String,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
    },
    /// A text node.
    Text(String),
}

/// A DOM node: payload plus tree links.
#[derive(Debug, Clone)]
pub struct Node {
    /// Element or text payload.
    pub kind: NodeKind,
    /// Parent node; `None` only for the root element.
    pub parent: Option<NodeId>,
    /// Children in document order (always empty for text nodes).
    pub children: Vec<NodeId>,
}

/// A parsed XML document.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
    root: NodeId,
}

impl Document {
    /// Parses `input` into a DOM. Comments and processing instructions are
    /// dropped; adjacent text runs (e.g. text + CDATA) are merged.
    pub fn parse(input: &str) -> Result<Document> {
        let mut reader = Reader::new(input);
        let mut nodes: Vec<Node> = Vec::new();
        let mut stack: Vec<NodeId> = Vec::new();
        let mut root: Option<NodeId> = None;

        while let Some(event) = reader.next_event()? {
            match event {
                Event::StartElement { name, attributes } => {
                    let id = NodeId(nodes.len() as u32);
                    nodes.push(Node {
                        kind: NodeKind::Element { name, attributes },
                        parent: stack.last().copied(),
                        children: Vec::new(),
                    });
                    if let Some(&parent) = stack.last() {
                        nodes[parent.0 as usize].children.push(id);
                    } else {
                        root = Some(id);
                    }
                    stack.push(id);
                }
                Event::EndElement { .. } => {
                    stack.pop();
                }
                Event::Text(text) => {
                    let Some(&parent) = stack.last() else {
                        continue;
                    };
                    // Merge with a preceding text sibling.
                    if let Some(&last) = nodes[parent.0 as usize].children.last() {
                        if let NodeKind::Text(existing) = &mut nodes[last.0 as usize].kind {
                            existing.push_str(&text);
                            continue;
                        }
                    }
                    let id = NodeId(nodes.len() as u32);
                    nodes.push(Node {
                        kind: NodeKind::Text(text),
                        parent: Some(parent),
                        children: Vec::new(),
                    });
                    nodes[parent.0 as usize].children.push(id);
                }
                Event::Comment(_) | Event::ProcessingInstruction(_) => {}
            }
        }

        Ok(Document {
            nodes,
            root: root.expect("reader guarantees a root element"),
        })
    }

    /// The root element.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Number of nodes (elements + text) in the document.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty (never true for a parsed document).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The element name of `id`, or `None` for a text node.
    pub fn name(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Element { name, .. } => Some(name),
            NodeKind::Text(_) => None,
        }
    }

    /// The value of attribute `attr` on element `id`.
    pub fn attribute(&self, id: NodeId, attr: &str) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Element { attributes, .. } => attributes
                .iter()
                .find(|a| a.name == attr)
                .map(|a| a.value.as_str()),
            NodeKind::Text(_) => None,
        }
    }

    /// Pre-order traversal of the subtree rooted at `id` (including `id`).
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            stack: vec![id],
        }
    }

    /// Concatenated text content of the subtree rooted at `id`.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        for node in self.descendants(id) {
            if let NodeKind::Text(t) = &self.node(node).kind {
                out.push_str(t);
            }
        }
        out
    }

    /// The chain of ancestors of `id`, nearest first (excluding `id`).
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors {
            doc: self,
            next: self.node(id).parent,
        }
    }

    /// Serialises the document back to XML (elements and text only).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write_node(self.root, &mut out);
        out
    }

    fn write_node(&self, id: NodeId, out: &mut String) {
        match &self.node(id).kind {
            NodeKind::Text(t) => out.push_str(&escape_text(t)),
            NodeKind::Element { name, attributes } => {
                out.push('<');
                out.push_str(name);
                for a in attributes {
                    out.push(' ');
                    out.push_str(&a.name);
                    out.push_str("=\"");
                    out.push_str(&escape_attr(&a.value));
                    out.push('"');
                }
                let children = &self.node(id).children;
                if children.is_empty() {
                    out.push_str("/>");
                } else {
                    out.push('>');
                    for &c in children {
                        self.write_node(c, out);
                    }
                    out.push_str("</");
                    out.push_str(name);
                    out.push('>');
                }
            }
        }
    }
}

/// Iterator returned by [`Document::descendants`].
pub struct Descendants<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        let children = &self.doc.node(id).children;
        self.stack.extend(children.iter().rev());
        Some(id)
    }
}

/// Iterator returned by [`Document::ancestors`].
pub struct Ancestors<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.next?;
        self.next = self.doc.node(id).parent;
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"<article id="7"><fm><atl>XML Retrieval</atl></fm><bdy><sec>first</sec><sec>second <b>bold</b></sec></bdy></article>"#;

    #[test]
    fn parse_builds_expected_shape() {
        let doc = Document::parse(DOC).unwrap();
        assert_eq!(doc.name(doc.root()), Some("article"));
        assert_eq!(doc.attribute(doc.root(), "id"), Some("7"));
        let children = &doc.node(doc.root()).children;
        assert_eq!(children.len(), 2);
        assert_eq!(doc.name(children[0]), Some("fm"));
        assert_eq!(doc.name(children[1]), Some("bdy"));
    }

    #[test]
    fn descendants_is_preorder() {
        let doc = Document::parse(DOC).unwrap();
        let names: Vec<_> = doc
            .descendants(doc.root())
            .filter_map(|id| doc.name(id).map(str::to_string))
            .collect();
        assert_eq!(
            names,
            vec!["article", "fm", "atl", "bdy", "sec", "sec", "b"]
        );
    }

    #[test]
    fn text_content_concatenates_subtree() {
        let doc = Document::parse(DOC).unwrap();
        let bdy = doc.node(doc.root()).children[1];
        assert_eq!(doc.text_content(bdy), "firstsecond bold");
    }

    #[test]
    fn ancestors_walk_to_root() {
        let doc = Document::parse(DOC).unwrap();
        let bdy = doc.node(doc.root()).children[1];
        let sec = doc.node(bdy).children[0];
        let chain: Vec<_> = doc
            .ancestors(sec)
            .filter_map(|id| doc.name(id).map(str::to_string))
            .collect();
        assert_eq!(chain, vec!["bdy", "article"]);
    }

    #[test]
    fn adjacent_text_runs_merge() {
        let doc = Document::parse("<a>one <![CDATA[two]]> three</a>").unwrap();
        let children = &doc.node(doc.root()).children;
        assert_eq!(children.len(), 1);
        assert_eq!(doc.text_content(doc.root()), "one two three");
    }

    #[test]
    fn to_xml_round_trips_structure() {
        let doc = Document::parse(DOC).unwrap();
        let serialised = doc.to_xml();
        let reparsed = Document::parse(&serialised).unwrap();
        assert_eq!(reparsed.to_xml(), serialised);
        assert_eq!(reparsed.len(), doc.len());
    }

    #[test]
    fn to_xml_escapes_specials() {
        let doc = Document::parse("<a x=\"q&quot;q\">1 &lt; 2</a>").unwrap();
        let s = doc.to_xml();
        assert!(s.contains("&quot;"), "{s}");
        assert!(s.contains("&lt;"), "{s}");
        Document::parse(&s).unwrap();
    }
}
