//! # trex-xml
//!
//! From-scratch XML parsing for TReX: a streaming pull parser ([`reader`]),
//! an arena DOM ([`dom`]), and entity escaping ([`escape`]).
//!
//! The INEX collections the paper evaluates on are plain XML without
//! namespace semantics, so names are treated verbatim. The parser enforces
//! well-formedness (balanced tags, attribute syntax, valid entities) because
//! the index builder trusts element nesting to compute element spans.
//!
//! ```
//! use trex_xml::Document;
//!
//! let doc = Document::parse("<article><sec>query evaluation</sec></article>").unwrap();
//! let root = doc.root();
//! assert_eq!(doc.name(root), Some("article"));
//! assert_eq!(doc.text_content(root), "query evaluation");
//! ```

pub mod dom;
pub mod error;
pub mod escape;
pub mod reader;

pub use dom::{Document, Node, NodeId, NodeKind};
pub use error::{Result, XmlError, XmlErrorKind};
pub use reader::{Attribute, Event, Reader};
