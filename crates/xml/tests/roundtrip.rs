//! Property tests: serialising any generated DOM and re-parsing it yields
//! the same document, and arbitrary text survives escaping.

use proptest::prelude::*;
use trex_xml::{escape, Document, NodeKind};

/// A strategy producing small random XML documents as strings, built
/// recursively from safe tag names and arbitrary text.
fn xml_tree() -> impl Strategy<Value = String> {
    let tag = proptest::sample::select(vec!["a", "b", "sec", "p", "article", "x1"]);
    let text = "[ -~]{0,20}"; // printable ASCII, escaped below
    let leaf = (tag.clone(), text)
        .prop_map(|(t, body)| format!("<{t}>{}</{t}>", escape::escape_text(&body)));
    leaf.prop_recursive(4, 64, 5, move |inner| {
        (
            proptest::sample::select(vec!["a", "b", "sec", "p", "article", "x1"]),
            proptest::collection::vec(inner, 0..4),
            "[ -~]{0,10}",
        )
            .prop_map(|(t, children, tail)| {
                format!(
                    "<{t}>{}{}</{t}>",
                    children.concat(),
                    escape::escape_text(&tail)
                )
            })
    })
}

fn shape(doc: &Document) -> Vec<(Option<String>, usize)> {
    doc.descendants(doc.root())
        .map(|id| {
            let name = doc.name(id).map(str::to_string);
            let children = doc.node(id).children.len();
            (name, children)
        })
        .collect()
}

proptest! {
    #[test]
    fn prop_parse_serialize_parse_is_identity(xml in xml_tree()) {
        let doc = Document::parse(&xml).unwrap();
        let serialised = doc.to_xml();
        let reparsed = Document::parse(&serialised).unwrap();
        prop_assert_eq!(shape(&doc), shape(&reparsed));
        prop_assert_eq!(doc.text_content(doc.root()), reparsed.text_content(reparsed.root()));
        // Serialisation is a fixed point after one round.
        prop_assert_eq!(reparsed.to_xml(), serialised);
    }

    #[test]
    fn prop_escape_unescape_round_trips(text in "\\PC{0,80}") {
        let escaped = escape::escape_attr(&text);
        prop_assert_eq!(escape::unescape(&escaped).unwrap(), text);
    }

    #[test]
    fn prop_parser_never_panics_on_arbitrary_input(input in "\\PC{0,200}") {
        // Errors are fine; panics are not.
        let _ = Document::parse(&input);
    }

    #[test]
    fn prop_reader_depth_balanced(xml in xml_tree()) {
        use trex_xml::{Event, Reader};
        let mut reader = Reader::new(&xml);
        let mut depth = 0i64;
        while let Some(event) = reader.next_event().unwrap() {
            match event {
                Event::StartElement { .. } => depth += 1,
                Event::EndElement { .. } => depth -= 1,
                _ => {}
            }
            prop_assert!(depth >= 0);
        }
        prop_assert_eq!(depth, 0);
    }
}

#[test]
fn text_nodes_never_adjacent_after_parse() {
    let doc = Document::parse("<a>one<b/>two<![CDATA[three]]>four</a>").unwrap();
    let children = &doc.node(doc.root()).children;
    let mut prev_text = false;
    for &c in children {
        let is_text = matches!(doc.node(c).kind, NodeKind::Text(_));
        assert!(!(prev_text && is_text), "adjacent text nodes must merge");
        prev_text = is_text;
    }
}
