//! Shared text generation for the collection generators.

use rand::rngs::StdRng;
use rand::Rng;

use crate::vocab::Vocabulary;
use crate::zipf::Zipf;

/// Generates sentences mixing Zipf-distributed background words with words
/// from the document's topic clusters.
pub struct TextGen<'a> {
    vocab: &'a Vocabulary,
    zipf: &'a Zipf,
    /// Topic clusters assigned to the current document.
    topics: Vec<usize>,
    /// Probability that a word is drawn from a topic cluster instead of the
    /// background vocabulary.
    topic_prob: f64,
}

impl<'a> TextGen<'a> {
    /// A generator for one document with the given topics.
    pub fn new(
        vocab: &'a Vocabulary,
        zipf: &'a Zipf,
        topics: Vec<usize>,
        topic_prob: f64,
    ) -> TextGen<'a> {
        TextGen {
            vocab,
            zipf,
            topics,
            topic_prob,
        }
    }

    /// One word.
    pub fn word(&self, rng: &mut StdRng) -> String {
        if !self.topics.is_empty() && rng.gen_bool(self.topic_prob) {
            let topic = self.topics[rng.gen_range(0..self.topics.len())];
            self.vocab.topic_word(topic, rng).to_string()
        } else {
            self.vocab.word(self.zipf.sample(rng)).to_string()
        }
    }

    /// A run of `n` space-separated words.
    pub fn words(&self, n: usize, rng: &mut StdRng) -> String {
        let mut out = String::with_capacity(n * 7);
        for i in 0..n {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&self.word(rng));
        }
        out
    }

    /// The topics of this document.
    pub fn topics(&self) -> &[usize] {
        &self.topics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn topical_documents_contain_topic_words() {
        let vocab = Vocabulary::new(500);
        let zipf = Zipf::new(500, 1.0);
        let gen = TextGen::new(&vocab, &zipf, vec![0], 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let text = gen.words(400, &mut rng);
        assert!(text.contains("ontologies") || text.contains("case") || text.contains("study"));
    }

    #[test]
    fn topic_free_documents_use_background_only() {
        let vocab = Vocabulary::new(500);
        let zipf = Zipf::new(500, 1.0);
        let gen = TextGen::new(&vocab, &zipf, vec![], 0.9);
        let mut rng = StdRng::seed_from_u64(3);
        let text = gen.words(200, &mut rng);
        assert!(!text.contains("ontologies"));
    }

    #[test]
    fn word_counts_match() {
        let vocab = Vocabulary::new(100);
        let zipf = Zipf::new(100, 1.0);
        let gen = TextGen::new(&vocab, &zipf, vec![1], 0.2);
        let mut rng = StdRng::seed_from_u64(9);
        let text = gen.words(25, &mut rng);
        assert_eq!(text.split_whitespace().count(), 25);
    }
}
