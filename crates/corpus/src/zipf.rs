//! Zipf-distributed rank sampling.
//!
//! Natural-language term frequencies follow a Zipf law; the background
//! vocabulary is sampled with it so posting-list lengths have the skew the
//! retrieval strategies' crossovers depend on (a handful of huge lists, a
//! long tail of short ones).

use rand::rngs::StdRng;
use rand::Rng;

/// A sampler over ranks `0..n` with `P(rank = r) ∝ 1 / (r + 1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative distribution, `cdf[r]` = P(rank ≤ r).
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `s` (≈1 for natural
    /// language).
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "need at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draws a rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        // Binary search for the first cdf entry ≥ u.
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler has no ranks (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn low_ranks_dominate() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[9] && counts[9] > counts[99]);
        // Rank 0 should take roughly 1/H(1000) ≈ 13% of the mass.
        assert!(counts[0] > 100_000 / 10);
    }

    #[test]
    fn samples_are_in_range() {
        let z = Zipf::new(5, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let z = Zipf::new(100, 1.0);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
