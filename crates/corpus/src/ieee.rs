//! The IEEE-like collection generator.
//!
//! Documents mirror the structure the paper's Figure 1 summarises:
//! `books/journal/article` with front matter (`fm/atl`, `fm/au`), a body of
//! sections tagged with the synonym family `sec`/`ss1`/`ss2` (so the alias
//! summaries have something to collapse), paragraphs from the `p`/`ip1`
//! family, figures, and back matter (`bm/app/sec`, `bm/bib/bb`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::text::TextGen;
use crate::vocab::Vocabulary;
use crate::zipf::Zipf;
use crate::CorpusConfig;

/// Generator for the IEEE-like collection.
pub struct IeeeGenerator {
    config: CorpusConfig,
    vocab: Vocabulary,
    zipf: Zipf,
}

impl IeeeGenerator {
    /// Creates a generator.
    pub fn new(config: CorpusConfig) -> IeeeGenerator {
        let vocab = Vocabulary::new(config.vocab_size);
        let zipf = Zipf::new(config.vocab_size, config.zipf_s);
        IeeeGenerator {
            config,
            vocab,
            zipf,
        }
    }

    /// Number of documents this generator produces.
    pub fn len(&self) -> usize {
        self.config.docs
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.config.docs == 0
    }

    /// Generates document `i` (deterministic in `(seed, i)`).
    pub fn document(&self, i: usize) -> String {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ (i as u64).wrapping_mul(0x9e37));
        let topics = self.pick_topics(i, &mut rng);
        let text = TextGen::new(&self.vocab, &self.zipf, topics, self.config.topic_prob);

        let mut xml = String::with_capacity(4096);
        xml.push_str("<books><journal><article>");

        // Front matter.
        xml.push_str("<fm><atl>");
        xml.push_str(&text.words(rng.gen_range(4..9), &mut rng));
        xml.push_str("</atl>");
        for _ in 0..rng.gen_range(1..4) {
            xml.push_str("<au>");
            xml.push_str(&text.words(2, &mut rng));
            xml.push_str("</au>");
        }
        xml.push_str("<abs>");
        xml.push_str(&text.words(rng.gen_range(25..60), &mut rng));
        xml.push_str("</abs></fm>");

        // Body.
        xml.push_str("<bdy>");
        let sections = rng.gen_range(3..9);
        for _ in 0..sections {
            self.section(&mut xml, &text, &mut rng, 0);
        }
        xml.push_str("</bdy>");

        // Back matter (sometimes).
        if rng.gen_bool(0.6) {
            xml.push_str("<bm>");
            if rng.gen_bool(0.4) {
                xml.push_str("<app><sec><st>");
                xml.push_str(&text.words(3, &mut rng));
                xml.push_str("</st><p>");
                xml.push_str(&text.words(rng.gen_range(20..50), &mut rng));
                xml.push_str("</p></sec></app>");
            }
            xml.push_str("<bib>");
            for _ in 0..rng.gen_range(3..10) {
                xml.push_str("<bb>");
                xml.push_str(&text.words(rng.gen_range(6..14), &mut rng));
                xml.push_str("</bb>");
            }
            xml.push_str("</bib></bm>");
        }

        xml.push_str("</article></journal></books>");
        xml
    }

    fn section(&self, xml: &mut String, text: &TextGen<'_>, rng: &mut StdRng, depth: usize) {
        // Synonym family: top-level prefers sec, nested prefer ss1/ss2.
        let tag = match (depth, rng.gen_range(0..10)) {
            (0, 0..=6) => "sec",
            (0, 7..=8) => "ss1",
            (0, _) => "ss2",
            (_, 0..=4) => "ss1",
            (_, _) => "ss2",
        };
        xml.push('<');
        xml.push_str(tag);
        xml.push('>');
        xml.push_str("<st>");
        xml.push_str(&text.words(rng.gen_range(2..6), rng));
        xml.push_str("</st>");
        for _ in 0..rng.gen_range(1..5) {
            let ptag = if rng.gen_bool(0.8) { "p" } else { "ip1" };
            xml.push('<');
            xml.push_str(ptag);
            xml.push('>');
            xml.push_str(&text.words(rng.gen_range(15..60), rng));
            xml.push_str("</");
            xml.push_str(ptag);
            xml.push('>');
        }
        if rng.gen_bool(0.15) {
            xml.push_str("<fig><fgc>");
            xml.push_str(&text.words(rng.gen_range(4..10), rng));
            xml.push_str("</fgc></fig>");
        }
        if depth == 0 && rng.gen_bool(0.35) {
            for _ in 0..rng.gen_range(1..3) {
                self.section(xml, text, rng, depth + 1);
            }
        }
        xml.push_str("</");
        xml.push_str(tag);
        xml.push('>');
    }

    fn pick_topics(&self, i: usize, rng: &mut StdRng) -> Vec<usize> {
        // The first 2×|topics| documents cycle through the clusters so every
        // Table 1 query has answers in any corpus of ≥ 16 documents.
        if i < 2 * self.vocab.topic_count() {
            return vec![i % self.vocab.topic_count()];
        }
        if !rng.gen_bool(self.config.topic_doc_fraction) {
            return Vec::new();
        }
        let n = if rng.gen_bool(0.3) { 2 } else { 1 };
        (0..n)
            .map(|_| rng.gen_range(0..self.vocab.topic_count()))
            .collect()
    }

    /// Iterator over all documents.
    pub fn documents(&self) -> impl Iterator<Item = String> + '_ {
        (0..self.config.docs).map(move |i| self.document(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_xml::Document;

    fn config(docs: usize) -> CorpusConfig {
        CorpusConfig {
            docs,
            seed: 42,
            ..CorpusConfig::ieee_default()
        }
    }

    #[test]
    fn documents_are_well_formed_xml() {
        let g = IeeeGenerator::new(config(25));
        for (i, doc) in g.documents().enumerate() {
            Document::parse(&doc).unwrap_or_else(|e| panic!("doc {i} malformed: {e}"));
        }
    }

    #[test]
    fn documents_are_deterministic() {
        let g1 = IeeeGenerator::new(config(5));
        let g2 = IeeeGenerator::new(config(5));
        assert_eq!(g1.document(3), g2.document(3));
        assert_ne!(g1.document(0), g1.document(1));
    }

    #[test]
    fn structure_contains_expected_paths_and_synonyms() {
        let g = IeeeGenerator::new(config(40));
        let all: String = g.documents().collect();
        for tag in [
            "<books>",
            "<journal>",
            "<article>",
            "<fm>",
            "<bdy>",
            "<sec>",
            "<ss1>",
            "<p>",
        ] {
            assert!(all.contains(tag), "missing {tag}");
        }
    }

    #[test]
    fn topic_words_appear_somewhere() {
        let g = IeeeGenerator::new(config(60));
        let all: String = g.documents().collect();
        let hits = ["ontologies", "music", "retrieval", "xml"]
            .iter()
            .filter(|w| all.contains(**w))
            .count();
        assert!(hits >= 3, "only {hits} topic families present");
    }
}
