//! The seven INEX queries of the paper's Table 1.

/// Which synthetic collection a query targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Collection {
    /// The IEEE-like collection (INEX 2005).
    Ieee,
    /// The Wikipedia-like collection (INEX 2006).
    Wiki,
}

/// One Table 1 row: INEX id, NEXI expression, target collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperQuery {
    /// The INEX topic id.
    pub id: u32,
    /// The NEXI expression, verbatim from Table 1.
    pub nexi: &'static str,
    /// The collection it runs on.
    pub collection: Collection,
}

/// Table 1 of the paper.
pub const PAPER_QUERIES: &[PaperQuery] = &[
    PaperQuery {
        id: 202,
        nexi: "//article[about(., ontologies)]//sec[about(., ontologies case study)]",
        collection: Collection::Ieee,
    },
    PaperQuery {
        id: 203,
        nexi: "//sec[about(., code signing verification)]",
        collection: Collection::Ieee,
    },
    PaperQuery {
        id: 233,
        nexi: "//article[about (.//bdy, synthesizers) and about (.//bdy, music)]",
        collection: Collection::Ieee,
    },
    PaperQuery {
        id: 260,
        nexi: "//bdy//*[about(., model checking state space explosion)]",
        collection: Collection::Ieee,
    },
    PaperQuery {
        id: 270,
        nexi: "//article//sec[about(., introduction information retrieval)]",
        collection: Collection::Ieee,
    },
    PaperQuery {
        id: 290,
        nexi: "//article[about(., \"genetic algorithm\")]",
        collection: Collection::Wiki,
    },
    PaperQuery {
        id: 292,
        nexi: "//article//figure[about(., Renaissance painting Italian Flemish -French -German)]",
        collection: Collection::Wiki,
    },
];

/// Looks up a paper query by INEX id.
pub fn paper_query(id: u32) -> Option<&'static PaperQuery> {
    PAPER_QUERIES.iter().find(|q| q.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_seven_queries_present() {
        assert_eq!(PAPER_QUERIES.len(), 7);
        let ieee = PAPER_QUERIES
            .iter()
            .filter(|q| q.collection == Collection::Ieee)
            .count();
        assert_eq!(ieee, 5);
    }

    #[test]
    fn lookup_by_id() {
        assert!(paper_query(260).is_some());
        assert_eq!(paper_query(290).unwrap().collection, Collection::Wiki);
        assert!(paper_query(999).is_none());
    }
}
