//! The Wikipedia-like collection generator.
//!
//! Flatter and more numerous than the IEEE-like documents, mirroring the
//! INEX 2006 Wikipedia collection the paper's queries 290 and 292 run on:
//! `article/{name, body/{p, section/{title, p, figure/caption}, template}}`,
//! with the `section1`/`subsection` and `image`/`picture` synonym families.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::text::TextGen;
use crate::vocab::Vocabulary;
use crate::zipf::Zipf;
use crate::CorpusConfig;

/// Generator for the Wikipedia-like collection.
pub struct WikiGenerator {
    config: CorpusConfig,
    vocab: Vocabulary,
    zipf: Zipf,
}

impl WikiGenerator {
    /// Creates a generator.
    pub fn new(config: CorpusConfig) -> WikiGenerator {
        let vocab = Vocabulary::new(config.vocab_size);
        let zipf = Zipf::new(config.vocab_size, config.zipf_s);
        WikiGenerator {
            config,
            vocab,
            zipf,
        }
    }

    /// Number of documents this generator produces.
    pub fn len(&self) -> usize {
        self.config.docs
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.config.docs == 0
    }

    /// Generates document `i` (deterministic in `(seed, i)`).
    pub fn document(&self, i: usize) -> String {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ (i as u64).wrapping_mul(0x51ed2701));
        let topics = self.pick_topics(i, &mut rng);
        let text = TextGen::new(&self.vocab, &self.zipf, topics, self.config.topic_prob);

        let mut xml = String::with_capacity(2048);
        xml.push_str("<article><name>");
        xml.push_str(&text.words(rng.gen_range(1..5), &mut rng));
        xml.push_str("</name><body>");

        // Lead paragraph.
        xml.push_str("<p>");
        xml.push_str(&text.words(rng.gen_range(20..50), &mut rng));
        xml.push_str("</p>");

        for _ in 0..rng.gen_range(1..6) {
            self.section(&mut xml, &text, &mut rng, 0);
        }

        if rng.gen_bool(0.3) {
            xml.push_str("<template>");
            xml.push_str(&text.words(rng.gen_range(4..12), &mut rng));
            xml.push_str("</template>");
        }

        xml.push_str("</body></article>");
        xml
    }

    /// One (possibly nested) section. Nesting varies the label paths of
    /// figures, so incoming summaries give `//article//figure` many sids —
    /// the shape of the paper's query 292 (1503 sids on the real corpus).
    fn section(&self, xml: &mut String, text: &TextGen<'_>, rng: &mut StdRng, depth: usize) {
        let tag = match rng.gen_range(0..10) {
            0..=6 => "section",
            7..=8 => "section1",
            _ => "subsection",
        };
        xml.push('<');
        xml.push_str(tag);
        xml.push('>');
        xml.push_str("<title>");
        xml.push_str(&text.words(rng.gen_range(1..4), rng));
        xml.push_str("</title>");
        for _ in 0..rng.gen_range(1..4) {
            xml.push_str("<p>");
            xml.push_str(&text.words(rng.gen_range(10..45), rng));
            xml.push_str("</p>");
        }
        if rng.gen_bool(0.25) {
            let ftag = match rng.gen_range(0..3) {
                0 => "figure",
                1 => "image",
                _ => "picture",
            };
            xml.push('<');
            xml.push_str(ftag);
            xml.push_str("><caption>");
            xml.push_str(&text.words(rng.gen_range(3..9), rng));
            xml.push_str("</caption></");
            xml.push_str(ftag);
            xml.push('>');
        }
        if depth < 2 && rng.gen_bool(0.3) {
            for _ in 0..rng.gen_range(1..3) {
                self.section(xml, text, rng, depth + 1);
            }
        }
        xml.push_str("</");
        xml.push_str(tag);
        xml.push('>');
    }

    fn pick_topics(&self, i: usize, rng: &mut StdRng) -> Vec<usize> {
        // Deterministic coverage of every topic in small corpora, as in the
        // IEEE-like generator.
        if i < 2 * self.vocab.topic_count() {
            return vec![i % self.vocab.topic_count()];
        }
        if !rng.gen_bool(self.config.topic_doc_fraction) {
            return Vec::new();
        }
        vec![rng.gen_range(0..self.vocab.topic_count())]
    }

    /// Iterator over all documents.
    pub fn documents(&self) -> impl Iterator<Item = String> + '_ {
        (0..self.config.docs).map(move |i| self.document(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_xml::Document;

    fn config(docs: usize) -> CorpusConfig {
        CorpusConfig {
            docs,
            seed: 7,
            ..CorpusConfig::wiki_default()
        }
    }

    #[test]
    fn documents_are_well_formed_xml() {
        let g = WikiGenerator::new(config(25));
        for (i, doc) in g.documents().enumerate() {
            Document::parse(&doc).unwrap_or_else(|e| panic!("doc {i} malformed: {e}"));
        }
    }

    #[test]
    fn structure_contains_figure_synonyms() {
        let g = WikiGenerator::new(config(80));
        let all: String = g.documents().collect();
        for tag in ["<article>", "<body>", "<section>", "<figure>", "<caption>"] {
            assert!(all.contains(tag), "missing {tag}");
        }
        assert!(all.contains("<image>") || all.contains("<picture>"));
    }

    #[test]
    fn deterministic_per_seed() {
        let g1 = WikiGenerator::new(config(3));
        let g2 = WikiGenerator::new(config(3));
        assert_eq!(g1.document(2), g2.document(2));
    }
}
