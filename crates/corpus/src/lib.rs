//! # trex-corpus
//!
//! Synthetic INEX-like XML collections for the TReX reproduction.
//!
//! The paper evaluates on the INEX 2005 IEEE collection and the INEX 2006
//! Wikipedia collection, neither of which is redistributable. This crate
//! generates structurally faithful stand-ins (see DESIGN.md §1 for the
//! substitution argument): deterministic, Zipf-skewed, with the synonym tag
//! families the alias summaries collapse, and with the paper's Table 1
//! query keywords injected as topic clusters so every query has answers.
//!
//! ```
//! use trex_corpus::{CorpusConfig, IeeeGenerator};
//!
//! let config = CorpusConfig { docs: 3, seed: 1, ..CorpusConfig::ieee_default() };
//! let generator = IeeeGenerator::new(config);
//! let doc = generator.document(0);
//! assert!(doc.starts_with("<books><journal><article>"));
//! ```

pub mod ieee;
pub mod queries;
pub mod text;
pub mod vocab;
pub mod wiki;
pub mod workloads;
pub mod zipf;

pub use ieee::IeeeGenerator;
pub use queries::{paper_query, Collection, PaperQuery, PAPER_QUERIES};
pub use vocab::{Vocabulary, TOPICS};
pub use wiki::WikiGenerator;
pub use workloads::{random_query, random_workload, WorkloadEntry};
pub use zipf::Zipf;

/// Configuration shared by the collection generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusConfig {
    /// Number of documents to generate.
    pub docs: usize,
    /// RNG seed; documents are deterministic in `(seed, index)`.
    pub seed: u64,
    /// Background vocabulary size.
    pub vocab_size: usize,
    /// Zipf exponent of the background term distribution.
    pub zipf_s: f64,
    /// Fraction of documents assigned topic clusters.
    pub topic_doc_fraction: f64,
    /// Within a topical document, probability a word comes from its topics.
    pub topic_prob: f64,
}

impl CorpusConfig {
    /// Defaults for the IEEE-like collection (laptop-scale: the real
    /// collection has 16,819 documents; the default generates 2,000 with
    /// the same structural shape — override `docs` to rescale).
    pub fn ieee_default() -> CorpusConfig {
        CorpusConfig {
            docs: 2_000,
            seed: 2005,
            vocab_size: 20_000,
            zipf_s: 1.0,
            topic_doc_fraction: 0.35,
            topic_prob: 0.18,
        }
    }

    /// Defaults for the Wikipedia-like collection (the real collection has
    /// 659,388 documents; the default generates 6,000 flatter ones).
    pub fn wiki_default() -> CorpusConfig {
        CorpusConfig {
            docs: 6_000,
            seed: 2006,
            vocab_size: 40_000,
            zipf_s: 1.05,
            topic_doc_fraction: 0.25,
            topic_prob: 0.15,
        }
    }
}
