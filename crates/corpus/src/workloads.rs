//! Random query-workload generation (paper Definition 4.1) for advisor
//! experiments and stress tests.
//!
//! Generated queries follow the shapes of Table 1 — a target path over the
//! collection's structure with one or two `about()` clauses drawing keywords
//! from the topic clusters — with Zipf-skewed frequencies, mirroring real
//! workloads where a few queries dominate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::vocab::TOPICS;
use crate::zipf::Zipf;
use crate::Collection;

/// One generated workload entry: (NEXI text, raw weight, k).
pub type WorkloadEntry = (String, f64, usize);

/// Generates `n` random top-k queries for `collection`, deterministic in
/// `seed`. Weights follow a Zipf law; pass the entries to
/// `trex_core::Workload::from_weights`.
pub fn random_workload(collection: Collection, n: usize, seed: u64) -> Vec<WorkloadEntry> {
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipf::new(n.max(1), 1.0);
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let nexi = random_query(collection, &mut rng);
        let weight = 1.0 / (zipf.sample(&mut rng) + 1) as f64;
        let k = [5usize, 10, 20, 50, 100][rng.gen_range(0..5usize)];
        entries.push((nexi, weight, k));
    }
    entries
}

/// One random NEXI query in the shapes of the paper's Table 1.
pub fn random_query(collection: Collection, rng: &mut StdRng) -> String {
    let (root, targets) = match collection {
        Collection::Ieee => ("article", ["sec", "p", "abs", "st", "*"]),
        Collection::Wiki => ("article", ["section", "p", "figure", "caption", "*"]),
    };
    let topic = TOPICS[rng.gen_range(0..TOPICS.len())];
    let word = |rng: &mut StdRng| topic[rng.gen_range(0..topic.len())];
    let keywords = |rng: &mut StdRng| {
        let n = rng.gen_range(1..4);
        (0..n).map(|_| word(rng)).collect::<Vec<_>>().join(" ")
    };

    match rng.gen_range(0..4) {
        // //target[about(., kws)]
        0 => {
            let target = targets[rng.gen_range(0..targets.len())];
            format!("//{target}[about(., {})]", keywords(rng))
        }
        // //root//target[about(., kws)]
        1 => {
            let target = targets[rng.gen_range(0..targets.len())];
            format!("//{root}//{target}[about(., {})]", keywords(rng))
        }
        // //root[about(., kws)]//target[about(., kws)]
        2 => {
            let target = targets[rng.gen_range(0..targets.len())];
            format!(
                "//{root}[about(., {})]//{target}[about(., {})]",
                keywords(rng),
                keywords(rng)
            )
        }
        // //root[about(.//x, kws) and about(.//x, kws)]
        _ => {
            let inner = targets[rng.gen_range(0..targets.len() - 1)]; // skip '*'
            format!(
                "//{root}[about(.//{inner}, {}) and about(.//{inner}, {})]",
                keywords(rng),
                keywords(rng)
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_sized() {
        let a = random_workload(Collection::Ieee, 12, 7);
        let b = random_workload(Collection::Ieee, 12, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        assert!(a.iter().all(|(_, w, k)| *w > 0.0 && *k > 0));
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_workload(Collection::Wiki, 8, 1);
        let b = random_workload(Collection::Wiki, 8, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn queries_use_collection_vocabulary() {
        let entries = random_workload(Collection::Ieee, 30, 3);
        for (nexi, _, _) in &entries {
            assert!(nexi.starts_with("//"), "{nexi}");
            assert!(nexi.contains("about("), "{nexi}");
        }
    }
}
