//! Synthetic vocabulary seeded with the paper's query terms.
//!
//! The INEX collections are not redistributable, so the generators build
//! documents from (a) a large synthetic background vocabulary drawn with a
//! Zipf distribution, and (b) *topic clusters* containing the exact keywords
//! of the paper's Table 1 queries, injected into a controlled fraction of
//! documents. This preserves what the experiments depend on: term-frequency
//! skew, and queries with non-trivial, differently-sized result sets.

use rand::rngs::StdRng;
use rand::Rng;

/// The topic clusters: each is the keyword set of one Table 1 query, plus a
/// few related filler words so topical paragraphs read plausibly.
pub const TOPICS: &[&[&str]] = &[
    // Query 202
    &["ontologies", "case", "study", "semantic", "knowledge"],
    // Query 203
    &[
        "code",
        "signing",
        "verification",
        "security",
        "certificates",
    ],
    // Query 233
    &["synthesizers", "music", "audio", "sound", "digital"],
    // Query 260
    &[
        "model",
        "checking",
        "state",
        "space",
        "explosion",
        "temporal",
    ],
    // Query 270
    &[
        "introduction",
        "information",
        "retrieval",
        "search",
        "ranking",
    ],
    // Query 290
    &["genetic", "algorithm", "evolution", "fitness", "population"],
    // Query 292
    &[
        "renaissance",
        "painting",
        "italian",
        "flemish",
        "french",
        "german",
        "portrait",
    ],
    // The running example of the paper's §1
    &["xml", "query", "evaluation", "index", "structure"],
];

/// A generated vocabulary: background words plus the topic clusters.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    background: Vec<String>,
}

const ONSETS: &[&str] = &[
    "b", "br", "c", "cr", "d", "dr", "f", "fl", "g", "gr", "h", "j", "k", "l", "m", "n", "p", "pl",
    "pr", "qu", "r", "s", "st", "str", "t", "tr", "v", "w", "z",
];
const NUCLEI: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "io", "ou"];
const CODAS: &[&str] = &["", "n", "m", "r", "s", "t", "l", "nd", "st", "rk", "x"];

impl Vocabulary {
    /// Builds a deterministic background vocabulary of `size` pronounceable
    /// pseudo-words (no randomness: word `i` is fixed forever, so corpora
    /// with different seeds share a vocabulary).
    pub fn new(size: usize) -> Vocabulary {
        let mut background = Vec::with_capacity(size);
        let mut i = 0usize;
        while background.len() < size {
            let word = Self::word_for(i);
            i += 1;
            background.push(word);
        }
        Vocabulary { background }
    }

    /// The `i`-th pseudo-word: 2–3 syllables derived from the index digits.
    fn word_for(mut i: usize) -> String {
        let mut w = String::new();
        let syllables = 2 + (i % 2);
        for _ in 0..syllables {
            w.push_str(ONSETS[i % ONSETS.len()]);
            i /= ONSETS.len();
            w.push_str(NUCLEI[i % NUCLEI.len()]);
            i /= NUCLEI.len();
            w.push_str(CODAS[i % CODAS.len()]);
            i /= CODAS.len();
        }
        w
    }

    /// Number of background words.
    pub fn len(&self) -> usize {
        self.background.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.background.is_empty()
    }

    /// The background word of Zipf rank `rank` (0 = most frequent).
    pub fn word(&self, rank: usize) -> &str {
        &self.background[rank % self.background.len()]
    }

    /// A random word from topic cluster `topic`.
    pub fn topic_word(&self, topic: usize, rng: &mut StdRng) -> &'static str {
        let cluster = TOPICS[topic % TOPICS.len()];
        cluster[rng.gen_range(0..cluster.len())]
    }

    /// Number of topic clusters.
    pub fn topic_count(&self) -> usize {
        TOPICS.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vocabulary_is_deterministic_and_distinct_enough() {
        let v1 = Vocabulary::new(5000);
        let v2 = Vocabulary::new(5000);
        assert_eq!(v1.word(0), v2.word(0));
        assert_eq!(v1.word(4999), v2.word(4999));
        let distinct: std::collections::HashSet<&str> = (0..5000).map(|i| v1.word(i)).collect();
        assert!(distinct.len() > 4500, "got {}", distinct.len());
    }

    #[test]
    fn words_are_lowercase_alphabetic() {
        let v = Vocabulary::new(1000);
        for i in 0..1000 {
            let w = v.word(i);
            assert!(!w.is_empty());
            assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{w}");
        }
    }

    #[test]
    fn topics_cover_all_table1_queries() {
        let all: Vec<&str> = TOPICS.iter().flat_map(|t| t.iter().copied()).collect();
        for kw in [
            "ontologies",
            "code",
            "signing",
            "synthesizers",
            "music",
            "model",
            "checking",
            "explosion",
            "retrieval",
            "genetic",
            "algorithm",
            "renaissance",
            "painting",
            "xml",
            "query",
            "evaluation",
        ] {
            assert!(all.contains(&kw), "missing topic keyword {kw}");
        }
    }

    #[test]
    fn topic_word_draws_from_cluster() {
        let v = Vocabulary::new(10);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let w = v.topic_word(0, &mut rng);
            assert!(TOPICS[0].contains(&w));
        }
    }
}
