//! Every generated workload query must be valid NEXI.

use trex_corpus::{random_workload, Collection};

#[test]
fn generated_queries_always_parse() {
    for seed in 0..20u64 {
        for collection in [Collection::Ieee, Collection::Wiki] {
            for (nexi, _, _) in random_workload(collection, 25, seed) {
                trex_nexi::parse(&nexi)
                    .unwrap_or_else(|e| panic!("generated query fails to parse: {nexi}: {e}"));
            }
        }
    }
}
