//! The Porter stemming algorithm (M.F. Porter, 1980), implemented from the
//! original paper's rule tables.
//!
//! INEX-era XML retrieval systems (including TopX, whose score model TReX
//! borrows) stem query and document terms with Porter; reproducing it keeps
//! term statistics comparable.
//!
//! The implementation operates on lowercase ASCII bytes; words containing
//! non-ASCII characters are returned unchanged (stemming rules are defined
//! for English only).
//!
//! The step functions intentionally mirror the rule tables of Porter (1980)
//! one-to-one (match on the penultimate letter, then an if-chain per rule),
//! so style lints that would restructure them are silenced.
#![allow(clippy::collapsible_match, clippy::if_same_then_else)]

/// Stems `word` with the Porter algorithm. Input is expected lowercase; the
/// output is always lowercase.
pub fn stem(word: &str) -> String {
    if !word.is_ascii() || word.len() <= 2 {
        return word.to_string();
    }
    let mut s = Stemmer {
        b: word.as_bytes().to_vec(),
        k: word.len() - 1,
        j: 0,
    };
    s.step1ab();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5();
    String::from_utf8(s.b[..=s.k].to_vec()).expect("ascii in, ascii out")
}

struct Stemmer {
    b: Vec<u8>,
    /// Index of the last valid byte of the (possibly shortened) word.
    k: usize,
    /// Length of the stem left when the last matched suffix is removed
    /// (set by `ends`). A length, not an index, so a suffix spanning the
    /// whole word gives `j == 0` rather than an underflow.
    j: usize,
}

impl Stemmer {
    /// True if b[i] is a consonant.
    fn cons(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => {
                if i == 0 {
                    true
                } else {
                    !self.cons(i - 1)
                }
            }
            _ => true,
        }
    }

    /// Measures the number of consonant sequences in the stem `b[0..j]`:
    /// `[C](VC)^m[V]` — returns m.
    fn m(&self) -> usize {
        let mut n = 0;
        let mut i = 0;
        loop {
            if i >= self.j {
                return n;
            }
            if !self.cons(i) {
                break;
            }
            i += 1;
        }
        i += 1;
        loop {
            loop {
                if i >= self.j {
                    return n;
                }
                if self.cons(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
            n += 1;
            loop {
                if i >= self.j {
                    return n;
                }
                if !self.cons(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
        }
    }

    /// True if the stem `b[0..j]` contains a vowel.
    fn vowel_in_stem(&self) -> bool {
        (0..self.j).any(|i| !self.cons(i))
    }

    /// True if b[i-1] == b[i] and both are consonants.
    fn double_cons(&self, i: usize) -> bool {
        i >= 1 && self.b[i] == self.b[i - 1] && self.cons(i)
    }

    /// True if b[i-2..=i] is consonant-vowel-consonant and the final
    /// consonant is not w, x or y — the `*o` condition.
    fn cvc(&self, i: usize) -> bool {
        if i < 2 || !self.cons(i) || self.cons(i - 1) || !self.cons(i - 2) {
            return false;
        }
        !matches!(self.b[i], b'w' | b'x' | b'y')
    }

    /// True if the word ends with `suffix`; sets `j` to the stem length.
    fn ends(&mut self, suffix: &[u8]) -> bool {
        let len = suffix.len();
        if len > self.k + 1 {
            return false;
        }
        if &self.b[self.k + 1 - len..=self.k] != suffix {
            return false;
        }
        self.j = self.k + 1 - len;
        true
    }

    /// Replaces the matched suffix (b[j..=k]) with `s`, adjusting `k`. The
    /// callers guarantee a non-empty result (empty replacements are guarded
    /// by `m() > 0`, which needs a non-empty stem).
    fn set_to(&mut self, s: &[u8]) {
        debug_assert!(self.j + s.len() >= 1);
        self.b.truncate(self.j);
        self.b.extend_from_slice(s);
        self.k = self.j + s.len() - 1;
    }

    /// `set_to` guarded by `m() > 0`.
    fn r(&mut self, s: &[u8]) {
        if self.m() > 0 {
            self.set_to(s);
        }
    }

    fn step1ab(&mut self) {
        // Step 1a
        if self.b[self.k] == b's' {
            if self.ends(b"sses") {
                self.k -= 2;
            } else if self.ends(b"ies") {
                self.set_to(b"i");
            } else if self.b[self.k - 1] != b's' {
                self.k -= 1;
            }
        }
        // Step 1b
        if self.ends(b"eed") {
            if self.m() > 0 {
                self.k -= 1;
            }
        } else if (self.ends(b"ed") || self.ends(b"ing")) && self.vowel_in_stem() {
            // vowel_in_stem guarantees j >= 1.
            self.k = self.j - 1;
            if self.ends(b"at") {
                self.set_to(b"ate");
            } else if self.ends(b"bl") {
                self.set_to(b"ble");
            } else if self.ends(b"iz") {
                self.set_to(b"ize");
            } else if self.double_cons(self.k) {
                if !matches!(self.b[self.k], b'l' | b's' | b'z') {
                    self.k -= 1;
                }
            } else if self.m() == 1 && self.cvc(self.k) {
                self.j = self.k + 1; // keep the whole current stem
                self.set_to(b"e");
            }
        }
    }

    fn step1c(&mut self) {
        if self.ends(b"y") && self.vowel_in_stem() {
            self.b[self.k] = b'i';
        }
    }

    fn step2(&mut self) {
        if self.k == 0 {
            return;
        }
        match self.b[self.k - 1] {
            b'a' => {
                if self.ends(b"ational") {
                    self.r(b"ate");
                } else if self.ends(b"tional") {
                    self.r(b"tion");
                }
            }
            b'c' => {
                if self.ends(b"enci") {
                    self.r(b"ence");
                } else if self.ends(b"anci") {
                    self.r(b"ance");
                }
            }
            b'e' => {
                if self.ends(b"izer") {
                    self.r(b"ize");
                }
            }
            b'l' => {
                if self.ends(b"bli") {
                    self.r(b"ble"); // departure from the 1980 paper, per Porter's own revision
                } else if self.ends(b"alli") {
                    self.r(b"al");
                } else if self.ends(b"entli") {
                    self.r(b"ent");
                } else if self.ends(b"eli") {
                    self.r(b"e");
                } else if self.ends(b"ousli") {
                    self.r(b"ous");
                }
            }
            b'o' => {
                if self.ends(b"ization") {
                    self.r(b"ize");
                } else if self.ends(b"ation") {
                    self.r(b"ate");
                } else if self.ends(b"ator") {
                    self.r(b"ate");
                }
            }
            b's' => {
                if self.ends(b"alism") {
                    self.r(b"al");
                } else if self.ends(b"iveness") {
                    self.r(b"ive");
                } else if self.ends(b"fulness") {
                    self.r(b"ful");
                } else if self.ends(b"ousness") {
                    self.r(b"ous");
                }
            }
            b't' => {
                if self.ends(b"aliti") {
                    self.r(b"al");
                } else if self.ends(b"iviti") {
                    self.r(b"ive");
                } else if self.ends(b"biliti") {
                    self.r(b"ble");
                }
            }
            b'g' => {
                if self.ends(b"logi") {
                    self.r(b"log"); // Porter's revision
                }
            }
            _ => {}
        }
    }

    fn step3(&mut self) {
        match self.b[self.k] {
            b'e' => {
                if self.ends(b"icate") {
                    self.r(b"ic");
                } else if self.ends(b"ative") {
                    self.r(b"");
                } else if self.ends(b"alize") {
                    self.r(b"al");
                }
            }
            b'i' => {
                if self.ends(b"iciti") {
                    self.r(b"ic");
                }
            }
            b'l' => {
                if self.ends(b"ical") {
                    self.r(b"ic");
                } else if self.ends(b"ful") {
                    self.r(b"");
                }
            }
            b's' => {
                if self.ends(b"ness") {
                    self.r(b"");
                }
            }
            _ => {}
        }
    }

    fn step4(&mut self) {
        if self.k == 0 {
            return;
        }
        let matched = match self.b[self.k - 1] {
            b'a' => self.ends(b"al"),
            b'c' => self.ends(b"ance") || self.ends(b"ence"),
            b'e' => self.ends(b"er"),
            b'i' => self.ends(b"ic"),
            b'l' => self.ends(b"able") || self.ends(b"ible"),
            b'n' => {
                self.ends(b"ant") || self.ends(b"ement") || self.ends(b"ment") || self.ends(b"ent")
            }
            b'o' => {
                // `ion` is stripped only after s or t — the last stem byte.
                (self.ends(b"ion") && self.j > 0 && matches!(self.b[self.j - 1], b's' | b't'))
                    || self.ends(b"ou")
            }
            b's' => self.ends(b"ism"),
            b't' => self.ends(b"ate") || self.ends(b"iti"),
            b'u' => self.ends(b"ous"),
            b'v' => self.ends(b"ive"),
            b'z' => self.ends(b"ize"),
            _ => false,
        };
        if matched && self.m() > 1 {
            // m() > 1 guarantees j >= 1.
            self.k = self.j - 1;
        }
    }

    fn step5(&mut self) {
        // Step 5a
        self.j = self.k;
        if self.b[self.k] == b'e' {
            let a = self.m();
            if a > 1 || (a == 1 && !self.cvc(self.k - 1)) {
                self.k -= 1;
            }
        }
        // Step 5b
        if self.b[self.k] == b'l' && self.double_cons(self.k) && self.m() > 1 {
            self.k -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fixtures from Porter's paper and the reference vocabulary.
    #[test]
    fn reference_fixtures() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(stem(input), expected, "stem({input})");
        }
    }

    #[test]
    fn retrieval_query_terms() {
        // Terms from the paper's Table 1 queries.
        assert_eq!(stem("ontologies"), "ontolog");
        assert_eq!(stem("evaluation"), "evalu");
        assert_eq!(stem("retrieval"), "retriev");
        assert_eq!(stem("signing"), "sign");
        assert_eq!(stem("verification"), "verif");
        assert_eq!(stem("synthesizers"), "synthes");
        assert_eq!(stem("checking"), "check");
        assert_eq!(stem("painting"), "paint");
        assert_eq!(stem("algorithm"), "algorithm");
    }

    #[test]
    fn short_words_pass_through() {
        assert_eq!(stem("a"), "a");
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("xml"), "xml");
    }

    #[test]
    fn non_ascii_passes_through() {
        assert_eq!(stem("müller"), "müller");
    }

    #[test]
    fn idempotent_on_most_query_vocabulary() {
        // Porter is not idempotent in general (e.g. "explosion" → "explos" →
        // "explo": the second pass treats the trailing s as a plural), but it
        // is for typical content words; pin that for the paper's vocabulary.
        for word in [
            "ontologies",
            "evaluation",
            "retrieval",
            "information",
            "painting",
            "renaissance",
        ] {
            let once = stem(word);
            assert_eq!(stem(&once), once, "stem must be idempotent for {word}");
        }
    }

    #[test]
    fn known_non_idempotent_case_documented() {
        assert_eq!(stem("explosion"), "explos");
        assert_eq!(stem("explos"), "explo");
    }
}
