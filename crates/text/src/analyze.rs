//! The analysis pipeline: tokenize → stopword filter → Porter stem.
//!
//! Positions are assigned to *every* token, including stopwords that are
//! subsequently dropped — element spans are measured in raw token offsets,
//! so dropping a stopword must not shift the positions of later terms.

use crate::porter::stem;
use crate::stopwords::is_stopword;
use crate::tokenize::{normalize_keyword, tokenize_from, Token};

/// Configuration of the analysis pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Analyzer {
    /// Drop stopwords (they still consume positions).
    pub remove_stopwords: bool,
    /// Apply the Porter stemmer to surviving tokens.
    pub stem: bool,
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer {
            remove_stopwords: true,
            stem: true,
        }
    }
}

impl Analyzer {
    /// Analyzer that indexes every token verbatim.
    pub fn verbatim() -> Analyzer {
        Analyzer {
            remove_stopwords: false,
            stem: false,
        }
    }

    /// Analyses `text`, assigning positions from `next_position`; returns the
    /// surviving terms and the next free position (which accounts for *all*
    /// tokens, dropped or not).
    pub fn analyze_from(&self, text: &str, next_position: u32) -> (Vec<Token>, u32) {
        let (raw, next) = tokenize_from(text, next_position);
        let mut out = Vec::with_capacity(raw.len());
        for token in raw {
            if self.remove_stopwords && is_stopword(&token.text) {
                continue;
            }
            let text = if self.stem {
                stem(&token.text)
            } else {
                token.text
            };
            out.push(Token {
                text,
                position: token.position,
            });
        }
        (out, next)
    }

    /// Analyses a single query keyword into its index form. Returns `None`
    /// for stopwords (when filtering) and for non-word input.
    pub fn analyze_keyword(&self, word: &str) -> Option<String> {
        let normalized = normalize_keyword(word)?;
        if self.remove_stopwords && is_stopword(&normalized) {
            return None;
        }
        Some(if self.stem {
            stem(&normalized)
        } else {
            normalized
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwords_are_dropped_but_consume_positions() {
        let a = Analyzer::default();
        let (tokens, next) = a.analyze_from("the query evaluation of XML", 0);
        let got: Vec<(String, u32)> = tokens.into_iter().map(|t| (t.text, t.position)).collect();
        assert_eq!(
            got,
            vec![
                ("queri".to_string(), 1),
                ("evalu".to_string(), 2),
                ("xml".to_string(), 4),
            ]
        );
        assert_eq!(next, 5);
    }

    #[test]
    fn verbatim_keeps_everything() {
        let a = Analyzer::verbatim();
        let (tokens, _) = a.analyze_from("The Query", 0);
        let got: Vec<String> = tokens.into_iter().map(|t| t.text).collect();
        assert_eq!(got, vec!["the", "query"]);
    }

    #[test]
    fn keyword_analysis_matches_document_analysis() {
        let a = Analyzer::default();
        let (doc_tokens, _) = a.analyze_from("ontologies", 0);
        assert_eq!(a.analyze_keyword("Ontologies").unwrap(), doc_tokens[0].text);
    }

    #[test]
    fn keyword_stopwords_vanish() {
        let a = Analyzer::default();
        assert_eq!(a.analyze_keyword("the"), None);
        assert_eq!(a.analyze_keyword("%%%"), None);
    }
}
