//! English stopword list.
//!
//! TReX drops stopwords at indexing and at query translation so the posting
//! lists and RPLs carry only content-bearing terms; the list is the classic
//! short SMART-derived set that INEX systems used.

use std::collections::HashSet;
use std::sync::OnceLock;

/// The raw stopword list (lowercase).
pub const STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "ought",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "with",
    "would",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

fn set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| STOPWORDS.iter().copied().collect())
}

/// Whether `word` (already lowercased) is a stopword.
pub fn is_stopword(word: &str) -> bool {
    set().contains(word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_stopwords_are_detected() {
        for w in ["the", "and", "of", "in", "is"] {
            assert!(is_stopword(w), "{w}");
        }
    }

    #[test]
    fn content_terms_are_not_stopwords() {
        for w in ["xml", "retrieval", "ontologies", "query"] {
            assert!(!is_stopword(w), "{w}");
        }
    }

    #[test]
    fn list_is_lowercase_and_deduplicated() {
        let mut seen = HashSet::new();
        for w in STOPWORDS {
            assert_eq!(*w, w.to_lowercase());
            assert!(seen.insert(*w), "duplicate stopword {w}");
        }
    }
}
