//! Content scoring for (element, term) pairs.
//!
//! TReX stores a precomputed relevance score in every RPL/ERPL entry (the
//! `ir` field of the paper's schemas). The paper delegates the score model to
//! "well-established IR techniques" (§1) and borrows its TA implementation
//! from TopX, whose model is a BM25 variant adapted to elements; we implement
//! that: term frequency saturation plus element-length normalisation, with a
//! document-level idf.
//!
//! The only property the retrieval algorithms rely on is that scores are
//! non-negative and combine monotonically (TA's threshold bound); any model
//! with those properties yields the same algorithmic behaviour.

/// BM25 parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoringParams {
    /// Term-frequency saturation (BM25 `k1`).
    pub k1: f32,
    /// Length-normalisation strength (BM25 `b`).
    pub b: f32,
}

impl Default for ScoringParams {
    fn default() -> Self {
        ScoringParams { k1: 1.2, b: 0.75 }
    }
}

/// Collection-level statistics gathered by the index builder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectionStats {
    /// Number of documents in the collection.
    pub doc_count: u32,
    /// Number of indexed elements.
    pub element_count: u64,
    /// Mean element length in tokens.
    pub avg_element_len: f32,
}

impl CollectionStats {
    /// Inverse document frequency of a term with document frequency `df`.
    ///
    /// The `+1` inside the logarithm keeps idf positive even for terms in
    /// more than half the documents, which TA requires (scores must be
    /// non-negative for the threshold to be an upper bound).
    pub fn idf(&self, df: u32) -> f32 {
        let n = self.doc_count as f32;
        let df = df.min(self.doc_count) as f32;
        (1.0 + (n - df + 0.5) / (df + 0.5)).ln()
    }
}

/// Scores one (element, term) pair.
///
/// * `tf` — occurrences of the term within the element's span;
/// * `df` — documents containing the term;
/// * `element_len` — element length in tokens.
pub fn score(
    params: &ScoringParams,
    stats: &CollectionStats,
    tf: u32,
    df: u32,
    element_len: u32,
) -> f32 {
    if tf == 0 {
        return 0.0;
    }
    let tf = tf as f32;
    let len_norm =
        1.0 - params.b + params.b * (element_len as f32 / stats.avg_element_len.max(f32::EPSILON));
    let tf_part = tf / (tf + params.k1 * len_norm);
    tf_part * stats.idf(df)
}

/// Combines per-term scores of one element into its aggregate score.
///
/// TReX "combines the scores from the iterators" (§3.3, §3.4) with summation,
/// the standard monotone aggregate for TA.
pub fn combine(scores: &[f32]) -> f32 {
    scores.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> CollectionStats {
        CollectionStats {
            doc_count: 1000,
            element_count: 50_000,
            avg_element_len: 120.0,
        }
    }

    #[test]
    fn zero_tf_scores_zero() {
        assert_eq!(score(&ScoringParams::default(), &stats(), 0, 10, 100), 0.0);
    }

    #[test]
    fn score_increases_with_tf() {
        let p = ScoringParams::default();
        let s = stats();
        let s1 = score(&p, &s, 1, 10, 100);
        let s2 = score(&p, &s, 2, 10, 100);
        let s8 = score(&p, &s, 8, 10, 100);
        assert!(s1 < s2 && s2 < s8);
    }

    #[test]
    fn score_saturates_in_tf() {
        let p = ScoringParams::default();
        let s = stats();
        let gain_low = score(&p, &s, 2, 10, 100) - score(&p, &s, 1, 10, 100);
        let gain_high = score(&p, &s, 20, 10, 100) - score(&p, &s, 19, 10, 100);
        assert!(gain_high < gain_low);
    }

    #[test]
    fn rare_terms_score_higher() {
        let p = ScoringParams::default();
        let s = stats();
        assert!(score(&p, &s, 3, 5, 100) > score(&p, &s, 3, 500, 100));
    }

    #[test]
    fn longer_elements_are_penalised() {
        let p = ScoringParams::default();
        let s = stats();
        assert!(score(&p, &s, 3, 50, 40) > score(&p, &s, 3, 50, 400));
    }

    #[test]
    fn idf_is_positive_even_for_ubiquitous_terms() {
        let s = stats();
        assert!(s.idf(1000) > 0.0);
        assert!(s.idf(0) > s.idf(1000));
        // df clamped to doc_count
        assert_eq!(s.idf(5000), s.idf(1000));
    }

    #[test]
    fn scores_are_finite_and_nonnegative() {
        let p = ScoringParams::default();
        let s = stats();
        for tf in [0u32, 1, 100, 10_000] {
            for df in [0u32, 1, 999, 1000] {
                for len in [0u32, 1, 100_000] {
                    let v = score(&p, &s, tf, df, len);
                    assert!(v.is_finite() && v >= 0.0, "tf={tf} df={df} len={len}");
                }
            }
        }
    }

    #[test]
    fn combine_is_sum() {
        assert_eq!(combine(&[1.0, 2.0, 3.5]), 6.5);
        assert_eq!(combine(&[]), 0.0);
    }
}
