//! Term dictionary: interns term strings to dense `TermId`s.
//!
//! All index tables key on `TermId` (the `token` field of the paper's table
//! schemas) rather than raw strings, keeping keys short and fixed-width.

use std::collections::HashMap;

/// Dense identifier of an interned term.
pub type TermId = u32;

/// A bidirectional term ↔ id map with a compact binary serialisation.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    terms: Vec<String>,
    ids: HashMap<String, TermId>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Dictionary {
        Dictionary::default()
    }

    /// Interns `term`, returning its id (existing or fresh).
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = self.terms.len() as TermId;
        self.terms.push(term.to_string());
        self.ids.insert(term.to_string(), id);
        id
    }

    /// Id of `term` if it has been interned.
    pub fn lookup(&self, term: &str) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// The term string for `id`.
    pub fn term(&self, id: TermId) -> Option<&str> {
        self.terms.get(id as usize).map(String::as_str)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (i as TermId, t.as_str()))
    }

    /// Serialises to a length-prefixed binary form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.terms.len() as u32).to_le_bytes());
        for term in &self.terms {
            out.extend_from_slice(&(term.len() as u16).to_le_bytes());
            out.extend_from_slice(term.as_bytes());
        }
        out
    }

    /// Inverse of [`Dictionary::encode`].
    pub fn decode(bytes: &[u8]) -> Option<Dictionary> {
        let count = u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?) as usize;
        let mut dict = Dictionary::new();
        let mut off = 4usize;
        for _ in 0..count {
            let len = u16::from_le_bytes(bytes.get(off..off + 2)?.try_into().ok()?) as usize;
            off += 2;
            let term = std::str::from_utf8(bytes.get(off..off + len)?).ok()?;
            off += len;
            dict.intern(term);
        }
        Some(dict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut d = Dictionary::new();
        let a = d.intern("xml");
        let b = d.intern("query");
        let a2 = d.intern("xml");
        assert_eq!(a, a2);
        assert_eq!((a, b), (0, 1));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn lookup_and_reverse_lookup() {
        let mut d = Dictionary::new();
        let id = d.intern("retrieval");
        assert_eq!(d.lookup("retrieval"), Some(id));
        assert_eq!(d.lookup("missing"), None);
        assert_eq!(d.term(id), Some("retrieval"));
        assert_eq!(d.term(999), None);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut d = Dictionary::new();
        for t in ["xml", "query", "evaluation", "ünïcode"] {
            d.intern(t);
        }
        let bytes = d.encode();
        let back = Dictionary::decode(&bytes).unwrap();
        assert_eq!(back.len(), d.len());
        for (id, term) in d.iter() {
            assert_eq!(back.term(id), Some(term));
            assert_eq!(back.lookup(term), Some(id));
        }
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut d = Dictionary::new();
        d.intern("term");
        let bytes = d.encode();
        assert!(Dictionary::decode(&bytes[..bytes.len() - 1]).is_none());
        assert!(Dictionary::decode(&[1, 2]).is_none());
    }
}
