//! # trex-text
//!
//! IR text substrate for TReX: tokenisation with positions ([`mod@tokenize`]),
//! the analysis pipeline ([`analyze`]), a stopword list ([`stopwords`]), the
//! Porter stemmer ([`porter`]), a term dictionary ([`dictionary`]) and the
//! BM25-style content scoring model ([`scoring`]).
//!
//! ```
//! use trex_text::Analyzer;
//!
//! let analyzer = Analyzer::default();
//! let (terms, next) = analyzer.analyze_from("the evaluation of XML queries", 0);
//! let words: Vec<&str> = terms.iter().map(|t| t.text.as_str()).collect();
//! assert_eq!(words, ["evalu", "xml", "queri"]);
//! assert_eq!(next, 5); // stopwords still consume positions
//! ```

pub mod analyze;
pub mod dictionary;
pub mod porter;
pub mod scoring;
pub mod stopwords;
pub mod tokenize;

pub use analyze::Analyzer;
pub use dictionary::{Dictionary, TermId};
pub use porter::stem;
pub use scoring::{combine, score, CollectionStats, ScoringParams};
pub use stopwords::is_stopword;
pub use tokenize::{tokenize, tokenize_from, Token};
