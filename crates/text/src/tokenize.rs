//! Word tokenizer with token positions.
//!
//! TReX identifies term occurrences by *token offset* within a document
//! (the `offset` field of `PostingLists`, paper §2.2). The tokenizer is
//! therefore the single authority on positions: every component — element
//! spans, posting lists, ERA's cursor walk — counts positions the same way.

/// A token: the normalised (lowercased) word plus its token offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lowercased word.
    pub text: String,
    /// Zero-based token offset within the enclosing document.
    pub position: u32,
}

/// Splits `text` into lowercase alphanumeric word tokens, assigning
/// positions starting at `next_position`. Returns the tokens and the next
/// free position.
///
/// Rules: a token is a maximal run of alphanumeric characters; everything
/// else separates tokens. Unicode letters are kept (lowercased); digits are
/// kept. This matches the "keyword" granularity of NEXI `about()` terms.
pub fn tokenize_from(text: &str, next_position: u32) -> (Vec<Token>, u32) {
    let mut tokens = Vec::new();
    let mut pos = next_position;
    let mut current = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            for lc in c.to_lowercase() {
                current.push(lc);
            }
        } else if !current.is_empty() {
            tokens.push(Token {
                text: std::mem::take(&mut current),
                position: pos,
            });
            pos += 1;
        }
    }
    if !current.is_empty() {
        tokens.push(Token {
            text: current,
            position: pos,
        });
        pos += 1;
    }
    (tokens, pos)
}

/// Convenience wrapper starting positions at zero.
pub fn tokenize(text: &str) -> Vec<Token> {
    tokenize_from(text, 0).0
}

/// Lowercases and returns the single-token form of a query keyword, or
/// `None` if the keyword contains no alphanumeric characters.
pub fn normalize_keyword(word: &str) -> Option<String> {
    let toks = tokenize(word);
    toks.into_iter().next().map(|t| t.text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(text: &str) -> Vec<String> {
        tokenize(text).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        assert_eq!(
            words("Query-evaluation, in XML!"),
            vec!["query", "evaluation", "in", "xml"]
        );
    }

    #[test]
    fn positions_are_consecutive() {
        let toks = tokenize("a b c");
        let positions: Vec<u32> = toks.iter().map(|t| t.position).collect();
        assert_eq!(positions, vec![0, 1, 2]);
    }

    #[test]
    fn tokenize_from_continues_positions() {
        let (toks, next) = tokenize_from("one two", 10);
        assert_eq!(toks[0].position, 10);
        assert_eq!(toks[1].position, 11);
        assert_eq!(next, 12);
    }

    #[test]
    fn digits_are_tokens() {
        assert_eq!(words("ieee 2005 inex"), vec!["ieee", "2005", "inex"]);
    }

    #[test]
    fn empty_and_symbol_only_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("--- ***").is_empty());
        let (toks, next) = tokenize_from("...", 5);
        assert!(toks.is_empty());
        assert_eq!(next, 5);
    }

    #[test]
    fn unicode_is_lowercased() {
        assert_eq!(words("Müller Страница"), vec!["müller", "страница"]);
    }

    #[test]
    fn normalize_keyword_extracts_first_token() {
        assert_eq!(normalize_keyword("XML"), Some("xml".into()));
        assert_eq!(normalize_keyword("\"signing\""), Some("signing".into()));
        assert_eq!(normalize_keyword("!!"), None);
    }
}
