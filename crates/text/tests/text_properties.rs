//! Property tests of the text pipeline: tokenizer positions, stemmer
//! sanity, dictionary invariants.

use proptest::prelude::*;
use trex_text::{stem, tokenize, Analyzer, Dictionary};

proptest! {
    /// Token positions are strictly increasing and contiguous from 0.
    #[test]
    fn prop_tokenize_positions_are_dense(text in "\\PC{0,200}") {
        let tokens = tokenize(&text);
        for (i, t) in tokens.iter().enumerate() {
            prop_assert_eq!(t.position as usize, i);
            prop_assert!(!t.text.is_empty());
            prop_assert!(t.text.chars().all(|c| c.is_alphanumeric()));
            prop_assert_eq!(&t.text.to_lowercase(), &t.text);
        }
    }

    /// The analyzer's surviving tokens are a subsequence of the raw tokens'
    /// positions, and the final position count is unchanged by filtering.
    #[test]
    fn prop_analyzer_preserves_position_space(text in "[a-zA-Z ,.]{0,200}") {
        let raw = tokenize(&text);
        let (filtered, next) = Analyzer::default().analyze_from(&text, 0);
        prop_assert_eq!(next as usize, raw.len());
        let raw_positions: Vec<u32> = raw.iter().map(|t| t.position).collect();
        let mut last = None;
        for t in &filtered {
            prop_assert!(raw_positions.contains(&t.position));
            if let Some(prev) = last {
                prop_assert!(t.position > prev, "positions strictly increase");
            }
            last = Some(t.position);
        }
    }

    /// Stemming never panics, never grows a word by more than the `-e`
    /// restorations, and always yields lowercase ASCII for ASCII input.
    #[test]
    fn prop_stem_is_sane(word in "[a-z]{1,20}") {
        let stemmed = stem(&word);
        prop_assert!(!stemmed.is_empty());
        prop_assert!(stemmed.len() <= word.len() + 1, "{word} -> {stemmed}");
        prop_assert!(stemmed.chars().all(|c| c.is_ascii_lowercase()));
    }

    /// Stemming arbitrary (possibly non-ASCII) input never panics.
    #[test]
    fn prop_stem_never_panics(word in "\\PC{0,30}") {
        let _ = stem(&word);
    }

    /// Dictionary interning is stable and the codec round-trips.
    #[test]
    fn prop_dictionary_round_trip(terms in proptest::collection::vec("[a-z]{1,10}", 0..50)) {
        let mut dict = Dictionary::new();
        let ids: Vec<u32> = terms.iter().map(|t| dict.intern(t)).collect();
        // Re-interning gives the same ids.
        for (t, &id) in terms.iter().zip(&ids) {
            prop_assert_eq!(dict.intern(t), id);
            prop_assert_eq!(dict.lookup(t), Some(id));
            prop_assert_eq!(dict.term(id), Some(t.as_str()));
        }
        let decoded = Dictionary::decode(&dict.encode()).unwrap();
        prop_assert_eq!(decoded.len(), dict.len());
        for (t, &id) in terms.iter().zip(&ids) {
            prop_assert_eq!(decoded.lookup(t), Some(id));
        }
    }
}

#[test]
fn analyzer_keyword_agrees_with_document_pipeline_for_ascii_words() {
    // The invariant query translation relies on: analysing a keyword gives
    // the same index form as the same word inside a document.
    let analyzer = Analyzer::default();
    for word in ["Retrieval", "ONTOLOGIES", "checking", "state", "xml"] {
        let doc_form = analyzer
            .analyze_from(word, 0)
            .0
            .first()
            .map(|t| t.text.clone());
        let kw_form = analyzer.analyze_keyword(word);
        assert_eq!(doc_form, kw_form, "{word}");
    }
}
