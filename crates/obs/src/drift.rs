//! Live cost-model drift monitoring: turns the offline `validate_costs`
//! check into a continuous production signal.
//!
//! On every traced-or-sampled query the engine compares the §4 model's
//! predicted access counts against the actual counters from the query's
//! trace and feeds the *relative error* `|measured − predicted| /
//! max(predicted, 1)` into one of four slots — TA and Merge, each at entry
//! and block granularity. Each slot keeps an EWMA gauge (fast to read, no
//! lock) and a log-bucketed error histogram (recorded in **milli-error**
//! units: 1000 = the prediction was off by 1×). When a single observation
//! exceeds the settable alert threshold, `cost_model_drift_alerts`
//! increments — the operator-facing "the model no longer matches the data"
//! tripwire.
//!
//! The monitor follows the relaxed-atomics discipline of the counter layer:
//! one CAS loop per EWMA update, one `fetch_add` per histogram record, and
//! a cheap `should_sample()` so untraced traffic still feeds it at 1-in-N
//! cost.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::hist::Histogram;
use crate::{json_field, Counter, ToJson};

/// Which predicted-vs-measured comparison an observation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// TA sorted+random accesses vs. the Fagin bound (entry level).
    TaEntries,
    /// RPL block fetches vs. predicted TA block reads.
    TaBlocks,
    /// Merge accesses vs. total ERPL entries (exact by construction).
    MergeEntries,
    /// ERPL block fetches vs. predicted Merge block reads.
    MergeBlocks,
}

/// The four slots, in rendering order.
pub const DRIFT_KINDS: [DriftKind; 4] = [
    DriftKind::TaEntries,
    DriftKind::TaBlocks,
    DriftKind::MergeEntries,
    DriftKind::MergeBlocks,
];

impl DriftKind {
    /// Stable exposition name (`ta_entries`, `merge_blocks`, ...).
    pub fn as_str(&self) -> &'static str {
        match self {
            DriftKind::TaEntries => "ta_entries",
            DriftKind::TaBlocks => "ta_blocks",
            DriftKind::MergeEntries => "merge_entries",
            DriftKind::MergeBlocks => "merge_blocks",
        }
    }

    fn index(&self) -> usize {
        match self {
            DriftKind::TaEntries => 0,
            DriftKind::TaBlocks => 1,
            DriftKind::MergeEntries => 2,
            DriftKind::MergeBlocks => 3,
        }
    }
}

/// EWMA smoothing factor: each observation contributes 1/8, so the gauge
/// converges within ~2% of a steady signal after about 30 observations.
const EWMA_ALPHA: f64 = 0.125;

#[derive(Debug, Default)]
struct DriftSlot {
    /// EWMA of the relative error, stored as `f64` bits. 0 bits doubles as
    /// the "no observation yet" sentinel (a real first observation seeds
    /// the EWMA directly).
    ewma_bits: AtomicU64,
    /// Relative-error distribution, milli-error units (1000 = 1×).
    errors: Histogram,
    /// Observations recorded into this slot.
    samples: Counter,
}

impl DriftSlot {
    fn observe(&self, err: f64) {
        self.errors.record((err * 1_000.0).round() as u64);
        self.samples.incr();
        let mut cur = self.ewma_bits.load(Ordering::Relaxed);
        loop {
            let next = if cur == 0 && self.samples.get() <= 1 {
                err
            } else {
                f64::from_bits(cur) * (1.0 - EWMA_ALPHA) + err * EWMA_ALPHA
            };
            match self.ewma_bits.compare_exchange_weak(
                cur,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    fn ewma(&self) -> f64 {
        f64::from_bits(self.ewma_bits.load(Ordering::Relaxed))
    }
}

/// Per-strategy cost-model drift gauges, histograms, and the alert counter.
/// Owned by [`crate::Telemetry`] (one per index) and shared by `Arc` with
/// the engine that feeds it.
#[derive(Debug)]
pub struct DriftMonitor {
    slots: [DriftSlot; 4],
    /// Observations whose relative error exceeded the alert threshold.
    pub alerts: Counter,
    /// Alert threshold in milli-error units.
    threshold_milli: AtomicU64,
    /// Sample 1-in-N untraced queries (0 disables sampling).
    sample_every: AtomicU64,
    sample_seq: AtomicU64,
}

/// Default alert threshold: relative error 32× — the documented
/// TA_PREDICTION_FACTOR headroom of the §4 TA bound. Merge predictions are
/// exact, so any Merge alert at this threshold is a genuine model breach.
pub const DEFAULT_DRIFT_ALERT_THRESHOLD: f64 = 32.0;

/// Default untraced-query sampling period: one query in 16 takes the
/// counter-snapshot path so the monitor sees steady traffic even when no
/// client requests traces.
pub const DEFAULT_DRIFT_SAMPLE_EVERY: u64 = 16;

impl Default for DriftMonitor {
    fn default() -> DriftMonitor {
        DriftMonitor::new()
    }
}

impl DriftMonitor {
    /// A zeroed monitor with the default threshold and sampling period.
    pub fn new() -> DriftMonitor {
        DriftMonitor {
            slots: Default::default(),
            alerts: Counter::new(),
            threshold_milli: AtomicU64::new((DEFAULT_DRIFT_ALERT_THRESHOLD * 1_000.0) as u64),
            sample_every: AtomicU64::new(DEFAULT_DRIFT_SAMPLE_EVERY),
            sample_seq: AtomicU64::new(0),
        }
    }

    /// Records one predicted-vs-measured comparison. `predicted` below 1 is
    /// clamped to 1 so empty predictions don't divide by zero.
    pub fn observe(&self, kind: DriftKind, predicted: f64, measured: u64) {
        let err = (measured as f64 - predicted).abs() / predicted.max(1.0);
        self.slots[kind.index()].observe(err);
        if err * 1_000.0 > self.threshold_milli.load(Ordering::Relaxed) as f64 {
            self.alerts.incr();
        }
    }

    /// The EWMA relative error of one slot (0.0 before any observation).
    pub fn ewma(&self, kind: DriftKind) -> f64 {
        self.slots[kind.index()].ewma()
    }

    /// Observations recorded into one slot.
    pub fn samples(&self, kind: DriftKind) -> u64 {
        self.slots[kind.index()].samples.get()
    }

    /// The error histogram of one slot (milli-error units).
    pub fn errors(&self, kind: DriftKind) -> &Histogram {
        &self.slots[kind.index()].errors
    }

    /// Observations that tripped the alert threshold.
    pub fn alerts(&self) -> u64 {
        self.alerts.get()
    }

    /// Sets the alert threshold (relative-error units; e.g. `2.0` alerts
    /// when a prediction is off by more than 2×).
    pub fn set_alert_threshold(&self, threshold: f64) {
        self.threshold_milli
            .store((threshold.max(0.0) * 1_000.0) as u64, Ordering::Relaxed);
    }

    /// The current alert threshold in relative-error units.
    pub fn alert_threshold(&self) -> f64 {
        self.threshold_milli.load(Ordering::Relaxed) as f64 / 1_000.0
    }

    /// Sets the untraced-query sampling period (sample 1-in-`n`; 0 turns
    /// sampling off so only explicitly traced queries feed the monitor).
    pub fn set_sample_every(&self, n: u64) {
        self.sample_every.store(n, Ordering::Relaxed);
    }

    /// Whether the calling (untraced) query should take the snapshot path
    /// and feed the monitor. Advances the round-robin sequence.
    #[inline]
    pub fn should_sample(&self) -> bool {
        let every = self.sample_every.load(Ordering::Relaxed);
        if every == 0 {
            return false;
        }
        self.sample_seq
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(every)
    }
}

impl ToJson for DriftMonitor {
    /// `{"alerts":N,"threshold":F,"slots":{"ta_entries":{...},...}}` with
    /// per-slot EWMA, sample count, and milli-error percentiles.
    fn write_json(&self, out: &mut String) {
        out.push('{');
        json_field(out, "alerts", self.alerts());
        out.push(',');
        json_field(out, "threshold", self.alert_threshold());
        out.push_str(",\"slots\":{");
        for (i, kind) in DRIFT_KINDS.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(kind.as_str());
            out.push_str("\":{");
            json_field(out, "samples", self.samples(*kind));
            out.push(',');
            json_field(out, "ewma", format!("{:.6}", self.ewma(*kind)));
            let snap = self.errors(*kind).snapshot();
            out.push(',');
            json_field(out, "p50_milli", snap.percentile(0.50));
            out.push(',');
            json_field(out, "p99_milli", snap.percentile(0.99));
            out.push(',');
            json_field(out, "max_milli", snap.max_ns());
            out.push('}');
        }
        out.push_str("}}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_predictions_converge_to_zero() {
        let m = DriftMonitor::new();
        for _ in 0..100 {
            m.observe(DriftKind::MergeEntries, 500.0, 500);
        }
        assert_eq!(m.ewma(DriftKind::MergeEntries), 0.0);
        assert_eq!(m.samples(DriftKind::MergeEntries), 100);
        assert_eq!(m.alerts(), 0);
    }

    #[test]
    fn steady_error_converges_to_its_level() {
        let m = DriftMonitor::new();
        // Predicted 100, measured 150 → relative error 0.5, steadily.
        for _ in 0..200 {
            m.observe(DriftKind::TaEntries, 100.0, 150);
        }
        let ewma = m.ewma(DriftKind::TaEntries);
        assert!((ewma - 0.5).abs() < 1e-9, "ewma={ewma}");
        // Other slots untouched.
        assert_eq!(m.samples(DriftKind::TaBlocks), 0);
    }

    #[test]
    fn alerts_fire_only_above_threshold() {
        let m = DriftMonitor::new();
        m.set_alert_threshold(1.0);
        m.observe(DriftKind::TaEntries, 100.0, 150); // err 0.5 — no alert
        assert_eq!(m.alerts(), 0);
        m.observe(DriftKind::TaEntries, 100.0, 350); // err 2.5 — alert
        assert_eq!(m.alerts(), 1);
        assert!((m.alert_threshold() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_prediction_does_not_divide_by_zero() {
        let m = DriftMonitor::new();
        m.observe(DriftKind::MergeBlocks, 0.0, 7);
        assert_eq!(m.ewma(DriftKind::MergeBlocks), 7.0);
    }

    #[test]
    fn sampling_is_one_in_n() {
        let m = DriftMonitor::new();
        m.set_sample_every(4);
        let hits = (0..100).filter(|_| m.should_sample()).count();
        assert_eq!(hits, 25);
        m.set_sample_every(0);
        assert!(!(0..10).any(|_| m.should_sample()));
    }

    #[test]
    fn json_rendering_covers_all_slots() {
        let m = DriftMonitor::new();
        m.observe(DriftKind::TaEntries, 100.0, 200);
        let json = m.to_json();
        assert!(json.contains("\"alerts\":0"));
        assert!(json.contains("\"ta_entries\":{\"samples\":1"));
        assert!(json.contains("\"merge_blocks\":{\"samples\":0"));
        assert!(json.contains("\"p50_milli\":"));
    }

    #[test]
    fn concurrent_observations_count_exactly() {
        let m = DriftMonitor::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1_000 {
                        m.observe(DriftKind::MergeEntries, 10.0, 10);
                    }
                });
            }
        });
        assert_eq!(m.samples(DriftKind::MergeEntries), 4_000);
        assert_eq!(m.ewma(DriftKind::MergeEntries), 0.0);
    }
}
