//! The exposition surface: [`Telemetry`] bundles the query-path telemetry
//! owned by an index (timers + span journal + slow-query log), and
//! [`MetricsRegistry`] gathers every counter and histogram group of one
//! system behind `render_prometheus()` / `render_json()`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::advisor::AdvisorJournal;
use crate::drift::{DriftMonitor, DRIFT_KINDS};
use crate::health::Health;
use crate::hist::{MaintTimers, QueryTimers, ServeTimers, StorageTimers};
use crate::span::{SlowQueryLog, SpanJournal};
use crate::trace::TraceStore;
use crate::{
    json_escape, json_field, Gauge, IndexCounters, SelfManageCounters, ServeCounters,
    StorageCounters, ToJson,
};

/// Query-path telemetry shared by the engine, the maintenance gate, and the
/// reconcile loop: histogram groups, the span journal, and the slow-query
/// log. Owned by the index (one per open store) and shared by `Arc`, exactly
/// like the counter groups.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Query end-to-end / per-strategy / stage latencies.
    pub query: QueryTimers,
    /// Gate waits and reconcile-cycle phase latencies.
    pub maint: MaintTimers,
    /// Always-on begin/end span journal.
    pub journal: SpanJournal,
    /// Bounded log of queries over the slow threshold.
    pub slow: SlowQueryLog,
    /// Live cost-model drift gauges, fed by traced-or-sampled queries.
    pub drift: DriftMonitor,
    enabled: AtomicBool,
}

impl Telemetry {
    /// Fresh, enabled telemetry.
    pub fn new() -> Telemetry {
        Telemetry {
            query: QueryTimers::new(),
            maint: MaintTimers::new(),
            journal: SpanJournal::new(),
            slow: SlowQueryLog::new(),
            drift: DriftMonitor::new(),
            enabled: AtomicBool::new(true),
        }
    }

    /// Pauses or resumes the timers and the journal together. Paused
    /// telemetry skips every clock read and span push — this is the
    /// telemetry-off baseline of the overhead bench. (The slow-query
    /// threshold is left alone; a paused system records no spans, so no
    /// slow queries get captured either.)
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
        self.query.set_enabled(on);
        self.maint.set_enabled(on);
        self.journal.set_enabled(on);
    }

    /// Whether telemetry is recording.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }
}

/// Serving-surface metrics shared by the HTTP front end, the REPL, and the
/// query service: request counters, request/queue-wait latency histograms,
/// and the live admission-queue depth gauge. One per system, shared by
/// `Arc` like every other metric group.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Admission, cache, and error-class counters.
    pub counters: ServeCounters,
    /// Request and queue-wait latency histograms.
    pub timers: ServeTimers,
    /// Current depth of the bounded request queue.
    pub queue_depth: Gauge,
    /// Recent assembled request traces, keyed by W3C trace id.
    pub traces: TraceStore,
}

impl ServeMetrics {
    /// Fresh, zeroed serving metrics.
    pub fn new() -> ServeMetrics {
        ServeMetrics {
            counters: ServeCounters::new(),
            timers: ServeTimers::new(),
            queue_depth: Gauge::new(),
            traces: TraceStore::new(),
        }
    }
}

/// One partition's counter groups, labelled for exposition. A partitioned
/// system registers one of these per store so operators can see where
/// fetches, decodes and reconcile work actually land; the registry's
/// primary (unlabelled) groups stay whatever the caller designates — for
/// partitioned systems, partition 0's groups plus the shared serve layer.
#[derive(Debug, Clone)]
pub struct PartitionMetrics {
    /// Label rendered into the `partition="…"` dimension (usually the
    /// partition ordinal).
    pub label: String,
    /// The partition store's counters.
    pub storage: Arc<StorageCounters>,
    /// The partition index's counters.
    pub index: Arc<IndexCounters>,
    /// The partition profiler/advisor's counters.
    pub selfmanage: Arc<SelfManageCounters>,
}

/// One flattened per-partition counter row: `(label, group, fields)`.
type PartitionCounterRow<'a> = (&'a str, &'static str, Vec<(&'static str, u64)>);

/// Every metric source of one system, behind the two render calls the
/// metrics endpoints serve. Cloning is cheap (`Arc`s all the way down) and
/// the registry is `Send + Sync`, so the HTTP responder thread can own one.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    storage: Arc<StorageCounters>,
    index: Arc<IndexCounters>,
    selfmanage: Arc<SelfManageCounters>,
    storage_timers: Arc<StorageTimers>,
    telemetry: Arc<Telemetry>,
    serve: Arc<ServeMetrics>,
    partitions: Vec<PartitionMetrics>,
    health: Arc<Health>,
    advisor: Arc<AdvisorJournal>,
    started: Instant,
    git_rev: String,
}

impl MetricsRegistry {
    /// Assembles a registry from one system's shared metric groups. The
    /// readiness state and advisor journal default to fresh instances;
    /// systems that own real ones attach them via [`Self::with_health`] /
    /// [`Self::with_advisor`].
    pub fn new(
        storage: Arc<StorageCounters>,
        index: Arc<IndexCounters>,
        selfmanage: Arc<SelfManageCounters>,
        storage_timers: Arc<StorageTimers>,
        telemetry: Arc<Telemetry>,
        serve: Arc<ServeMetrics>,
    ) -> MetricsRegistry {
        MetricsRegistry {
            storage,
            index,
            selfmanage,
            storage_timers,
            telemetry,
            serve,
            partitions: Vec::new(),
            health: Arc::new(Health::new()),
            advisor: Arc::new(AdvisorJournal::new()),
            started: Instant::now(),
            git_rev: crate::build_git_rev(),
        }
    }

    /// Attaches per-partition counter groups; each renders with a
    /// `partition="label"` dimension in Prometheus and under a
    /// `"partitions"` array in JSON.
    pub fn with_partitions(mut self, partitions: Vec<PartitionMetrics>) -> MetricsRegistry {
        self.partitions = partitions;
        self
    }

    /// Attaches the system's shared readiness state (served at `/readyz`).
    pub fn with_health(mut self, health: Arc<Health>) -> MetricsRegistry {
        self.health = health;
        self
    }

    /// Attaches the system's advisor decision journal (served at
    /// `/v1/advisor/history` and `/v1/advisor/last`).
    pub fn with_advisor(mut self, advisor: Arc<AdvisorJournal>) -> MetricsRegistry {
        self.advisor = advisor;
        self
    }

    /// The attached per-partition groups (empty for single-store systems).
    pub fn partitions(&self) -> &[PartitionMetrics] {
        &self.partitions
    }

    /// The query-path telemetry (timers, journal, slow log).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// The storage-layer timer group.
    pub fn storage_timers(&self) -> &Arc<StorageTimers> {
        &self.storage_timers
    }

    /// The self-management counter group.
    pub fn selfmanage(&self) -> &Arc<SelfManageCounters> {
        &self.selfmanage
    }

    /// The serving-surface metrics (request counters, latency histograms,
    /// queue-depth gauge, trace store).
    pub fn serve(&self) -> &Arc<ServeMetrics> {
        &self.serve
    }

    /// The readiness state behind `/readyz`.
    pub fn health(&self) -> &Arc<Health> {
        &self.health
    }

    /// The advisor decision journal behind `/v1/advisor/*`.
    pub fn advisor(&self) -> &Arc<AdvisorJournal> {
        &self.advisor
    }

    /// Seconds this registry (≈ the serving process) has been up.
    pub fn uptime_seconds(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// The build's git revision label (unified BENCH header sourcing).
    pub fn git_rev(&self) -> &str {
        &self.git_rev
    }

    /// Pauses or resumes every timer group and the span journal (counters
    /// stay on — they are the PR-1 always-on layer). Used by the overhead
    /// bench to measure a true telemetry-off baseline.
    pub fn set_telemetry_enabled(&self, on: bool) {
        self.storage_timers.set_enabled(on);
        self.telemetry.set_enabled(on);
        self.serve.timers.set_enabled(on);
    }

    fn counter_groups(&self) -> [(&'static str, Vec<(&'static str, u64)>); 4] {
        [
            ("storage", self.storage.snapshot().fields()),
            ("index", self.index.snapshot().fields()),
            ("selfmanage", self.selfmanage.snapshot().fields()),
            ("serve", self.serve.counters.snapshot().fields()),
        ]
    }

    /// Per-partition counter groups, flattened to
    /// `(label, group, fields)` rows in partition order.
    fn partition_counter_groups(&self) -> Vec<PartitionCounterRow<'_>> {
        let mut rows = Vec::with_capacity(self.partitions.len() * 3);
        for p in &self.partitions {
            rows.push((p.label.as_str(), "storage", p.storage.snapshot().fields()));
            rows.push((p.label.as_str(), "index", p.index.snapshot().fields()));
            rows.push((
                p.label.as_str(),
                "selfmanage",
                p.selfmanage.snapshot().fields(),
            ));
        }
        rows
    }

    fn histogram_groups(&self) -> [(&'static str, Vec<(&'static str, &crate::Histogram)>); 4] {
        [
            ("storage", self.storage_timers.each()),
            ("query", self.telemetry.query.each()),
            ("maint", self.telemetry.maint.each()),
            ("serve", self.serve.timers.each()),
        ]
    }

    /// Prometheus text exposition format 0.0.4: every counter as a
    /// `trex_<group>_<field>_total` counter, every histogram as a
    /// `trex_<group>_<field>_seconds` histogram with cumulative,
    /// `+Inf`-terminated buckets.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(16 * 1024);
        for (group, fields) in self.counter_groups() {
            for (field, value) in fields {
                let name = format!("trex_{group}_{field}_total");
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {value}");
            }
        }
        // Partition-labelled counters: one `# TYPE` per metric name, then
        // one sample per partition (exposition format forbids repeating
        // the TYPE line per label value).
        if let Some(first) = self.partitions.first() {
            let per_group: [(&'static str, Vec<&'static str>); 3] = [
                (
                    "storage",
                    first
                        .storage
                        .snapshot()
                        .fields()
                        .into_iter()
                        .map(|(f, _)| f)
                        .collect(),
                ),
                (
                    "index",
                    first
                        .index
                        .snapshot()
                        .fields()
                        .into_iter()
                        .map(|(f, _)| f)
                        .collect(),
                ),
                (
                    "selfmanage",
                    first
                        .selfmanage
                        .snapshot()
                        .fields()
                        .into_iter()
                        .map(|(f, _)| f)
                        .collect(),
                ),
            ];
            let rows = self.partition_counter_groups();
            for (group, fields) in per_group {
                for (fi, field) in fields.into_iter().enumerate() {
                    let name = format!("trex_partition_{group}_{field}_total");
                    let _ = writeln!(out, "# TYPE {name} counter");
                    for (label, row_group, row_fields) in &rows {
                        if *row_group == group {
                            let value = row_fields[fi].1;
                            let _ = writeln!(out, "{name}{{partition=\"{label}\"}} {value}");
                        }
                    }
                }
            }
        }
        for (group, fields) in self.histogram_groups() {
            for (field, hist) in fields {
                hist.snapshot()
                    .write_prometheus(&mut out, &format!("trex_{group}_{field}_seconds"));
            }
        }
        let _ = writeln!(out, "# TYPE trex_serve_queue_depth gauge");
        let _ = writeln!(
            out,
            "trex_serve_queue_depth {}",
            self.serve.queue_depth.get()
        );
        let _ = writeln!(out, "# TYPE trex_spans_dropped_total counter");
        let _ = writeln!(
            out,
            "trex_spans_dropped_total {}",
            self.telemetry.journal.dropped()
        );
        let _ = writeln!(out, "# TYPE trex_build_info gauge");
        let _ = writeln!(
            out,
            "trex_build_info{{git_rev=\"{}\",schema_version=\"{}\"}} 1",
            self.git_rev,
            crate::SCHEMA_VERSION
        );
        let _ = writeln!(out, "# TYPE trex_uptime_seconds gauge");
        let _ = writeln!(out, "trex_uptime_seconds {}", self.uptime_seconds());
        // Cost-model drift: per-slot EWMA gauges, sample counters, and
        // milli-error histograms (raw milli units — these are ratios, not
        // seconds, so the shared seconds-renderer does not apply).
        let drift = &self.telemetry.drift;
        let _ = writeln!(out, "# TYPE trex_drift_ewma gauge");
        for kind in DRIFT_KINDS {
            let _ = writeln!(
                out,
                "trex_drift_ewma{{model=\"{}\"}} {:.6}",
                kind.as_str(),
                drift.ewma(kind)
            );
        }
        let _ = writeln!(out, "# TYPE trex_drift_samples_total counter");
        for kind in DRIFT_KINDS {
            let _ = writeln!(
                out,
                "trex_drift_samples_total{{model=\"{}\"}} {}",
                kind.as_str(),
                drift.samples(kind)
            );
        }
        let _ = writeln!(out, "# TYPE trex_drift_error_milli histogram");
        for kind in DRIFT_KINDS {
            let snap = drift.errors(kind).snapshot();
            let mut cumulative = 0u64;
            for (upper, c) in snap.nonzero_buckets() {
                cumulative = cumulative.saturating_add(c);
                let _ = writeln!(
                    out,
                    "trex_drift_error_milli_bucket{{model=\"{}\",le=\"{upper}\"}} {cumulative}",
                    kind.as_str()
                );
            }
            let _ = writeln!(
                out,
                "trex_drift_error_milli_bucket{{model=\"{}\",le=\"+Inf\"}} {}",
                kind.as_str(),
                snap.count()
            );
            let _ = writeln!(
                out,
                "trex_drift_error_milli_sum{{model=\"{}\"}} {}",
                kind.as_str(),
                snap.sum_ns()
            );
            let _ = writeln!(
                out,
                "trex_drift_error_milli_count{{model=\"{}\"}} {}",
                kind.as_str(),
                snap.count()
            );
        }
        let _ = writeln!(out, "# TYPE trex_cost_model_drift_alerts_total counter");
        let _ = writeln!(out, "trex_cost_model_drift_alerts_total {}", drift.alerts());
        let _ = writeln!(out, "# TYPE trex_advisor_cycles_recorded_total counter");
        let _ = writeln!(
            out,
            "trex_advisor_cycles_recorded_total {}",
            self.advisor.recorded.get()
        );
        out
    }

    /// Everything as one JSON object: counter groups, histogram summaries
    /// (count/sum/max/p50/p90/p99/p999 + non-empty buckets), and journal /
    /// slow-log occupancy.
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(16 * 1024);
        out.push_str("{\"counters\":{");
        for (gi, (group, fields)) in self.counter_groups().into_iter().enumerate() {
            if gi > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(group);
            out.push_str("\":{");
            for (fi, (field, value)) in fields.into_iter().enumerate() {
                if fi > 0 {
                    out.push(',');
                }
                json_field(&mut out, field, value);
            }
            out.push('}');
        }
        out.push_str("},\"histograms\":{");
        for (gi, (group, fields)) in self.histogram_groups().into_iter().enumerate() {
            if gi > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(group);
            out.push_str("\":{");
            for (fi, (field, hist)) in fields.into_iter().enumerate() {
                if fi > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(field);
                out.push_str("\":");
                hist.snapshot().write_json(&mut out);
            }
            out.push('}');
        }
        out.push_str("},");
        if !self.partitions.is_empty() {
            out.push_str("\"partitions\":[");
            for (pi, p) in self.partitions.iter().enumerate() {
                if pi > 0 {
                    out.push(',');
                }
                out.push_str("{\"partition\":\"");
                out.push_str(&p.label);
                out.push_str("\",");
                let groups: [(&'static str, Vec<(&'static str, u64)>); 3] = [
                    ("storage", p.storage.snapshot().fields()),
                    ("index", p.index.snapshot().fields()),
                    ("selfmanage", p.selfmanage.snapshot().fields()),
                ];
                for (gi, (group, fields)) in groups.into_iter().enumerate() {
                    if gi > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(group);
                    out.push_str("\":{");
                    for (fi, (field, value)) in fields.into_iter().enumerate() {
                        if fi > 0 {
                            out.push(',');
                        }
                        json_field(&mut out, field, value);
                    }
                    out.push('}');
                }
                out.push('}');
            }
            out.push_str("],");
        }
        json_field(&mut out, "serve_queue_depth", self.serve.queue_depth.get());
        out.push(',');
        json_field(&mut out, "spans_dropped", self.telemetry.journal.dropped());
        out.push(',');
        json_field(&mut out, "slow_queries", self.telemetry.slow.len() as u64);
        out.push_str(",\"build_info\":{\"git_rev\":\"");
        out.push_str(&json_escape(&self.git_rev));
        out.push_str("\",");
        json_field(&mut out, "schema_version", crate::SCHEMA_VERSION);
        out.push_str("},");
        json_field(&mut out, "uptime_seconds", self.uptime_seconds());
        out.push_str(",\"drift\":");
        self.telemetry.drift.write_json(&mut out);
        out.push(',');
        json_field(
            &mut out,
            "cost_model_drift_alerts",
            self.telemetry.drift.alerts(),
        );
        out.push(',');
        json_field(&mut out, "advisor_cycles", self.advisor.recorded.get());
        out.push(',');
        json_field(&mut out, "traces_stored", self.serve.traces.len() as u64);
        out.push('}');
        out
    }

    /// The slow-query log as JSON (threshold + entries with span trees).
    pub fn render_slow_json(&self) -> String {
        self.telemetry.slow.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn registry() -> MetricsRegistry {
        MetricsRegistry::new(
            Arc::new(StorageCounters::new()),
            Arc::new(IndexCounters::new()),
            Arc::new(SelfManageCounters::new()),
            Arc::new(StorageTimers::new()),
            Arc::new(Telemetry::new()),
            Arc::new(ServeMetrics::new()),
        )
    }

    #[test]
    fn prometheus_exposition_covers_all_groups() {
        let r = registry();
        r.storage_timers
            .page_read
            .record_duration(Duration::from_micros(80));
        r.telemetry
            .query
            .query
            .record_duration(Duration::from_millis(2));
        r.serve().counters.admitted.add(3);
        r.serve().queue_depth.set(2);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE trex_storage_page_reads_total counter"));
        assert!(text.contains("# TYPE trex_selfmanage_cycles_total counter"));
        assert!(text.contains("# TYPE trex_serve_admitted_total counter"));
        assert!(text.contains("trex_serve_admitted_total 3"));
        assert!(text.contains("# TYPE trex_serve_queue_depth gauge"));
        assert!(text.contains("trex_serve_queue_depth 2"));
        assert!(text.contains("# TYPE trex_storage_page_read_seconds histogram"));
        assert!(text.contains("# TYPE trex_serve_request_seconds histogram"));
        assert!(text.contains("trex_query_query_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("trex_query_query_seconds_count 1"));
        assert!(text.contains("trex_maint_reconcile_cycle_seconds_count 0"));
    }

    #[test]
    fn prometheus_exposition_covers_build_info_and_drift() {
        let r = registry();
        r.telemetry
            .drift
            .observe(crate::DriftKind::TaEntries, 100.0, 150);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE trex_build_info gauge"));
        assert!(text.contains(&format!(
            "trex_build_info{{git_rev=\"{}\",schema_version=\"{}\"}} 1",
            r.git_rev(),
            crate::SCHEMA_VERSION
        )));
        assert!(text.contains("# TYPE trex_uptime_seconds gauge"));
        assert!(text.contains("trex_drift_ewma{model=\"ta_entries\"} 0.5"));
        assert!(text.contains("trex_drift_ewma{model=\"merge_entries\"} 0.0"));
        assert!(text.contains("trex_drift_samples_total{model=\"ta_entries\"} 1"));
        assert!(text.contains("trex_drift_error_milli_bucket{model=\"ta_entries\",le=\"+Inf\"} 1"));
        assert!(text.contains("trex_cost_model_drift_alerts_total 0"));
        assert!(text.contains("trex_advisor_cycles_recorded_total 0"));
    }

    #[test]
    fn json_rendering_nests_groups() {
        let r = registry();
        r.telemetry.query.query.record(1_000);
        r.serve().counters.cache_hits.incr();
        let json = r.render_json();
        assert!(json.starts_with("{\"counters\":{\"storage\":{"));
        assert!(json.contains("\"serve\":{\"admitted\":0"));
        assert!(json.contains("\"cache_hits\":1"));
        assert!(json.contains("\"histograms\":{\"storage\":{\"page_read\":{"));
        assert!(json.contains("\"serve\":{\"request\":{"));
        assert!(json.contains("\"query\":{\"query\":{\"count\":1"));
        assert!(json.contains("\"serve_queue_depth\":0"));
        assert!(json.contains("\"spans_dropped\":0"));
        assert!(json.contains("\"slow_queries\":0"));
        assert!(json.contains("\"build_info\":{\"git_rev\":\""));
        assert!(json.contains(&format!("\"schema_version\":{}", crate::SCHEMA_VERSION)));
        assert!(json.contains("\"uptime_seconds\":"));
        assert!(json.contains("\"drift\":{\"alerts\":0"));
        assert!(json.contains("\"cost_model_drift_alerts\":0"));
        assert!(json.contains("\"advisor_cycles\":0"));
        assert!(json.contains("\"traces_stored\":0"));
        crate::parse_json(&json).expect("metrics JSON stays parseable");
    }

    #[test]
    fn attached_health_and_advisor_are_served() {
        let r = registry()
            .with_health(Arc::new(crate::Health::new()))
            .with_advisor(Arc::new(crate::AdvisorJournal::new()));
        assert!(!r.health().ready());
        r.health().set_ready(true);
        assert!(r.health().ready());
        r.advisor().record(crate::CycleRecord::default());
        assert!(r.render_json().contains("\"advisor_cycles\":1"));
    }

    #[test]
    fn partition_labels_render_in_both_formats() {
        let p0 = PartitionMetrics {
            label: "0".into(),
            storage: Arc::new(StorageCounters::new()),
            index: Arc::new(IndexCounters::new()),
            selfmanage: Arc::new(SelfManageCounters::new()),
        };
        let p1 = PartitionMetrics {
            label: "1".into(),
            storage: Arc::new(StorageCounters::new()),
            index: Arc::new(IndexCounters::new()),
            selfmanage: Arc::new(SelfManageCounters::new()),
        };
        p0.storage.page_reads.add(7);
        p1.storage.page_reads.add(3);
        p1.selfmanage.cycles.incr();
        let r = registry().with_partitions(vec![p0, p1]);

        let text = r.render_prometheus();
        assert!(text.contains("# TYPE trex_partition_storage_page_reads_total counter"));
        assert!(text.contains("trex_partition_storage_page_reads_total{partition=\"0\"} 7"));
        assert!(text.contains("trex_partition_storage_page_reads_total{partition=\"1\"} 3"));
        assert!(text.contains("trex_partition_selfmanage_cycles_total{partition=\"1\"} 1"));
        // The TYPE line appears once per metric name, not once per label.
        assert_eq!(
            text.matches("# TYPE trex_partition_storage_page_reads_total counter")
                .count(),
            1
        );

        let json = r.render_json();
        assert!(json.contains("\"partitions\":[{\"partition\":\"0\""));
        assert!(json.contains("\"page_reads\":7"));
        assert!(json.contains("\"page_reads\":3"));
        // Still valid after the array: the scalar tail fields follow.
        assert!(json.contains("],\"serve_queue_depth\":0"));
    }

    #[test]
    fn pause_switch_reaches_every_group() {
        let r = registry();
        r.set_telemetry_enabled(false);
        assert!(!r.storage_timers.enabled());
        assert!(!r.telemetry.enabled());
        assert!(!r.serve().timers.enabled());
        assert!(r.storage_timers.start().elapsed_ns().is_none());
        r.set_telemetry_enabled(true);
        assert!(r.telemetry.journal.enabled());
        assert!(r.serve().timers.enabled());
    }
}
