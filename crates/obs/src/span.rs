//! Always-on span tracing: a striped in-memory ring buffer of begin/end
//! events with parent links, and the slow-query log built on top of it.
//!
//! The journal is designed for the same always-on discipline as the counter
//! layer: a span begin/end is one atomic id allocation plus one push into a
//! thread-striped ring. Stripes are assigned per thread, so concurrent
//! writers virtually never touch the same lock, and each critical section is
//! a handful of stores into a preallocated ring slot. Old events are
//! overwritten ring-style — the journal is a flight recorder, not a durable
//! log.
//!
//! Parent links come from a thread-local "current span" cell: opening a span
//! makes it the current span for its thread, dropping the guard restores its
//! parent. The slow-query log uses the links to cut the exact subtree of one
//! query out of the shared journal.

use std::cell::Cell;
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::{json_escape, json_field, QueryTrace, ToJson};

/// Number of independently locked ring stripes.
const STRIPES: usize = 8;
/// Events retained per stripe before the ring wraps.
const STRIPE_CAPACITY: usize = 4096;

/// Did this event open or close a span?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Span opened.
    Begin,
    /// Span closed.
    End,
}

/// One begin/end event in the journal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanEvent {
    /// Global event sequence number: a total order over all events of one
    /// journal, across threads.
    pub seq: u64,
    /// Begin or end.
    pub kind: SpanKind,
    /// Span id (unique per journal, never 0).
    pub id: u64,
    /// Id of the enclosing span on the same thread, 0 for roots.
    pub parent: u64,
    /// Static span name (e.g. `"query"`, `"evaluate:ta"`).
    pub name: &'static str,
    /// Nanoseconds since the journal's epoch.
    pub t_ns: u64,
    /// Compact id of the recording thread.
    pub tid: u64,
}

impl ToJson for SpanEvent {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        json_field(out, "seq", self.seq);
        out.push_str(",\"kind\":\"");
        out.push_str(match self.kind {
            SpanKind::Begin => "begin",
            SpanKind::End => "end",
        });
        out.push_str("\",");
        json_field(out, "id", self.id);
        out.push(',');
        json_field(out, "parent", self.parent);
        out.push_str(",\"name\":\"");
        out.push_str(&json_escape(self.name));
        out.push_str("\",");
        json_field(out, "t_ns", self.t_ns);
        out.push(',');
        json_field(out, "tid", self.tid);
        out.push('}');
    }
}

#[derive(Debug)]
struct Stripe {
    buf: Vec<SpanEvent>,
    /// Next write position; the ring holds `buf.len()` events once wrapped.
    next: usize,
    wrapped: bool,
}

impl Stripe {
    fn new() -> Stripe {
        Stripe {
            buf: Vec::with_capacity(STRIPE_CAPACITY),
            next: 0,
            wrapped: false,
        }
    }

    fn push(&mut self, ev: SpanEvent) -> bool {
        if self.buf.len() < STRIPE_CAPACITY {
            self.buf.push(ev);
            self.next = self.buf.len() % STRIPE_CAPACITY;
            false
        } else {
            self.buf[self.next] = ev;
            self.next = (self.next + 1) % STRIPE_CAPACITY;
            self.wrapped = true;
            true
        }
    }
}

thread_local! {
    /// Innermost open span id on this thread (0 = none).
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
    /// Stripe this thread writes to, assigned round-robin on first use.
    static MY_STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
    /// Compact thread id for events, assigned on first use.
    static MY_TID: Cell<u64> = const { Cell::new(0) };
}

static NEXT_STRIPE: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

fn my_stripe() -> usize {
    MY_STRIPE.with(|c| {
        let mut s = c.get();
        if s == usize::MAX {
            s = (NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) as usize) % STRIPES;
            c.set(s);
        }
        s
    })
}

fn my_tid() -> u64 {
    MY_TID.with(|c| {
        let mut t = c.get();
        if t == 0 {
            t = NEXT_TID.fetch_add(1, Ordering::Relaxed) + 1;
            c.set(t);
        }
        t
    })
}

/// The in-memory span journal: a striped ring of [`SpanEvent`]s.
#[derive(Debug)]
pub struct SpanJournal {
    epoch: Instant,
    next_id: AtomicU64,
    next_seq: AtomicU64,
    /// Events overwritten by ring wrap-around since creation.
    dropped: AtomicU64,
    enabled: AtomicBool,
    stripes: [Mutex<Stripe>; STRIPES],
}

impl Default for SpanJournal {
    fn default() -> SpanJournal {
        SpanJournal::new()
    }
}

impl SpanJournal {
    /// An empty, enabled journal.
    pub fn new() -> SpanJournal {
        SpanJournal {
            epoch: Instant::now(),
            next_id: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
            stripes: std::array::from_fn(|_| Mutex::new(Stripe::new())),
        }
    }

    /// Pauses or resumes recording. Spans opened while paused are complete
    /// no-ops (no id allocation, no clock reads, no pushes).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether the journal is recording.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Events lost to ring wrap-around since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Nanoseconds since the journal epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Opens a span; it closes (records its `End` event) when the returned
    /// guard drops. The span becomes the parent of any span opened on the
    /// same thread while the guard lives.
    #[must_use = "the span closes when the guard drops"]
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        if !self.enabled() {
            return SpanGuard {
                journal: self,
                id: 0,
                parent: 0,
                name,
            };
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let parent = CURRENT_SPAN.with(|c| c.replace(id));
        self.push(SpanKind::Begin, id, parent, name);
        SpanGuard {
            journal: self,
            id,
            parent,
            name,
        }
    }

    fn push(&self, kind: SpanKind, id: u64, parent: u64, name: &'static str) {
        let ev = SpanEvent {
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            kind,
            id,
            parent,
            name,
            t_ns: self.now_ns(),
            tid: my_tid(),
        };
        let overwrote = {
            let mut stripe = self.stripes[my_stripe()]
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            stripe.push(ev)
        };
        if overwrote {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of every retained event, in global `seq` order.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        let mut events = Vec::new();
        for stripe in &self.stripes {
            let stripe = stripe.lock().unwrap_or_else(|e| e.into_inner());
            events.extend_from_slice(&stripe.buf);
        }
        events.sort_by_key(|e| e.seq);
        events
    }

    /// The subtree of events rooted at span `root`: every begin/end event of
    /// `root` and its descendants (via parent links), in `seq` order. This is
    /// how the slow-query log cuts one query's spans out of the shared
    /// journal.
    pub fn collect_tree(&self, root: u64) -> Vec<SpanEvent> {
        let events = self.snapshot();
        let mut keep: HashSet<u64> = HashSet::new();
        keep.insert(root);
        // Begin events arrive in seq order, and a child's begin always
        // follows its parent's, so one forward pass closes the set.
        for ev in &events {
            if ev.kind == SpanKind::Begin && keep.contains(&ev.parent) {
                keep.insert(ev.id);
            }
        }
        events
            .into_iter()
            .filter(|e| keep.contains(&e.id))
            .collect()
    }

    /// Drains the journal as a JSON array of events (the events stay in the
    /// ring; "drain" reads them out, wrap-around reclaims the space).
    pub fn snapshot_json(&self) -> String {
        render_events(&self.snapshot())
    }
}

/// Renders a slice of events as a JSON array.
pub fn render_events(events: &[SpanEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 2);
    out.push('[');
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        ev.write_json(&mut out);
    }
    out.push(']');
    out
}

/// RAII guard for an open span; records the `End` event on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    journal: &'a SpanJournal,
    id: u64,
    parent: u64,
    name: &'static str,
}

impl SpanGuard<'_> {
    /// The span's id (0 when the journal was paused at open).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        self.journal
            .push(SpanKind::End, self.id, self.parent, self.name);
        CURRENT_SPAN.with(|c| c.set(self.parent));
    }
}

/// One captured slow query: the raw NEXI text, outcome, its trace, and the
/// exact span subtree of its evaluation.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// Raw NEXI text (may contain anything — escaping matters).
    pub query: String,
    /// Strategy that answered (`"ta"`, `"merge"`, ...).
    pub strategy: String,
    /// End-to-end latency.
    pub total: Duration,
    /// Full query trace (stage timings + counter deltas).
    pub trace: QueryTrace,
    /// Begin/end span subtree of this query, in `seq` order.
    pub spans: Vec<SpanEvent>,
    /// W3C trace id of the request, when it carried one.
    pub trace_id: Option<u128>,
    /// True when ring wrap-around lost events inside the captured window,
    /// so `spans` is an incomplete subtree.
    pub truncated: bool,
}

impl ToJson for SlowQuery {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"query\":\"");
        out.push_str(&json_escape(&self.query));
        out.push_str("\",\"strategy\":\"");
        out.push_str(&json_escape(&self.strategy));
        out.push_str("\",");
        json_field(out, "total_us", self.total.as_micros());
        if let Some(id) = self.trace_id {
            out.push_str(",\"trace_id\":\"");
            out.push_str(&format!("{id:032x}"));
            out.push('"');
        }
        out.push(',');
        json_field(out, "truncated", self.truncated);
        out.push_str(",\"trace\":");
        self.trace.write_json(out);
        out.push_str(",\"spans\":");
        out.push_str(&render_events(&self.spans));
        out.push('}');
    }
}

/// Bounded log of the most recent slow queries.
#[derive(Debug)]
pub struct SlowQueryLog {
    threshold_ns: AtomicU64,
    entries: Mutex<VecDeque<SlowQuery>>,
    capacity: usize,
}

/// Default slow-query threshold: 100 ms.
pub const DEFAULT_SLOW_THRESHOLD: Duration = Duration::from_millis(100);

impl Default for SlowQueryLog {
    fn default() -> SlowQueryLog {
        SlowQueryLog::new()
    }
}

impl SlowQueryLog {
    /// An empty log keeping the 32 most recent entries, threshold 100 ms.
    pub fn new() -> SlowQueryLog {
        SlowQueryLog {
            threshold_ns: AtomicU64::new(DEFAULT_SLOW_THRESHOLD.as_nanos() as u64),
            entries: Mutex::new(VecDeque::new()),
            capacity: 32,
        }
    }

    /// Sets the capture threshold; `None` disables capture entirely.
    pub fn set_threshold(&self, t: Option<Duration>) {
        let ns = t
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            .unwrap_or(u64::MAX);
        self.threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// The capture threshold in nanoseconds (`u64::MAX` = disabled).
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns.load(Ordering::Relaxed)
    }

    /// Whether a query of duration `elapsed_ns` should be captured.
    #[inline]
    pub fn qualifies(&self, elapsed_ns: u64) -> bool {
        elapsed_ns >= self.threshold_ns()
    }

    /// Records one slow query, evicting the oldest past capacity.
    pub fn record(&self, entry: SlowQuery) {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(entry);
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> Vec<SlowQuery> {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ToJson for SlowQueryLog {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        json_field(out, "threshold_ns", self.threshold_ns());
        out.push_str(",\"entries\":[");
        for (i, e) in self.entries().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            e.write_json(out);
        }
        out.push_str("]}");
    }
}

/// Checks that a single-threaded event sequence nests correctly: every `End`
/// closes the innermost open span, parent links match the enclosing span,
/// and everything opened gets closed. Returns the violation, if any.
pub fn check_nesting(events: &[SpanEvent]) -> Result<(), String> {
    let mut stack: Vec<u64> = Vec::new();
    for ev in events {
        match ev.kind {
            SpanKind::Begin => {
                let enclosing = stack.last().copied().unwrap_or(ev.parent);
                if ev.parent != enclosing {
                    return Err(format!(
                        "span {} ({}) begins under parent {} but {} is open",
                        ev.id, ev.name, ev.parent, enclosing
                    ));
                }
                stack.push(ev.id);
            }
            SpanKind::End => match stack.pop() {
                Some(open) if open == ev.id => {}
                Some(open) => {
                    return Err(format!(
                        "span {} ({}) ends while span {} is innermost",
                        ev.id, ev.name, open
                    ));
                }
                None => {
                    return Err(format!(
                        "span {} ({}) ends with no span open",
                        ev.id, ev.name
                    ))
                }
            },
        }
    }
    if let Some(open) = stack.last() {
        return Err(format!("span {open} never ended"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_with_parent_links() {
        let j = SpanJournal::new();
        {
            let _root = j.span("query");
            {
                let _child = j.span("evaluate:ta");
                let _grandchild = j.span("rank");
            }
            let _sibling = j.span("rank");
        }
        let events = j.snapshot();
        assert_eq!(events.len(), 8);
        check_nesting(&events).unwrap();
        let root = &events[0];
        assert_eq!(root.parent, 0);
        let child = events
            .iter()
            .find(|e| e.name == "evaluate:ta" && e.kind == SpanKind::Begin)
            .unwrap();
        assert_eq!(child.parent, root.id);
    }

    #[test]
    fn collect_tree_cuts_one_subtree() {
        let j = SpanJournal::new();
        let root_a;
        {
            let a = j.span("query");
            root_a = a.id();
            let _a1 = j.span("evaluate:merge");
        }
        {
            let _b = j.span("query");
            let _b1 = j.span("evaluate:ta");
        }
        let tree = j.collect_tree(root_a);
        assert_eq!(tree.len(), 4);
        assert!(tree
            .iter()
            .all(|e| e.id == root_a || e.parent == root_a || e.parent == 0));
        assert!(tree.iter().any(|e| e.name == "evaluate:merge"));
        assert!(!tree.iter().any(|e| e.name == "evaluate:ta"));
        check_nesting(&tree).unwrap();
    }

    #[test]
    fn paused_journal_records_nothing() {
        let j = SpanJournal::new();
        j.set_enabled(false);
        {
            let g = j.span("query");
            assert_eq!(g.id(), 0);
        }
        assert!(j.snapshot().is_empty());
        j.set_enabled(true);
        let _ = j.span("query");
        assert_eq!(j.snapshot().len(), 2);
    }

    #[test]
    fn ring_wraps_without_losing_recent_events() {
        // One stripe wraps; recent events survive and dropped counts.
        let j = SpanJournal::new();
        for _ in 0..(STRIPE_CAPACITY) {
            let _ = j.span("query");
        }
        assert!(j.dropped() > 0);
        let events = j.snapshot();
        assert!(!events.is_empty());
        // The newest event is always retained.
        let max_seq = events.iter().map(|e| e.seq).max().unwrap();
        assert_eq!(max_seq, 2 * STRIPE_CAPACITY as u64 - 1);
    }

    #[test]
    fn concurrent_spans_keep_per_thread_nesting() {
        let j = SpanJournal::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        let _q = j.span("query");
                        let _e = j.span("evaluate:era");
                    }
                });
            }
        });
        let events = j.snapshot();
        assert_eq!(events.len(), 4 * 100 * 4);
        let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in tids {
            let per_thread: Vec<SpanEvent> =
                events.iter().filter(|e| e.tid == tid).copied().collect();
            check_nesting(&per_thread).unwrap();
        }
    }

    #[test]
    fn slow_query_log_bounds_and_renders() {
        // Capacity eviction + JSON rendering of hostile query text.
        let log = SlowQueryLog::new();
        log.set_threshold(Some(Duration::from_millis(5)));
        assert!(log.qualifies(5_000_000));
        assert!(!log.qualifies(4_999_999));
        for i in 0..40 {
            log.record(SlowQuery {
                query: format!("//article[about(., \"tab\there\" №{i})]"),
                strategy: "era".into(),
                total: Duration::from_millis(6),
                trace: QueryTrace::default(),
                spans: Vec::new(),
                trace_id: (i % 2 == 0).then_some(0xabcd),
                truncated: false,
            });
        }
        assert_eq!(log.len(), 32);
        let json = log.to_json();
        assert!(json.contains("\\\"tab\\there\\\""));
        assert!(json.contains("№39)"));
        assert!(json.contains("№8)"));
        assert!(!json.contains("№7)")); // oldest 8 evicted
        log.set_threshold(None);
        assert!(!log.qualifies(u64::MAX - 1));
    }
}
