//! Log-bucketed latency histograms (HDR-style): fixed-size arrays of relaxed
//! atomic buckets, cheap enough to record into on every pager read, and
//! mergeable snapshots with percentile queries for the metrics surface.
//!
//! Bucketing scheme — values are nanoseconds:
//!
//! * values `0..16` get one exact bucket each (the first two octaves);
//! * every later octave `[2^m, 2^(m+1))` is split into 8 equal sub-buckets,
//!   so any recorded value lands in a bucket whose width is ≤ 1/8 of the
//!   value: the **relative error of any reported quantile is ≤ 12.5%**
//!   (one bucket).
//!
//! That gives `16 + 60*8 = 496` buckets covering the full `u64` range in a
//! fixed ~4 KiB array — no resizing, no locking, `fetch_add(Relaxed)` per
//! record, exactly the discipline of the counter layer.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::{json_field, ToJson};

/// Sub-bucket resolution: 2^3 = 8 sub-buckets per octave.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Values below `2 * SUB` (= 16) are bucketed exactly, one value per bucket.
const LINEAR: u64 = (2 * SUB) as u64;
/// Total bucket count: 16 linear + 8 per octave for octaves 4..=63.
pub const BUCKETS: usize = 2 * SUB + (63 - SUB_BITS as usize) * SUB;

/// Index of the bucket holding `v` (nanoseconds).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < LINEAR {
        v as usize
    } else {
        // m = index of the most significant set bit, ≥ 4 here.
        let m = 63 - v.leading_zeros();
        let sub = ((v >> (m - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        2 * SUB + (m as usize - 4) * SUB + sub
    }
}

/// Inclusive upper bound (ns) of bucket `i` — the value reported for any
/// quantile that lands in the bucket.
fn bucket_upper(i: usize) -> u64 {
    if i < 2 * SUB {
        i as u64
    } else {
        let oct = (i - 2 * SUB) / SUB;
        let sub = ((i - 2 * SUB) % SUB) as u64;
        let m = oct as u32 + 4;
        let width = 1u64 << (m - SUB_BITS);
        // Written as `lower - 1 + span` so the top bucket (m = 63, sub = 7)
        // lands exactly on u64::MAX without overflowing.
        (1u64 << m) - 1 + (sub + 1) * width
    }
}

/// A running stopwatch, or a no-op when its timer group is paused.
///
/// Call sites do `let sw = timers.start(); ...; timers.page_read.observe(&sw);`
/// — one `Instant::now` at start, one at observe, and *neither* when the
/// group is paused, which is how the overhead bench measures a true
/// telemetry-off baseline.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// A stopwatch started now.
    #[inline]
    pub fn started() -> Stopwatch {
        Stopwatch(Some(Instant::now()))
    }

    /// A stopwatch that records nothing.
    #[inline]
    pub fn disabled() -> Stopwatch {
        Stopwatch(None)
    }

    /// Nanoseconds since start, or `None` for a disabled stopwatch.
    #[inline]
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.0
            .map(|t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }
}

/// A fixed-size, log-bucketed latency histogram of nanosecond values.
///
/// All updates are relaxed atomics; the histogram is always-on and shared by
/// `Arc` exactly like the counter groups.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    /// Sum of recorded values (ns), saturating.
    sum: AtomicU64,
    /// Largest recorded value (ns).
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (nanoseconds).
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        // Saturate rather than wrap: u64 ns ≈ 584 years of accumulated time,
        // but a long-lived process merging shard sums could conceivably get
        // there, and a wrapped sum would poison every later mean.
        self.sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            })
            .ok();
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a [`Duration`].
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records the elapsed time of `sw`; no-op for a disabled stopwatch.
    #[inline]
    pub fn observe(&self, sw: &Stopwatch) {
        if let Some(ns) = sw.elapsed_ns() {
            self.record(ns);
        }
    }

    /// A point-in-time copy. Concurrent `record`s may straddle the copy;
    /// the snapshot's `count` is derived from the bucket array itself so the
    /// snapshot is always internally consistent (cumulative buckets sum to
    /// `count`), while `sum`/`max` are independently-read approximations.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; BUCKETS];
        let mut count = 0u64;
        for (slot, bucket) in buckets.iter_mut().zip(self.buckets.iter()) {
            let v = bucket.load(Ordering::Relaxed);
            *slot = v;
            count = count.saturating_add(v);
        }
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`Histogram`]: mergeable, subtractable, queryable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values in nanoseconds (saturating).
    pub fn sum_ns(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// The value (ns) at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the `ceil(q * count)`-th smallest recorded value,
    /// so the answer is within one bucket (≤ 12.5% relative error) of the
    /// true quantile. Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                // Never report beyond the observed max (the last bucket's
                // upper bound can overshoot it by the bucket width).
                return bucket_upper(i).min(self.max.max(i as u64));
            }
        }
        self.max
    }

    /// Union of two snapshots (e.g. per-shard histograms folded into one):
    /// per-bucket sums, saturating.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(other.buckets.iter())
                .map(|(a, b)| a.saturating_add(*b))
                .collect(),
            count: self.count.saturating_add(other.count),
            sum: self.sum.saturating_add(other.sum),
            max: self.max.max(other.max),
        }
    }

    /// Per-bucket difference `self - earlier`, saturating — the histogram of
    /// values recorded between the two snapshots. `max` cannot be windowed
    /// and is carried over from `self`.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(earlier.buckets.iter())
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }

    /// Non-empty `(upper_bound_ns, count)` pairs in increasing bound order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
            .collect()
    }

    /// Appends this histogram in Prometheus text exposition format 0.0.4 as
    /// metric `name` (which should end in `_seconds`): cumulative
    /// `_bucket{le="..."}` lines (bounds converted ns → seconds), terminated
    /// by `+Inf`, then `_sum` and `_count`. Empty buckets are elided — the
    /// series stays cumulative and `+Inf` always equals `_count`.
    pub fn write_prometheus(&self, out: &mut String, name: &str) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (upper, c) in self.nonzero_buckets() {
            cumulative = cumulative.saturating_add(c);
            let le = upper as f64 / 1e9;
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", self.count);
        let _ = writeln!(out, "{name}_sum {}", self.sum as f64 / 1e9);
        let _ = writeln!(out, "{name}_count {}", self.count);
    }
}

impl ToJson for HistogramSnapshot {
    fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        out.push('{');
        json_field(out, "count", self.count);
        out.push(',');
        json_field(out, "sum_ns", self.sum);
        out.push(',');
        json_field(out, "max_ns", self.max);
        out.push(',');
        json_field(out, "p50_ns", self.percentile(0.50));
        out.push(',');
        json_field(out, "p90_ns", self.percentile(0.90));
        out.push(',');
        json_field(out, "p99_ns", self.percentile(0.99));
        out.push(',');
        json_field(out, "p999_ns", self.percentile(0.999));
        out.push_str(",\"buckets\":[");
        for (i, (upper, c)) in self.nonzero_buckets().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{upper},{c}]");
        }
        out.push_str("]}");
    }
}

/// Defines a named group of histograms with a shared pause switch, mirroring
/// `counter_group!`: `new()`, per-field public [`Histogram`]s, `start()`
/// returning a [`Stopwatch`] (disabled while the group is paused), and
/// `each()` for the metrics registry to iterate fields by name.
macro_rules! histogram_group {
    (
        $(#[$group_meta:meta])*
        histograms $name:ident {
            $($(#[$field_meta:meta])* $field:ident),+ $(,)?
        }
    ) => {
        $(#[$group_meta])*
        #[derive(Debug, Default)]
        pub struct $name {
            $($(#[$field_meta])* pub $field: Histogram,)+
            enabled: AtomicBool,
        }

        impl $name {
            /// A zeroed, enabled group.
            pub fn new() -> $name {
                $name {
                    $($field: Histogram::new(),)+
                    enabled: AtomicBool::new(true),
                }
            }

            /// Pauses or resumes recording. Paused groups hand out disabled
            /// stopwatches, so call sites skip both `Instant::now` calls.
            pub fn set_enabled(&self, on: bool) {
                self.enabled.store(on, Ordering::Relaxed);
            }

            /// Whether the group is recording.
            pub fn enabled(&self) -> bool {
                self.enabled.load(Ordering::Relaxed)
            }

            /// A stopwatch honouring the group's pause switch.
            #[inline]
            pub fn start(&self) -> Stopwatch {
                if self.enabled() {
                    Stopwatch::started()
                } else {
                    Stopwatch::disabled()
                }
            }

            /// `(field_name, histogram)` pairs, for exposition.
            pub fn each(&self) -> Vec<(&'static str, &Histogram)> {
                vec![$((stringify!($field), &self.$field)),+]
            }
        }
    };
}

histogram_group! {
    /// Storage-layer I/O latencies, owned by the pager and shared (like
    /// [`crate::StorageCounters`]) with the buffer pool and the store.
    histograms StorageTimers {
        /// One pager `read_page` (WAL-map consult + data-file read).
        page_read,
        /// One pager `write_page` (WAL append in WAL mode, in-place write
        /// otherwise).
        page_write,
        /// One data-file fsync (`sync_data_file`).
        fsync,
        /// One WAL record append (image or alloc), including its write.
        wal_append,
        /// One full checkpoint (seal + apply + sync + truncate).
        checkpoint,
    }
}

histogram_group! {
    /// Query-path latencies, owned by the index-level
    /// [`crate::registry::Telemetry`] and recorded by the engine.
    histograms QueryTimers {
        /// End-to-end query time (translate + evaluate + rank).
        query,
        /// NEXI parse + summary translation.
        translate,
        /// Final ranking / answer assembly.
        rank,
        /// ERA strategy evaluation.
        era_eval,
        /// TA strategy evaluation.
        ta_eval,
        /// Merge strategy evaluation.
        merge_eval,
        /// Race (TA ∥ Merge) evaluation.
        race_eval,
    }
}

histogram_group! {
    /// Maintenance-side latencies: the reconcile loop's phases and how long
    /// queries/reconciles waited at the maintenance gate.
    histograms MaintTimers {
        /// Query-side wait to acquire the maintenance read gate.
        read_gate_wait,
        /// Reconciler wait to acquire the maintenance write gate.
        write_gate_wait,
        /// One full reconcile cycle.
        reconcile_cycle,
        /// Cost measurement/prediction phase of a cycle.
        reconcile_measure,
        /// Apply phase (drops + adds under the write gate).
        reconcile_apply,
        /// The checkpoint flush ending a changed cycle.
        reconcile_checkpoint,
    }
}

histogram_group! {
    /// Serving-side latencies of the HTTP front end, measured around the
    /// shared request handler (so they include queueing, parsing, and cache
    /// lookups — everything a client waits for except the network).
    histograms ServeTimers {
        /// End-to-end request time from admission to response written.
        request,
        /// Time a request spent waiting in the bounded queue before a
        /// worker picked it up.
        queue_wait,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_round_trips_bounds() {
        // Every value must land in a bucket whose bounds contain it.
        for v in [
            0u64,
            1,
            7,
            15,
            16,
            17,
            100,
            1_000,
            123_456,
            u32::MAX as u64,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            assert!(
                v <= bucket_upper(i),
                "v={v} above upper bound {} of bucket {i}",
                bucket_upper(i)
            );
            if i > 0 {
                assert!(
                    v > bucket_upper(i - 1),
                    "v={v} not above previous bucket's bound {}",
                    bucket_upper(i - 1)
                );
            }
        }
    }

    #[test]
    fn bucket_bounds_strictly_increase() {
        for i in 1..BUCKETS {
            assert!(bucket_upper(i) > bucket_upper(i - 1), "bucket {i}");
        }
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn percentiles_within_one_bucket_relative_error() {
        // A known uniform distribution: 1..=10_000 ns, once each.
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 10_000);
        for (q, exact) in [(0.50, 5_000.0), (0.90, 9_000.0), (0.99, 9_900.0)] {
            let got = s.percentile(q) as f64;
            // Upper bound of the true bucket: within 12.5% above, never below.
            assert!(
                got >= exact && got <= exact * 1.125,
                "q={q}: got {got}, exact {exact}"
            );
        }
        assert_eq!(s.percentile(1.0), s.max_ns());
        assert_eq!(s.max_ns(), 10_000);
    }

    #[test]
    fn merged_shard_snapshots_equal_union() {
        let a = Histogram::new();
        let b = Histogram::new();
        let union = Histogram::new();
        for v in 0..2_000u64 {
            let x = v * 37 % 100_000;
            if v % 2 == 0 { &a } else { &b }.record(x);
            union.record(x);
        }
        assert_eq!(a.snapshot().merge(&b.snapshot()), union.snapshot());
    }

    #[test]
    fn delta_windows_between_snapshots() {
        let h = Histogram::new();
        h.record(10);
        h.record(100);
        let before = h.snapshot();
        h.record(1_000);
        let d = h.snapshot().delta(&before);
        assert_eq!(d.count(), 1);
        assert_eq!(d.nonzero_buckets().len(), 1);
        assert!(d.percentile(0.5) >= 1_000);
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_inf_terminated() {
        let h = Histogram::new();
        for v in [50u64, 50, 5_000, 500_000] {
            h.record(v);
        }
        let mut out = String::new();
        h.snapshot().write_prometheus(&mut out, "trex_test_seconds");
        assert!(out.starts_with("# TYPE trex_test_seconds histogram\n"));
        let mut last = 0u64;
        let mut inf_seen = false;
        for line in out.lines().filter(|l| l.contains("_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-cumulative: {line}");
            last = v;
            if line.contains("le=\"+Inf\"") {
                inf_seen = true;
                assert_eq!(v, 4);
            }
        }
        assert!(inf_seen);
        assert!(out.contains("trex_test_seconds_sum "));
        assert!(out.ends_with("trex_test_seconds_count 4\n"));
    }

    #[test]
    fn paused_group_hands_out_disabled_stopwatches() {
        let t = QueryTimers::new();
        t.set_enabled(false);
        let sw = t.start();
        assert!(sw.elapsed_ns().is_none());
        t.query.observe(&sw);
        assert_eq!(t.query.snapshot().count(), 0);
        t.set_enabled(true);
        t.query.observe(&t.start());
        assert_eq!(t.query.snapshot().count(), 1);
    }

    #[test]
    fn histograms_are_thread_safe() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for v in 0..1_000u64 {
                        h.record(v);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count(), 4_000);
        assert_eq!(h.snapshot().max_ns(), 999);
    }
}
