//! The advisor decision journal: a structured record of every reconcile
//! cycle — what the workload looked like, what the cost model predicted,
//! what was measured, and which lists were materialized or dropped — kept
//! in a bounded in-memory ring plus an optional on-disk rotating JSONL
//! sidecar so decisions survive a restart.
//!
//! The types here are plain data so the `obs` crate stays dependency-free:
//! the self-management layer (which owns the real `ReconcileReport`)
//! flattens its reports into [`CycleRecord`]s and pushes them through
//! [`AdvisorJournal::record`]. The serving layer renders the ring at
//! `/v1/advisor/history` and `/v1/advisor/last`; the CLI tails the sidecar.

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;

use crate::{json_escape, json_field, Counter, ToJson};

/// One query shape from the workload snapshot the advisor optimized for.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShapeRecord {
    /// Raw NEXI text of the shape.
    pub nexi: String,
    /// Top-k depth of the shape.
    pub k: u64,
    /// Observed frequency (heat) in the profiling window.
    pub frequency: f64,
    /// Measured ERA execution time, microseconds (the cost baseline).
    pub measured_era_us: f64,
    /// Model-predicted Merge execution time, microseconds.
    pub predicted_merge_us: f64,
    /// Model-predicted TA execution time, microseconds.
    pub predicted_ta_us: f64,
    /// What the solver chose for the shape: `"erpl"`, `"rpl"`, or `"none"`.
    pub choice: String,
    /// Bytes of redundant lists backing the choice (0 for `"none"`).
    pub bytes: u64,
}

impl ToJson for ShapeRecord {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"nexi\":\"");
        out.push_str(&json_escape(&self.nexi));
        out.push_str("\",");
        json_field(out, "k", self.k);
        out.push(',');
        json_field(out, "frequency", format!("{:.3}", self.frequency));
        out.push(',');
        json_field(
            out,
            "measured_era_us",
            format!("{:.1}", self.measured_era_us),
        );
        out.push(',');
        json_field(
            out,
            "predicted_merge_us",
            format!("{:.1}", self.predicted_merge_us),
        );
        out.push(',');
        json_field(
            out,
            "predicted_ta_us",
            format!("{:.1}", self.predicted_ta_us),
        );
        out.push_str(",\"choice\":\"");
        out.push_str(&json_escape(&self.choice));
        out.push_str("\",");
        json_field(out, "bytes", self.bytes);
        out.push('}');
    }
}

/// One list the cycle materialized or dropped.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ListDeltaRecord {
    /// Partition the mutation applied to (0 for single-store systems).
    pub partition: u64,
    /// The list's keyword term.
    pub term: String,
    /// The list's summary id.
    pub sid: u64,
    /// List family: `"erpl"` or `"rpl"`.
    pub kind: String,
    /// `"add"` or `"drop"`.
    pub action: String,
    /// Size of the list, bytes (the byte delta of the mutation).
    pub bytes: u64,
}

impl ToJson for ListDeltaRecord {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        json_field(out, "partition", self.partition);
        out.push_str(",\"term\":\"");
        out.push_str(&json_escape(&self.term));
        out.push_str("\",");
        json_field(out, "sid", self.sid);
        out.push_str(",\"kind\":\"");
        out.push_str(&json_escape(&self.kind));
        out.push_str("\",\"action\":\"");
        out.push_str(&json_escape(&self.action));
        out.push_str("\",");
        json_field(out, "bytes", self.bytes);
        out.push('}');
    }
}

/// One partition's share of the cycle budget (partitioned systems only).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SplitRecord {
    /// Partition ordinal.
    pub partition: u64,
    /// Workload heat that earned the share.
    pub heat: f64,
    /// Bytes of the total budget assigned to the partition.
    pub budget_bytes: u64,
}

impl ToJson for SplitRecord {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        json_field(out, "partition", self.partition);
        out.push(',');
        json_field(out, "heat", format!("{:.3}", self.heat));
        out.push(',');
        json_field(out, "budget_bytes", self.budget_bytes);
        out.push('}');
    }
}

/// Everything one reconcile cycle decided and did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CycleRecord {
    /// Monotonic cycle ordinal of the emitting manager.
    pub cycle: u64,
    /// Wall-clock completion time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Maintenance generation after the cycle's mutations.
    pub generation: u64,
    /// Byte budget the solver worked under.
    pub budget_bytes: u64,
    /// Redundant-list bytes resident after the cycle.
    pub bytes_used: u64,
    /// Lists written this cycle.
    pub lists_materialized: u64,
    /// Lists dropped this cycle.
    pub lists_dropped: u64,
    /// Total time queries were excluded by the write gate, microseconds.
    pub gate_pause_us: u64,
    /// End-to-end cycle wall time, microseconds.
    pub wall_us: u64,
    /// Workload snapshot with per-shape predicted vs. measured costs.
    pub shapes: Vec<ShapeRecord>,
    /// Lists materialized/dropped, with byte deltas.
    pub deltas: Vec<ListDeltaRecord>,
    /// Per-partition budget splits (empty for single-store systems).
    pub splits: Vec<SplitRecord>,
}

impl ToJson for CycleRecord {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        json_field(out, "cycle", self.cycle);
        out.push(',');
        json_field(out, "unix_ms", self.unix_ms);
        out.push(',');
        json_field(out, "generation", self.generation);
        out.push(',');
        json_field(out, "budget_bytes", self.budget_bytes);
        out.push(',');
        json_field(out, "bytes_used", self.bytes_used);
        out.push(',');
        json_field(out, "lists_materialized", self.lists_materialized);
        out.push(',');
        json_field(out, "lists_dropped", self.lists_dropped);
        out.push(',');
        json_field(out, "gate_pause_us", self.gate_pause_us);
        out.push(',');
        json_field(out, "wall_us", self.wall_us);
        out.push_str(",\"shapes\":[");
        for (i, s) in self.shapes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            s.write_json(out);
        }
        out.push_str("],\"deltas\":[");
        for (i, d) in self.deltas.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            d.write_json(out);
        }
        out.push_str("],\"splits\":[");
        for (i, p) in self.splits.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            p.write_json(out);
        }
        out.push_str("]}");
    }
}

/// Sidecar rotation threshold: when the live file passes this, it is
/// renamed to `<path>.1` (replacing any previous rollover) and a fresh
/// file is started — at most two files, bounded disk.
const SIDECAR_ROTATE_BYTES: u64 = 4 << 20;

#[derive(Debug)]
struct Sidecar {
    path: PathBuf,
    file: File,
    bytes: u64,
}

/// Bounded ring of recent [`CycleRecord`]s plus the optional JSONL sidecar.
#[derive(Debug)]
pub struct AdvisorJournal {
    ring: Mutex<VecDeque<CycleRecord>>,
    capacity: usize,
    sidecar: Mutex<Option<Sidecar>>,
    /// Cycles recorded since creation (ring evictions included).
    pub recorded: Counter,
}

impl Default for AdvisorJournal {
    fn default() -> AdvisorJournal {
        AdvisorJournal::new()
    }
}

impl AdvisorJournal {
    /// An empty journal keeping the 64 most recent cycles, no sidecar.
    pub fn new() -> AdvisorJournal {
        AdvisorJournal::with_capacity(64)
    }

    /// An empty journal keeping the `capacity` most recent cycles.
    pub fn with_capacity(capacity: usize) -> AdvisorJournal {
        AdvisorJournal {
            ring: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            sidecar: Mutex::new(None),
            recorded: Counter::new(),
        }
    }

    /// Attaches (or replaces) the on-disk sidecar: every later record is
    /// appended to `path` as one JSON line, rotating to `<path>.1` past the
    /// size cap. The file is opened in append mode so restarts extend the
    /// existing history.
    pub fn attach_sidecar(&self, path: PathBuf) -> std::io::Result<()> {
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
        let mut slot = self.sidecar.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(Sidecar { path, file, bytes });
        Ok(())
    }

    /// The sidecar path, if one is attached.
    pub fn sidecar_path(&self) -> Option<PathBuf> {
        self.sidecar
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|s| s.path.clone())
    }

    /// Records one cycle: pushes it into the ring (evicting the oldest past
    /// capacity) and appends one JSONL line to the sidecar if attached.
    /// Sidecar I/O errors are swallowed — the journal is observability, and
    /// a full disk must not fail a reconcile cycle.
    pub fn record(&self, record: CycleRecord) {
        let line = record.to_json();
        {
            let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
            if ring.len() == self.capacity {
                ring.pop_front();
            }
            ring.push_back(record);
        }
        self.recorded.incr();
        let mut slot = self.sidecar.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(sidecar) = slot.as_mut() {
            if sidecar.bytes >= SIDECAR_ROTATE_BYTES {
                let rolled = {
                    let mut name = sidecar.path.as_os_str().to_owned();
                    name.push(".1");
                    PathBuf::from(name)
                };
                let _ = std::fs::rename(&sidecar.path, &rolled);
                if let Ok(file) = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&sidecar.path)
                {
                    sidecar.file = file;
                    sidecar.bytes = 0;
                }
            }
            if writeln!(sidecar.file, "{line}").is_ok() {
                sidecar.bytes += line.len() as u64 + 1;
                let _ = sidecar.file.flush();
            }
        }
    }

    /// The most recent cycle, if any.
    pub fn last(&self) -> Option<CycleRecord> {
        self.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .back()
            .cloned()
    }

    /// All retained cycles, oldest first.
    pub fn history(&self) -> Vec<CycleRecord> {
        self.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained cycles.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `/v1/advisor/history` body: `{"v":1,"recorded":N,"cycles":[...]}`,
    /// oldest first.
    pub fn history_json(&self) -> String {
        let mut out = String::with_capacity(4 * 1024);
        out.push_str("{\"v\":1,");
        json_field(&mut out, "recorded", self.recorded.get());
        out.push_str(",\"cycles\":[");
        for (i, rec) in self.history().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            rec.write_json(&mut out);
        }
        out.push_str("]}");
        out
    }

    /// `/v1/advisor/last` body: the newest record, or `{"v":1,"cycles":0}`
    /// when no cycle has run yet.
    pub fn last_json(&self) -> String {
        match self.last() {
            Some(rec) => rec.to_json(),
            None => "{\"v\":1,\"cycles\":0}".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_json, JsonValue};

    fn record(cycle: u64) -> CycleRecord {
        CycleRecord {
            cycle,
            unix_ms: 1_000 + cycle,
            generation: cycle * 2,
            budget_bytes: 1 << 20,
            bytes_used: 512,
            lists_materialized: 1,
            lists_dropped: 0,
            gate_pause_us: 42,
            wall_us: 1_234,
            shapes: vec![ShapeRecord {
                nexi: "//a[about(., \"x\")]".into(),
                k: 10,
                frequency: 0.5,
                measured_era_us: 900.0,
                predicted_merge_us: 100.0,
                predicted_ta_us: 50.0,
                choice: "rpl".into(),
                bytes: 256,
            }],
            deltas: vec![ListDeltaRecord {
                partition: 0,
                term: "x".into(),
                sid: 7,
                kind: "rpl".into(),
                action: "add".into(),
                bytes: 256,
            }],
            splits: Vec::new(),
        }
    }

    #[test]
    fn ring_bounds_and_orders() {
        let j = AdvisorJournal::with_capacity(3);
        for c in 0..5 {
            j.record(record(c));
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.recorded.get(), 5);
        let hist = j.history();
        assert_eq!(hist[0].cycle, 2);
        assert_eq!(j.last().unwrap().cycle, 4);
    }

    #[test]
    fn history_json_parses_back() {
        let j = AdvisorJournal::new();
        j.record(record(1));
        j.record(record(2));
        let parsed = parse_json(&j.history_json()).unwrap();
        assert_eq!(parsed.get("v").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(parsed.get("recorded").and_then(JsonValue::as_u64), Some(2));
        let last = parse_json(&j.last_json()).unwrap();
        assert_eq!(last.get("cycle").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(
            last.get("gate_pause_us").and_then(JsonValue::as_u64),
            Some(42)
        );
    }

    #[test]
    fn empty_last_json_is_valid() {
        let j = AdvisorJournal::new();
        assert!(parse_json(&j.last_json()).is_ok());
        assert!(j.is_empty());
    }

    #[test]
    fn sidecar_appends_and_rotates() {
        let dir = std::env::temp_dir().join(format!(
            "trex-advisor-test-{}-{}",
            std::process::id(),
            crate::trace::unix_ms()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("advisor.jsonl");
        let j = AdvisorJournal::new();
        j.attach_sidecar(path.clone()).unwrap();
        j.record(record(1));
        j.record(record(2));
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 2);
        for line in body.lines() {
            parse_json(line).unwrap();
        }
        // Force rotation by faking a large accumulated size.
        {
            let mut slot = j.sidecar.lock().unwrap();
            slot.as_mut().unwrap().bytes = SIDECAR_ROTATE_BYTES;
        }
        j.record(record(3));
        let rolled = dir.join("advisor.jsonl.1");
        assert!(rolled.exists());
        let fresh = std::fs::read_to_string(&path).unwrap();
        assert_eq!(fresh.lines().count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_records_keep_grammar() {
        // The advisor-history endpoint must emit valid JSON even while
        // cycles are being recorded concurrently.
        let j = AdvisorJournal::with_capacity(16);
        std::thread::scope(|s| {
            for t in 0..4 {
                let j = &j;
                s.spawn(move || {
                    for c in 0..50 {
                        j.record(record(t * 100 + c));
                    }
                });
            }
            for _ in 0..20 {
                parse_json(&j.history_json()).expect("history stays valid JSON");
            }
        });
        assert_eq!(j.recorded.get(), 200);
        assert_eq!(j.len(), 16);
    }
}
