//! A minimal JSON value parser for the serving surface's request bodies.
//!
//! The workspace deliberately carries no serde; rendering is hand-rolled
//! via [`crate::ToJson`], and this module is the matching *reader*: an
//! RFC 8259 recursive-descent parser producing a [`JsonValue`] tree. It is
//! sized for the query endpoint's small request envelopes — inputs are
//! already capped by the HTTP body limit, and nesting is capped at
//! [`MAX_DEPTH`] so hostile bodies cannot overflow the stack.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted (objects + arrays combined).
pub const MAX_DEPTH: usize = 32;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Keys are unique (later duplicates win), order-insensitive.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on objects; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer: `None` for
    /// non-numbers, negatives, and non-integral values.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// A parse failure, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse_json(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&c) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            match c {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uXXXX with a low surrogate.
                            let scalar = if (0xD800..0xDC00).contains(&unit) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&unit) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                unit
                            };
                            match char::from_u32(scalar) {
                                Some(ch) => out.push(ch),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                0x00..=0x1f => return Err(self.err("raw control character in string")),
                _ => {
                    // Consume one complete UTF-8 sequence (input is &str, so
                    // sequences are valid; just advance over continuations).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| (b & 0xC0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(&c) = self.bytes.get(self.pos) else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match c {
                b'0'..=b'9' => (c - b'0') as u32,
                b'a'..=b'f' => (c - b'a') as u32 + 10,
                b'A'..=b'F' => (c - b'A') as u32 + 10,
                _ => return Err(self.err("bad hex digit in \\u escape")),
            };
            v = (v << 4) | digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(JsonValue::Number(n)),
            _ => Err(self.err("malformed number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_request_envelope_shape() {
        let v = parse_json(
            r#"{"nexi": "//article//sec[about(., xml)]", "k": 10,
                "strategy": "auto", "trace": false, "deadline_ms": 250}"#,
        )
        .unwrap();
        assert_eq!(
            v.get("nexi").and_then(JsonValue::as_str),
            Some("//article//sec[about(., xml)]")
        );
        assert_eq!(v.get("k").and_then(JsonValue::as_u64), Some(10));
        assert_eq!(v.get("trace").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(v.get("deadline_ms").and_then(JsonValue::as_u64), Some(250));
        assert!(v.get("absent").is_none());
    }

    #[test]
    fn round_trips_escapes() {
        let v = parse_json(r#"{"s": "a\"b\\c\nd\u00e9 \ud83d\ude00"}"#).unwrap();
        assert_eq!(
            v.get("s").and_then(JsonValue::as_str),
            Some("a\"b\\c\ndé 😀")
        );
    }

    #[test]
    fn escape_then_parse_is_identity() {
        let hostile = "quote\" slash\\ ctrl\u{01}\ttab ünïcode 中文";
        let doc = format!("{{\"x\":\"{}\"}}", crate::json_escape(hostile));
        let v = parse_json(&doc).unwrap();
        assert_eq!(v.get("x").and_then(JsonValue::as_str), Some(hostile));
    }

    #[test]
    fn numbers_arrays_and_nulls() {
        let v = parse_json(r#"[1, -2.5, 1e3, null, true, []]"#).unwrap();
        let JsonValue::Array(items) = v else {
            panic!("not an array")
        };
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(-2.5));
        assert_eq!(items[2].as_f64(), Some(1000.0));
        assert!(items[3].is_null());
        assert_eq!(items[4].as_bool(), Some(true));
        assert_eq!(items[1].as_u64(), None, "negative fraction is not a u64");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\" 1}",
            "[1,]",
            "{\"a\":1,}",
            "\"unterminated",
            "tru",
            "1 2",
            "{\"a\":\u{01}\"x\"}",
            "nan",
            "\"\\u12g4\"",
            "\"\\ud800\"",
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
        // Nesting bomb: rejected, not a stack overflow.
        let deep = "[".repeat(4000) + &"]".repeat(4000);
        assert!(parse_json(&deep).is_err());
    }
}
