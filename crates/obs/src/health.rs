//! Readiness state for the serving surface: `/healthz` stays a pure
//! liveness probe ("the process accepts connections"), while `/readyz`
//! renders this struct — not ready during open/recovery, plus the current
//! maintenance generation and whether a reconcile or fold is in flight.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::{json_field, Gauge, ToJson};

/// Shared readiness state. The facade flips `ready` once its store has
/// opened (recovery included); manager loops raise the in-flight gauges
/// around their cycles; the maintenance layer contributes its generation
/// cell(s) so readiness reports which index version is being served.
#[derive(Debug, Default)]
pub struct Health {
    ready: AtomicBool,
    /// Reconcile cycles currently running (any partition).
    pub reconciles_in_flight: Gauge,
    /// Delta folds currently running.
    pub folds_in_flight: Gauge,
    /// Maintenance generation cells; readiness reports the max (the same
    /// rule the partitioned query path uses for result generations).
    generations: Mutex<Vec<Arc<AtomicU64>>>,
}

impl Health {
    /// Fresh, not-yet-ready state.
    pub fn new() -> Health {
        Health::default()
    }

    /// Marks the system ready (store opened, recovery done) or not.
    pub fn set_ready(&self, on: bool) {
        self.ready.store(on, Ordering::Release);
    }

    /// Whether the system is ready to serve.
    pub fn ready(&self) -> bool {
        self.ready.load(Ordering::Acquire)
    }

    /// Registers one maintenance generation cell (one per open store).
    pub fn attach_generation(&self, cell: Arc<AtomicU64>) {
        self.generations
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(cell);
    }

    /// The current maintenance generation: the max across attached cells,
    /// 0 when none are attached.
    pub fn generation(&self) -> u64 {
        self.generations
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .max()
            .unwrap_or(0)
    }

    /// Whether a reconcile cycle is running right now.
    pub fn reconcile_in_flight(&self) -> bool {
        self.reconciles_in_flight.get() > 0
    }

    /// Whether a delta fold is running right now.
    pub fn fold_in_flight(&self) -> bool {
        self.folds_in_flight.get() > 0
    }
}

impl ToJson for Health {
    /// The `/readyz` body.
    fn write_json(&self, out: &mut String) {
        out.push('{');
        json_field(out, "ready", self.ready());
        out.push(',');
        json_field(out, "generation", self.generation());
        out.push(',');
        json_field(out, "reconcile_in_flight", self.reconcile_in_flight());
        out.push(',');
        json_field(out, "fold_in_flight", self.fold_in_flight());
        out.push('}');
    }
}

/// RAII marker raising a gauge for the duration of a scope (used by the
/// manager loops to mark reconcile/fold cycles in flight exception-safely).
#[derive(Debug)]
pub struct InFlight<'a>(&'a Gauge);

impl<'a> InFlight<'a> {
    /// Raises `gauge` until the returned marker drops.
    pub fn enter(gauge: &'a Gauge) -> InFlight<'a> {
        gauge.incr();
        InFlight(gauge)
    }
}

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.0.decr();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readiness_flips_and_renders() {
        let h = Health::new();
        assert!(!h.ready());
        assert!(h.to_json().contains("\"ready\":false"));
        h.set_ready(true);
        let json = h.to_json();
        assert!(json.contains("\"ready\":true"));
        assert!(json.contains("\"generation\":0"));
        assert!(json.contains("\"reconcile_in_flight\":false"));
        assert!(json.contains("\"fold_in_flight\":false"));
    }

    #[test]
    fn generation_is_max_across_cells() {
        let h = Health::new();
        let a = Arc::new(AtomicU64::new(3));
        let b = Arc::new(AtomicU64::new(7));
        h.attach_generation(a.clone());
        h.attach_generation(b);
        assert_eq!(h.generation(), 7);
        a.store(11, Ordering::Release);
        assert_eq!(h.generation(), 11);
    }

    #[test]
    fn in_flight_marker_is_scoped() {
        let h = Health::new();
        {
            let _m = InFlight::enter(&h.reconciles_in_flight);
            assert!(h.reconcile_in_flight());
            let _n = InFlight::enter(&h.folds_in_flight);
            assert!(h.to_json().contains("\"fold_in_flight\":true"));
        }
        assert!(!h.reconcile_in_flight());
        assert!(!h.fold_in_flight());
    }
}
