//! Observability for TReX, in three always-on layers:
//!
//! 1. **Counters** ([`StorageCounters`], [`IndexCounters`], ... ) — relaxed
//!    atomic event counts, snapshotted/delta'd around queries to build
//!    [`QueryTrace`]s tied to the paper's §4 cost model.
//! 2. **Histograms** ([`hist`]) — log-bucketed latency distributions
//!    (p50/p90/p99/p999 + max, ≤12.5% relative error) for the query path,
//!    storage I/O, the WAL, the maintenance gate, and reconcile cycles.
//! 3. **Spans** ([`span`]) — a striped in-memory ring of begin/end events
//!    with parent links, powering the slow-query log.
//!
//! [`registry::MetricsRegistry`] gathers all three behind
//! `render_prometheus()` / `render_json()` for the serving surface.
//!
//! Design rules:
//!
//! * Counters are **always maintained** with `Ordering::Relaxed` increments —
//!   a single uncontended atomic add per counted event, cheap enough to leave
//!   on in production builds. The *trace* toggle only controls whether a
//!   query takes before/after snapshots and attaches a [`QueryTrace`].
//!   Histograms and spans follow the same discipline and are on by default;
//!   a registry-level pause switch exists so the overhead bench can measure
//!   a true off baseline.
//! * Layers share counters by `Arc`: the buffer pool and pager share one
//!   [`StorageCounters`], every table/iterator of an index shares one
//!   [`IndexCounters`]. Snapshot deltas around a query therefore capture all
//!   work done on its behalf (and, under concurrency, of its neighbours —
//!   totals remain exact).
//! * Serialization is hand-rolled JSON (no serde in the offline tree); every
//!   trace type knows how to render itself via [`ToJson`].

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

pub mod advisor;
pub mod drift;
pub mod health;
pub mod hist;
pub mod json;
pub mod registry;
pub mod span;
pub mod trace;

pub use advisor::{AdvisorJournal, CycleRecord, ListDeltaRecord, ShapeRecord, SplitRecord};
pub use drift::{
    DriftKind, DriftMonitor, DEFAULT_DRIFT_ALERT_THRESHOLD, DEFAULT_DRIFT_SAMPLE_EVERY, DRIFT_KINDS,
};
pub use health::{Health, InFlight};
pub use hist::{
    Histogram, HistogramSnapshot, MaintTimers, QueryTimers, ServeTimers, Stopwatch, StorageTimers,
};
pub use json::{parse_json, JsonError, JsonValue};
pub use registry::{MetricsRegistry, PartitionMetrics, ServeMetrics, Telemetry};
pub use span::{
    check_nesting, render_events, SlowQuery, SlowQueryLog, SpanEvent, SpanGuard, SpanJournal,
    SpanKind, DEFAULT_SLOW_THRESHOLD,
};
pub use trace::{
    format_traceparent, gen_span_id, gen_trace_id, parse_traceparent, tree_from_events, unix_ms,
    TraceContext, TraceNode, TraceRecord, TraceStore,
};

/// Version of every exposition schema this build emits: the `BENCH_*.json`
/// header, the `/metrics.json` layout, and the advisor/trace wire bodies
/// share this one number so `scripts/check_bench_headers.sh` can assert a
/// whole experiment run came from one schema.
pub const SCHEMA_VERSION: u32 = 1;

/// The build's git revision for exposition, matching the unified BENCH
/// header's sourcing: `TREX_BENCH_GIT_REV` from the environment, `"unknown"`
/// when unset (deterministic across reruns under one environment).
pub fn build_git_rev() -> String {
    std::env::var("TREX_BENCH_GIT_REV").unwrap_or_else(|_| "unknown".to_string())
}

/// A relaxed atomic event counter.
///
/// `Relaxed` is sufficient: counters are statistics, not synchronization.
/// Reads racing with increments observe some recent value; snapshot deltas
/// taken on the querying thread see at least that thread's own events.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A relaxed atomic level gauge (a value that goes up *and* down, e.g. the
/// current admission-queue depth). Same discipline as [`Counter`]: relaxed
/// ordering, statistics not synchronization.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Raises the level by one.
    #[inline]
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Lowers the level by one.
    #[inline]
    pub fn decr(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Types that render themselves as a JSON value.
pub trait ToJson {
    /// Appends this value's JSON rendering to `out`.
    fn write_json(&self, out: &mut String);

    /// This value as a standalone JSON string.
    fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

/// Writes one `"key": value` pair (caller manages commas/braces).
pub fn json_field(out: &mut String, key: &str, value: impl std::fmt::Display) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

/// Escapes a string for embedding in JSON: `"` and `\` are backslashed,
/// every control character U+0000–U+001F is escaped (short forms for
/// `\b \t \n \f \r`, `\u00XX` otherwise), and non-ASCII passes through
/// unescaped (the output is UTF-8, which JSON permits raw). Slow-query logs
/// carry raw NEXI text, so hostile input must round-trip exactly.
pub fn json_escape(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\u{08}' => out.push_str("\\b"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\u{0c}' => out.push_str("\\f"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`json_escape`] for round-trip testing: decodes one JSON
/// string body (no surrounding quotes). Returns `None` on malformed input.
pub fn json_unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            '/' => out.push('/'),
            'b' => out.push('\u{08}'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'f' => out.push('\u{0c}'),
            'r' => out.push('\r'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

macro_rules! counter_group {
    (
        $(#[$group_meta:meta])*
        counters $name:ident / snapshot $snap:ident {
            $($(#[$field_meta:meta])* $field:ident),+ $(,)?
        }
    ) => {
        $(#[$group_meta])*
        #[derive(Debug, Default)]
        pub struct $name {
            $($(#[$field_meta])* pub $field: Counter),+
        }

        impl $name {
            /// A zeroed counter group.
            pub const fn new() -> $name {
                $name { $($field: Counter::new()),+ }
            }

            /// A point-in-time copy of every counter.
            pub fn snapshot(&self) -> $snap {
                $snap { $($field: self.$field.get()),+ }
            }
        }

        #[doc = concat!("Point-in-time copy of [`", stringify!($name), "`].")]
        #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
        pub struct $snap {
            $($(#[$field_meta])* pub $field: u64),+
        }

        impl $snap {
            /// Per-field difference `self - earlier`, **saturating**: under
            /// concurrent updates (or after a reset) the "earlier" snapshot
            /// can observe a larger value than the "later" one; the delta
            /// then clamps to 0 instead of wrapping to ~`u64::MAX`.
            pub fn delta(&self, earlier: &$snap) -> $snap {
                $snap { $($field: self.$field.saturating_sub(earlier.$field)),+ }
            }

            /// Per-field sum (used to compare totals across threads),
            /// saturating like `delta`.
            pub fn sum(&self, other: &$snap) -> $snap {
                $snap { $($field: self.$field.saturating_add(other.$field)),+ }
            }

            /// `(field_name, value)` pairs, for exposition surfaces.
            pub fn fields(&self) -> Vec<(&'static str, u64)> {
                vec![$((stringify!($field), self.$field)),+]
            }
        }

        impl ToJson for $snap {
            fn write_json(&self, out: &mut String) {
                out.push('{');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    json_field(out, stringify!($field), self.$field);
                )+
                let _ = first;
                out.push('}');
            }
        }
    };
}

counter_group! {
    /// Page-level and cache-level storage work, shared by the pager (I/O),
    /// the buffer pool (hits/misses/evictions), and the B+-tree (node visits
    /// and cursor steps).
    counters StorageCounters / snapshot StorageSnapshot {
        /// Pages read from disk by the pager.
        page_reads,
        /// Pages written to disk by the pager.
        page_writes,
        /// Buffer-pool lookups served from memory.
        pool_hits,
        /// Buffer-pool lookups that had to fault the page in.
        pool_misses,
        /// Frames evicted to make room.
        pool_evictions,
        /// B+-tree nodes visited during descents.
        btree_node_visits,
        /// Entries yielded by B+-tree cursors.
        cursor_steps,
        /// Records appended to the write-ahead log (page images, alloc
        /// records; commit/checkpoint records are not counted — they mark
        /// protocol progress, not logged work).
        wal_appends,
        /// Bytes appended to the write-ahead log (record headers included).
        wal_bytes,
        /// Checkpoints completed (WAL sealed, folded into the data file,
        /// and truncated).
        checkpoints,
        /// Redo recoveries that replayed a sealed log at open.
        recoveries_run,
    }
}

counter_group! {
    /// Per-shard cache accounting of the sharded buffer pool. Every shard
    /// owns one group; the shard groups must sum exactly to the pool-level
    /// `pool_hits` / `pool_misses` / `pool_evictions` of the shared
    /// [`StorageCounters`] (each event increments both its shard's counter
    /// and the global one), which is how the concurrency tests prove no
    /// cache event is lost under threads.
    counters ShardCounters / snapshot ShardSnapshot {
        /// Lookups this shard served from memory.
        hits,
        /// Lookups this shard had to fault in from disk.
        misses,
        /// Frames this shard evicted to make room.
        evictions,
    }
}

counter_group! {
    /// Index-layer decode work: bytes and entries decoded from each of the
    /// three physical list families.
    counters IndexCounters / snapshot IndexSnapshot {
        /// Bytes of posting-list payload decoded.
        posting_bytes,
        /// Posting entries (positions) decoded.
        posting_entries,
        /// Bytes of RPL payload decoded.
        rpl_bytes,
        /// RPL entries decoded (TA sorted accesses happen here).
        rpl_entries,
        /// RPL block records fetched (each covers up to
        /// `trex_index::blocks::BLOCK_CAPACITY` entries).
        rpl_blocks,
        /// Bytes of ERPL payload decoded.
        erpl_bytes,
        /// ERPL entries decoded (Merge sequential accesses happen here).
        erpl_entries,
        /// ERPL block records fetched.
        erpl_blocks,
    }
}

counter_group! {
    /// Online self-management work (profiler + reconcile cycles): how the
    /// `SelfManager` observed the query stream and what it did to the
    /// redundant lists. `bytes_materialized - bytes_dropped` tracks the
    /// bytes brought under management since the counters were created; the
    /// authoritative live figure is the list registries' `total_bytes`.
    counters SelfManageCounters / snapshot SelfManageSnapshot {
        /// Queries the workload profiler recorded.
        queries_profiled,
        /// `Strategy::Auto` coverage checks that fell back to ERA because a
        /// needed RPL/ERPL list was absent (e.g. mid-reconcile).
        era_fallbacks,
        /// Reconcile cycles completed.
        cycles,
        /// Redundant lists written by reconcile cycles.
        lists_materialized,
        /// Redundant lists dropped by reconcile cycles.
        lists_dropped,
        /// Bytes of redundant lists written by reconcile cycles.
        bytes_materialized,
        /// Bytes of redundant lists dropped by reconcile cycles.
        bytes_dropped,
    }
}

counter_group! {
    /// Request accounting for the query-serving front end: admission-control
    /// outcomes, result-cache effectiveness, and error classes. `admitted`
    /// counts requests that entered the bounded queue; `shed` counts the
    /// 429s the admission controller turned away instead of queueing
    /// unboundedly, so `admitted + shed` is total offered load.
    counters ServeCounters / snapshot ServeSnapshot {
        /// Requests accepted into the bounded request queue.
        admitted,
        /// Requests shed with `429 Retry-After` because the queue was full.
        shed,
        /// Query executions answered from the result cache.
        cache_hits,
        /// Query executions that missed the result cache and ran a strategy.
        cache_misses,
        /// Query executions that bypassed the cache (trace requested, or
        /// caching disabled).
        cache_bypass,
        /// Queries that ran out of deadline budget mid-strategy (HTTP 408).
        deadline_exceeded,
        /// Requests rejected for malformed bodies or invalid NEXI (HTTP 400).
        parse_errors,
        /// Requests that failed inside the engine (HTTP 500).
        internal_errors,
    }
}

/// Strategy-level cost-model units for one query, in the vocabulary of §4 of
/// the paper: sorted accesses (sequential reads of score-ordered RPLs or
/// position-ordered ERPLs), random accesses (point lookups the engine had to
/// perform outside those scans), heap operations, and candidate set size.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CostUnits {
    /// Sequential accesses into sorted lists (TA depth × lists, or total
    /// ERPL entries merged).
    pub sorted_accesses: u64,
    /// Random (point) accesses; zero for the TReX strategies, which the
    /// paper designs to avoid random access entirely.
    pub random_accesses: u64,
    /// Heap pushes performed while maintaining the top-k.
    pub heap_pushes: u64,
    /// Heap pops performed while maintaining the top-k.
    pub heap_pops: u64,
    /// Peak size of the candidate set.
    pub candidates_peak: u64,
}

impl ToJson for CostUnits {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        json_field(out, "sorted_accesses", self.sorted_accesses);
        out.push(',');
        json_field(out, "random_accesses", self.random_accesses);
        out.push(',');
        json_field(out, "heap_pushes", self.heap_pushes);
        out.push(',');
        json_field(out, "heap_pops", self.heap_pops);
        out.push(',');
        json_field(out, "candidates_peak", self.candidates_peak);
        out.push('}');
    }
}

/// Wall-clock timings of the three query stages.
#[derive(Debug, Default, Clone, Copy)]
pub struct StageTimings {
    /// NEXI parse + summary translation.
    pub translate: Duration,
    /// Strategy execution (the dominant stage).
    pub evaluate: Duration,
    /// Final ranking / answer assembly.
    pub rank: Duration,
}

impl ToJson for StageTimings {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        json_field(out, "translate_us", self.translate.as_micros());
        out.push(',');
        json_field(out, "evaluate_us", self.evaluate.as_micros());
        out.push(',');
        json_field(out, "rank_us", self.rank.as_micros());
        out.push('}');
    }
}

/// Everything observed about one query: stage timings plus the storage,
/// index, and strategy counter deltas attributable to it.
#[derive(Debug, Default, Clone)]
pub struct QueryTrace {
    /// Which strategy ultimately answered (e.g. `"ta"`, `"merge"`).
    pub strategy: String,
    /// Stage wall-clock breakdown.
    pub stages: StageTimings,
    /// Storage-layer work during the query (buffer pool + pager + B+-tree).
    pub storage: StorageSnapshot,
    /// Index-layer decode work during the query.
    pub index: IndexSnapshot,
    /// Strategy-level cost-model units.
    pub cost: CostUnits,
}

impl QueryTrace {
    /// Total list entries this query decoded, across all list families.
    pub fn entries_decoded(&self) -> u64 {
        self.index.posting_entries + self.index.rpl_entries + self.index.erpl_entries
    }

    /// Total list bytes this query decoded, across all list families.
    pub fn bytes_decoded(&self) -> u64 {
        self.index.posting_bytes + self.index.rpl_bytes + self.index.erpl_bytes
    }
}

impl ToJson for QueryTrace {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        out.push_str("\"strategy\":\"");
        out.push_str(&json_escape(&self.strategy));
        out.push_str("\",\"stages\":");
        self.stages.write_json(out);
        out.push_str(",\"storage\":");
        self.storage.write_json(out);
        out.push_str(",\"index\":");
        self.index.write_json(out);
        out.push_str(",\"cost\":");
        self.cost.write_json(out);
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = StorageCounters::new();
        c.page_reads.add(3);
        c.pool_hits.incr();
        let a = c.snapshot();
        c.page_reads.incr();
        let b = c.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.page_reads, 1);
        assert_eq!(d.pool_hits, 0);
        assert_eq!(a.sum(&d).page_reads, 4);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.incr();
        g.incr();
        g.decr();
        assert_eq!(g.get(), 1);
        g.decr();
        g.decr();
        assert_eq!(g.get(), -1, "a gauge may legitimately dip below zero");
        g.set(42);
        assert_eq!(g.get(), 42);
    }

    #[test]
    fn snapshots_render_as_json() {
        let c = IndexCounters::new();
        c.rpl_entries.add(7);
        let json = c.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"rpl_entries\":7"));
    }

    #[test]
    fn trace_renders_nested_json() {
        let trace = QueryTrace {
            strategy: "ta".into(),
            ..QueryTrace::default()
        };
        let json = trace.to_json();
        assert!(json.contains("\"strategy\":\"ta\""));
        assert!(json.contains("\"stages\":{"));
        assert!(json.contains("\"cost\":{"));
        assert_eq!(trace.entries_decoded(), 0);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn escape_round_trips_hostile_strings() {
        // Embedded quotes, backslashes, tabs, every control character, and
        // multibyte UTF-8 — exactly what raw NEXI text in a slow-query log
        // can carry.
        let all_controls: String = (0u32..0x20).map(|c| char::from_u32(c).unwrap()).collect();
        let cases = [
            r#"//sec[about(., "quoted \ phrase")]"#,
            "tab\there, newline\nthere, cr\r, backspace\u{08}, formfeed\u{0c}",
            all_controls.as_str(),
            "多字节 UTF-8 · ελληνικά · emoji \u{1F50D} stay raw",
            "\u{0}\u{1}\u{1f}\u{7f}",
            "",
        ];
        for case in cases {
            let escaped = json_escape(case);
            // The escaped form contains no raw control characters and no
            // unescaped quote.
            assert!(escaped.chars().all(|c| (c as u32) >= 0x20));
            assert_eq!(
                json_unescape(&escaped).as_deref(),
                Some(case),
                "round-trip failed for {case:?}"
            );
        }
    }

    #[test]
    fn escape_uses_short_forms() {
        assert_eq!(json_escape("\u{08}\u{0c}"), "\\b\\f");
        assert_eq!(json_escape("\u{01}"), "\\u0001");
        assert_eq!(json_escape("ü"), "ü");
    }

    #[test]
    fn interleaved_snapshot_deltas_saturate_not_wrap() {
        // Loom-style interleaving without loom: four writer threads hammer a
        // counter group while two snapshot threads race snapshot pairs in
        // both orders. A snapshot taken "later" by one thread can observe
        // fewer relaxed increments than an "earlier" one taken by another
        // thread; `delta` must clamp those fields to 0, never wrap. With
        // wrapping subtraction this test trips immediately.
        const PER_THREAD: u64 = 50_000;
        let c = StorageCounters::new();
        let total = 4 * PER_THREAD;
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..PER_THREAD {
                        c.page_reads.incr();
                        c.pool_hits.incr();
                    }
                });
            }
            for _ in 0..2 {
                s.spawn(|| {
                    for _ in 0..2_000 {
                        let a = c.snapshot();
                        let b = c.snapshot();
                        // Both orders: b-a is a genuine window, a-b is the
                        // adversarial reversed pair that must clamp to 0-ish,
                        // and both must stay within the physically possible
                        // range.
                        for d in [b.delta(&a), a.delta(&b)] {
                            assert!(d.page_reads <= total, "wrapped: {}", d.page_reads);
                            assert!(d.pool_hits <= total, "wrapped: {}", d.pool_hits);
                        }
                    }
                });
            }
        });
        assert_eq!(c.snapshot().page_reads, total);
    }

    #[test]
    fn delta_after_reset_like_regression_saturates() {
        // A snapshot pair where "earlier" is ahead of "later" on every field
        // (what a counter reset between snapshots produces).
        let c = IndexCounters::new();
        c.rpl_entries.add(100);
        let earlier = c.snapshot();
        let later = IndexCounters::new().snapshot();
        let d = later.delta(&earlier);
        assert_eq!(d.rpl_entries, 0);
        assert_eq!(d.fields().iter().map(|(_, v)| v).sum::<u64>(), 0);
    }

    #[test]
    fn snapshot_fields_enumerate_every_counter() {
        let c = StorageCounters::new();
        c.wal_appends.add(3);
        let fields = c.snapshot().fields();
        assert!(fields.len() >= 11);
        assert!(fields.contains(&("wal_appends", 3)));
        assert!(fields.contains(&("page_reads", 0)));
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = StorageCounters::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.cursor_steps.incr();
                    }
                });
            }
        });
        assert_eq!(c.snapshot().cursor_steps, 4000);
    }
}
