//! Observability primitives for TReX: always-on relaxed atomic counters in
//! the storage and index layers, point-in-time snapshots, and per-query
//! [`QueryTrace`]s that tie measured work back to the paper's §4 cost model.
//!
//! Design rules:
//!
//! * Counters are **always maintained** with `Ordering::Relaxed` increments —
//!   a single uncontended atomic add per counted event, cheap enough to leave
//!   on in production builds. The *trace* toggle only controls whether a
//!   query takes before/after snapshots and attaches a [`QueryTrace`].
//! * Layers share counters by `Arc`: the buffer pool and pager share one
//!   [`StorageCounters`], every table/iterator of an index shares one
//!   [`IndexCounters`]. Snapshot deltas around a query therefore capture all
//!   work done on its behalf (and, under concurrency, of its neighbours —
//!   totals remain exact).
//! * Serialization is hand-rolled JSON (no serde in the offline tree); every
//!   trace type knows how to render itself via [`ToJson`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A relaxed atomic event counter.
///
/// `Relaxed` is sufficient: counters are statistics, not synchronization.
/// Reads racing with increments observe some recent value; snapshot deltas
/// taken on the querying thread see at least that thread's own events.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Types that render themselves as a JSON value.
pub trait ToJson {
    /// Appends this value's JSON rendering to `out`.
    fn write_json(&self, out: &mut String);

    /// This value as a standalone JSON string.
    fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

/// Writes one `"key": value` pair (caller manages commas/braces).
pub fn json_field(out: &mut String, key: &str, value: impl std::fmt::Display) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

/// Escapes a string for embedding in JSON.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

macro_rules! counter_group {
    (
        $(#[$group_meta:meta])*
        counters $name:ident / snapshot $snap:ident {
            $($(#[$field_meta:meta])* $field:ident),+ $(,)?
        }
    ) => {
        $(#[$group_meta])*
        #[derive(Debug, Default)]
        pub struct $name {
            $($(#[$field_meta])* pub $field: Counter),+
        }

        impl $name {
            /// A zeroed counter group.
            pub const fn new() -> $name {
                $name { $($field: Counter::new()),+ }
            }

            /// A point-in-time copy of every counter.
            pub fn snapshot(&self) -> $snap {
                $snap { $($field: self.$field.get()),+ }
            }
        }

        #[doc = concat!("Point-in-time copy of [`", stringify!($name), "`].")]
        #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
        pub struct $snap {
            $($(#[$field_meta])* pub $field: u64),+
        }

        impl $snap {
            /// Per-field difference `self - earlier` (saturating).
            pub fn delta(&self, earlier: &$snap) -> $snap {
                $snap { $($field: self.$field.saturating_sub(earlier.$field)),+ }
            }

            /// Per-field sum (used to compare totals across threads).
            pub fn sum(&self, other: &$snap) -> $snap {
                $snap { $($field: self.$field + other.$field),+ }
            }
        }

        impl ToJson for $snap {
            fn write_json(&self, out: &mut String) {
                out.push('{');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    json_field(out, stringify!($field), self.$field);
                )+
                let _ = first;
                out.push('}');
            }
        }
    };
}

counter_group! {
    /// Page-level and cache-level storage work, shared by the pager (I/O),
    /// the buffer pool (hits/misses/evictions), and the B+-tree (node visits
    /// and cursor steps).
    counters StorageCounters / snapshot StorageSnapshot {
        /// Pages read from disk by the pager.
        page_reads,
        /// Pages written to disk by the pager.
        page_writes,
        /// Buffer-pool lookups served from memory.
        pool_hits,
        /// Buffer-pool lookups that had to fault the page in.
        pool_misses,
        /// Frames evicted to make room.
        pool_evictions,
        /// B+-tree nodes visited during descents.
        btree_node_visits,
        /// Entries yielded by B+-tree cursors.
        cursor_steps,
        /// Records appended to the write-ahead log (page images, alloc
        /// records; commit/checkpoint records are not counted — they mark
        /// protocol progress, not logged work).
        wal_appends,
        /// Bytes appended to the write-ahead log (record headers included).
        wal_bytes,
        /// Checkpoints completed (WAL sealed, folded into the data file,
        /// and truncated).
        checkpoints,
        /// Redo recoveries that replayed a sealed log at open.
        recoveries_run,
    }
}

counter_group! {
    /// Per-shard cache accounting of the sharded buffer pool. Every shard
    /// owns one group; the shard groups must sum exactly to the pool-level
    /// `pool_hits` / `pool_misses` / `pool_evictions` of the shared
    /// [`StorageCounters`] (each event increments both its shard's counter
    /// and the global one), which is how the concurrency tests prove no
    /// cache event is lost under threads.
    counters ShardCounters / snapshot ShardSnapshot {
        /// Lookups this shard served from memory.
        hits,
        /// Lookups this shard had to fault in from disk.
        misses,
        /// Frames this shard evicted to make room.
        evictions,
    }
}

counter_group! {
    /// Index-layer decode work: bytes and entries decoded from each of the
    /// three physical list families.
    counters IndexCounters / snapshot IndexSnapshot {
        /// Bytes of posting-list payload decoded.
        posting_bytes,
        /// Posting entries (positions) decoded.
        posting_entries,
        /// Bytes of RPL payload decoded.
        rpl_bytes,
        /// RPL entries decoded (TA sorted accesses happen here).
        rpl_entries,
        /// Bytes of ERPL payload decoded.
        erpl_bytes,
        /// ERPL entries decoded (Merge sequential accesses happen here).
        erpl_entries,
    }
}

counter_group! {
    /// Online self-management work (profiler + reconcile cycles): how the
    /// `SelfManager` observed the query stream and what it did to the
    /// redundant lists. `bytes_materialized - bytes_dropped` tracks the
    /// bytes brought under management since the counters were created; the
    /// authoritative live figure is the list registries' `total_bytes`.
    counters SelfManageCounters / snapshot SelfManageSnapshot {
        /// Queries the workload profiler recorded.
        queries_profiled,
        /// `Strategy::Auto` coverage checks that fell back to ERA because a
        /// needed RPL/ERPL list was absent (e.g. mid-reconcile).
        era_fallbacks,
        /// Reconcile cycles completed.
        cycles,
        /// Redundant lists written by reconcile cycles.
        lists_materialized,
        /// Redundant lists dropped by reconcile cycles.
        lists_dropped,
        /// Bytes of redundant lists written by reconcile cycles.
        bytes_materialized,
        /// Bytes of redundant lists dropped by reconcile cycles.
        bytes_dropped,
    }
}

/// Strategy-level cost-model units for one query, in the vocabulary of §4 of
/// the paper: sorted accesses (sequential reads of score-ordered RPLs or
/// position-ordered ERPLs), random accesses (point lookups the engine had to
/// perform outside those scans), heap operations, and candidate set size.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CostUnits {
    /// Sequential accesses into sorted lists (TA depth × lists, or total
    /// ERPL entries merged).
    pub sorted_accesses: u64,
    /// Random (point) accesses; zero for the TReX strategies, which the
    /// paper designs to avoid random access entirely.
    pub random_accesses: u64,
    /// Heap pushes performed while maintaining the top-k.
    pub heap_pushes: u64,
    /// Heap pops performed while maintaining the top-k.
    pub heap_pops: u64,
    /// Peak size of the candidate set.
    pub candidates_peak: u64,
}

impl ToJson for CostUnits {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        json_field(out, "sorted_accesses", self.sorted_accesses);
        out.push(',');
        json_field(out, "random_accesses", self.random_accesses);
        out.push(',');
        json_field(out, "heap_pushes", self.heap_pushes);
        out.push(',');
        json_field(out, "heap_pops", self.heap_pops);
        out.push(',');
        json_field(out, "candidates_peak", self.candidates_peak);
        out.push('}');
    }
}

/// Wall-clock timings of the three query stages.
#[derive(Debug, Default, Clone, Copy)]
pub struct StageTimings {
    /// NEXI parse + summary translation.
    pub translate: Duration,
    /// Strategy execution (the dominant stage).
    pub evaluate: Duration,
    /// Final ranking / answer assembly.
    pub rank: Duration,
}

impl ToJson for StageTimings {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        json_field(out, "translate_us", self.translate.as_micros());
        out.push(',');
        json_field(out, "evaluate_us", self.evaluate.as_micros());
        out.push(',');
        json_field(out, "rank_us", self.rank.as_micros());
        out.push('}');
    }
}

/// Everything observed about one query: stage timings plus the storage,
/// index, and strategy counter deltas attributable to it.
#[derive(Debug, Default, Clone)]
pub struct QueryTrace {
    /// Which strategy ultimately answered (e.g. `"ta"`, `"merge"`).
    pub strategy: String,
    /// Stage wall-clock breakdown.
    pub stages: StageTimings,
    /// Storage-layer work during the query (buffer pool + pager + B+-tree).
    pub storage: StorageSnapshot,
    /// Index-layer decode work during the query.
    pub index: IndexSnapshot,
    /// Strategy-level cost-model units.
    pub cost: CostUnits,
}

impl QueryTrace {
    /// Total list entries this query decoded, across all list families.
    pub fn entries_decoded(&self) -> u64 {
        self.index.posting_entries + self.index.rpl_entries + self.index.erpl_entries
    }

    /// Total list bytes this query decoded, across all list families.
    pub fn bytes_decoded(&self) -> u64 {
        self.index.posting_bytes + self.index.rpl_bytes + self.index.erpl_bytes
    }
}

impl ToJson for QueryTrace {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        out.push_str("\"strategy\":\"");
        out.push_str(&json_escape(&self.strategy));
        out.push_str("\",\"stages\":");
        self.stages.write_json(out);
        out.push_str(",\"storage\":");
        self.storage.write_json(out);
        out.push_str(",\"index\":");
        self.index.write_json(out);
        out.push_str(",\"cost\":");
        self.cost.write_json(out);
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = StorageCounters::new();
        c.page_reads.add(3);
        c.pool_hits.incr();
        let a = c.snapshot();
        c.page_reads.incr();
        let b = c.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.page_reads, 1);
        assert_eq!(d.pool_hits, 0);
        assert_eq!(a.sum(&d).page_reads, 4);
    }

    #[test]
    fn snapshots_render_as_json() {
        let c = IndexCounters::new();
        c.rpl_entries.add(7);
        let json = c.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"rpl_entries\":7"));
    }

    #[test]
    fn trace_renders_nested_json() {
        let trace = QueryTrace {
            strategy: "ta".into(),
            ..QueryTrace::default()
        };
        let json = trace.to_json();
        assert!(json.contains("\"strategy\":\"ta\""));
        assert!(json.contains("\"stages\":{"));
        assert!(json.contains("\"cost\":{"));
        assert_eq!(trace.entries_decoded(), 0);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = StorageCounters::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.cursor_steps.incr();
                    }
                });
            }
        });
        assert_eq!(c.snapshot().cursor_steps, 4000);
    }
}
