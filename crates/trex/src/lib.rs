//! # TReX
//!
//! A from-scratch Rust reproduction of **"Self Managing Top-k (Summary,
//! Keyword) Indexes in XML Retrieval"** (Consens, Gu, Kanza, Rizzolo —
//! ICDE 2007): an XML retrieval system that evaluates NEXI queries with
//! three interchangeable strategies (ERA, TA, Merge) over structural
//! summaries and inverted lists, and self-manages redundant top-k indexes
//! (RPLs / ERPLs) to fit a disk budget.
//!
//! This facade crate wires the subsystem crates together and exposes
//! [`TrexSystem`], the high-level build-then-query API:
//!
//! ```
//! use trex::{TrexConfig, TrexSystem};
//!
//! let dir = std::env::temp_dir().join(format!("trex-doc-{}", std::process::id()));
//! let config = TrexConfig::new(&dir);
//! let docs = vec![
//!     "<article><sec>xml query evaluation</sec></article>".to_string(),
//!     "<article><sec>structural summaries</sec></article>".to_string(),
//! ];
//! let system = TrexSystem::build(config, docs).unwrap();
//! let result = system.search("//article//sec[about(., query evaluation)]", Some(10)).unwrap();
//! assert_eq!(result.answers.len(), 1);
//! # std::fs::remove_file(&dir).ok();
//! # std::fs::remove_file(trex::storage::wal_path(&dir)).ok();
//! ```
//!
//! The layering (bottom-up) mirrors the paper's architecture:
//!
//! | crate | role |
//! |---|---|
//! | [`storage`] | BerkeleyDB substitute: B+tree tables over a buffer pool |
//! | [`xml`] | XML parsing (streaming + DOM) |
//! | [`text`] | tokenisation, Porter stemming, BM25-style scoring |
//! | [`summary`] | structural summaries (tag / incoming, alias variants) |
//! | [`index`] | the `Elements`, `PostingLists`, `RPLs`, `ERPLs` tables |
//! | [`nexi`] | NEXI parsing and (sids, terms) translation |
//! | [`core`] | ERA / TA / Merge, the engine, the self-managing advisor |
//! | [`corpus`] | synthetic INEX-like collections for the experiments |

pub mod http;

pub use trex_core as core;
pub use trex_corpus as corpus;
pub use trex_index as index;
pub use trex_nexi as nexi;
pub use trex_storage as storage;
pub use trex_summary as summary;
pub use trex_text as text;
pub use trex_xml as xml;

// The most-used items, re-exported flat.
pub use http::{HttpServer, HttpServerConfig, MetricsServer};
pub use trex_core::obs::{
    self, AdvisorJournal, Health, MetricsRegistry, PartitionMetrics, QueryTrace, ServeMetrics,
    ToJson, TraceContext,
};
pub use trex_core::{
    fold_once, merge_topk, parse_query_request, partition_store_path, reconcile_once,
    reconcile_partitioned, split_budget, Advisor, AdvisorOptions, AdvisorReport, Answer,
    CacheStatus, CostCache, CostValidation, EvalOptions, Explain, FoldManager, FoldOptions,
    FoldReport, ListKind, Partition, PartitionBudget, PartitionedCycle, PartitionedSelfManager,
    PartitionedSystem, ProfilerConfig, QueryEngine, QueryExecutor, QueryRequest, QueryResponse,
    QueryResult, QueryService, RaceWinner, ReconcileReport, ResultCache, SelectionMethod,
    SelfManageOptions, SelfManager, Strategy, StrategyMetrics, StrategyStats, TrexError, WireError,
    Workload, WorkloadProfiler, WorkloadQuery, DEFAULT_CACHE_ENTRIES, TA_PREDICTION_FACTOR,
};
pub use trex_index::partition_of;
pub use trex_index::{ElementRef, TrexIndex};
pub use trex_nexi::Interpretation;
pub use trex_summary::{AliasMap, SummaryKind};
pub use trex_text::Analyzer;

use std::path::{Path, PathBuf};
use std::sync::Arc;

use trex_index::IndexBuilder;
use trex_storage::Store;

/// Result alias using the top-level error.
pub type Result<T> = std::result::Result<T, TrexError>;

/// Configuration for building or opening a [`TrexSystem`].
#[derive(Debug, Clone)]
pub struct TrexConfig {
    /// Path of the single store file holding every table.
    pub store_path: PathBuf,
    /// Buffer-pool capacity in pages (default 4096 pages = 32 MiB).
    pub pool_pages: usize,
    /// Structural summary kind (default: incoming — what TReX uses, §2.1).
    pub summary: SummaryKind,
    /// Tag alias mapping (default: the INEX IEEE families).
    pub alias: AliasMap,
    /// Text analysis pipeline, persisted in the catalog at build time and
    /// restored on open.
    pub analyzer: Analyzer,
    /// Also store the raw documents, enabling [`TrexSystem::snippet`].
    pub store_documents: bool,
    /// Checkpoint the store every N documents during a build (None, the
    /// default, checkpoints only at the end). Bounds the write-ahead log
    /// and the work a crash can lose on long builds.
    pub build_checkpoint_every: Option<u32>,
}

impl TrexConfig {
    /// Defaults for `store_path`.
    pub fn new(store_path: impl AsRef<Path>) -> TrexConfig {
        TrexConfig {
            store_path: store_path.as_ref().to_path_buf(),
            pool_pages: 4096,
            summary: SummaryKind::Incoming,
            alias: AliasMap::inex_ieee(),
            analyzer: Analyzer::default(),
            store_documents: false,
            build_checkpoint_every: None,
        }
    }
}

/// The assembled TReX system: one store, one index, one engine, one
/// workload profiler feeding the (optional) online self-manager, one
/// result cache and serve-metrics group shared by every front door.
pub struct TrexSystem {
    index: Arc<TrexIndex>,
    profiler: Arc<WorkloadProfiler>,
    cache: Arc<ResultCache>,
    serve_metrics: Arc<ServeMetrics>,
    journal: Arc<AdvisorJournal>,
    health: Arc<Health>,
}

impl TrexSystem {
    fn assemble(index: TrexIndex, store_path: &Path) -> TrexSystem {
        let health = Arc::new(Health::new());
        health.attach_generation(index.maintenance().generation_cell());
        health.set_ready(true);
        let journal = Arc::new(AdvisorJournal::new());
        // Best effort: the journal works ring-only when the sidecar path is
        // not writable (read-only mounts, tests over borrowed stores).
        let _ = journal.attach_sidecar(advisor_sidecar_path(store_path));
        TrexSystem {
            index: Arc::new(index),
            profiler: Arc::new(WorkloadProfiler::new(ProfilerConfig::default())),
            cache: Arc::new(ResultCache::new(DEFAULT_CACHE_ENTRIES)),
            serve_metrics: Arc::new(ServeMetrics::new()),
            journal,
            health,
        }
    }
}

/// Where a system's advisor-journal sidecar lives: the store file's path
/// with `.advisor.jsonl` appended (`index.trex` → `index.trex.advisor.jsonl`),
/// so the decision log travels with the store it describes.
pub fn advisor_sidecar_path(store_path: &Path) -> PathBuf {
    let mut os = store_path.as_os_str().to_owned();
    os.push(".advisor.jsonl");
    PathBuf::from(os)
}

impl TrexSystem {
    /// Builds a fresh index over `documents` (any iterator of XML strings)
    /// and opens the system on it. An existing store file is replaced.
    pub fn build(
        config: TrexConfig,
        documents: impl IntoIterator<Item = String>,
    ) -> Result<TrexSystem> {
        let store = Store::create(&config.store_path, config.pool_pages)
            .map_err(trex_index::IndexError::Storage)?;
        let mut builder = IndexBuilder::new(&store, config.summary, config.alias, config.analyzer)?;
        if config.store_documents {
            builder.enable_document_store()?;
        }
        builder.set_checkpoint_interval(config.build_checkpoint_every);
        for doc in documents {
            builder.add_document(&doc)?;
        }
        builder.finish()?;
        let index = TrexIndex::open(Arc::new(store))?;
        Ok(TrexSystem::assemble(index, &config.store_path))
    }

    /// Like [`TrexSystem::build`], but parses documents on `threads` worker
    /// threads while the (inherently sequential) summary/index construction
    /// runs on the calling thread. Documents are indexed in input order, so
    /// the result is byte-identical to a sequential build.
    pub fn build_parallel(
        config: TrexConfig,
        documents: impl IntoIterator<Item = String> + Send,
        threads: usize,
    ) -> Result<TrexSystem> {
        let threads = threads.max(1);
        let store = Store::create(&config.store_path, config.pool_pages)
            .map_err(trex_index::IndexError::Storage)?;
        let mut builder = IndexBuilder::new(&store, config.summary, config.alias, config.analyzer)?;
        if config.store_documents {
            builder.enable_document_store()?;
        }
        builder.set_checkpoint_interval(config.build_checkpoint_every);

        let result: Result<()> = crossbeam::thread::scope(|scope| {
            let (raw_tx, raw_rx) = crossbeam::channel::bounded::<(usize, String)>(threads * 4);
            let (parsed_tx, parsed_rx) = crossbeam::channel::bounded::<(
                usize,
                trex_xml::Result<trex_xml::Document>,
            )>(threads * 4);

            for _ in 0..threads {
                let raw_rx = raw_rx.clone();
                let parsed_tx = parsed_tx.clone();
                scope.spawn(move |_| {
                    for (i, xml) in raw_rx.iter() {
                        if parsed_tx
                            .send((i, trex_xml::Document::parse(&xml)))
                            .is_err()
                        {
                            break;
                        }
                    }
                });
            }
            drop(raw_rx);
            drop(parsed_tx);

            let feeder = scope.spawn(move |_| {
                for item in documents.into_iter().enumerate() {
                    if raw_tx.send(item).is_err() {
                        break;
                    }
                }
            });

            // Reorder parsed documents back into input order.
            let mut pending: std::collections::BTreeMap<usize, trex_xml::Document> =
                std::collections::BTreeMap::new();
            let mut next = 0usize;
            for (i, parsed) in parsed_rx.iter() {
                let doc = parsed.map_err(trex_index::IndexError::Xml)?;
                pending.insert(i, doc);
                while let Some(doc) = pending.remove(&next) {
                    builder.add_parsed(&doc)?;
                    next += 1;
                }
            }
            while let Some(doc) = pending.remove(&next) {
                builder.add_parsed(&doc)?;
                next += 1;
            }
            feeder.join().expect("feeder thread");
            Ok(())
        })
        .expect("scoped threads");
        result?;

        builder.finish()?;
        let index = TrexIndex::open(Arc::new(store))?;
        Ok(TrexSystem::assemble(index, &config.store_path))
    }

    /// Opens an existing store built earlier with [`TrexSystem::build`].
    /// The analyzer is restored from the store's catalog, so it always
    /// matches the one the index was built with.
    pub fn open(config: TrexConfig) -> Result<TrexSystem> {
        let store = Store::open(&config.store_path, config.pool_pages)
            .map_err(trex_index::IndexError::Storage)?;
        let index = TrexIndex::open(Arc::new(store))?;
        Ok(TrexSystem::assemble(index, &config.store_path))
    }

    /// The underlying index (summary, dictionary, tables, statistics).
    pub fn index(&self) -> &TrexIndex {
        &self.index
    }

    /// The system's workload profiler: fed by every engine/executor this
    /// system hands out, read by the self-manager. Its
    /// [`obs::SelfManageSnapshot`] counters cover profiling and reconcile
    /// work.
    pub fn profiler(&self) -> &Arc<WorkloadProfiler> {
        &self.profiler
    }

    /// Every metric source of this system — storage / index / self-manage
    /// counters, the storage timer group, and the index's query-path
    /// telemetry — assembled behind the registry's `render_prometheus()` /
    /// `render_json()` calls. Cheap to call (clones `Arc`s); the returned
    /// registry stays live, so a [`MetricsServer`] can own one.
    pub fn metrics(&self) -> MetricsRegistry {
        MetricsRegistry::new(
            self.index.store().counters().clone(),
            self.index.counters().clone(),
            self.profiler.counters().clone(),
            self.index.store().timers().clone(),
            self.index.telemetry().clone(),
            self.serve_metrics.clone(),
        )
        .with_health(self.health.clone())
        .with_advisor(self.journal.clone())
    }

    /// The serving-layer metrics group (admission, cache, deadline
    /// counters; request / queue-wait timers) shared by every front door.
    pub fn serve_metrics(&self) -> &Arc<ServeMetrics> {
        &self.serve_metrics
    }

    /// The advisor decision journal: one [`obs::CycleRecord`] per reconcile
    /// cycle (ring of the most recent cycles, plus the rotating JSONL
    /// sidecar next to the store file). Served at `/v1/advisor/history`.
    pub fn advisor_journal(&self) -> &Arc<AdvisorJournal> {
        &self.journal
    }

    /// Liveness/readiness state served at `/healthz` and `/readyz`.
    pub fn health(&self) -> &Arc<Health> {
        &self.health
    }

    /// The system-wide result cache, keyed by `(normalized query, k,
    /// strategy, interpretation, maintenance generation)`. Shared by the
    /// HTTP front end, the REPL and [`TrexSystem::service`]; a reconcile
    /// that changes the redundant lists bumps the generation, making every
    /// older entry unreachable — no explicit invalidation anywhere.
    pub fn result_cache(&self) -> &Arc<ResultCache> {
        &self.cache
    }

    /// Ingests one XML document into the live system: stages it against the
    /// frozen summary/dictionary, logs it to the WAL (durable before this
    /// returns), and makes it visible to queries through the in-memory
    /// delta index — no rebuild. Returns the assigned document id.
    ///
    /// The delta is folded into the on-disk tables by [`fold_once`] /
    /// [`TrexSystem::start_fold_manager`]; until then the document lives in
    /// memory and is recovered from the WAL after a crash.
    pub fn ingest_document(&self, xml: &str) -> Result<u32> {
        Ok(self.index.ingest_document(xml)?)
    }

    /// Folds the current delta index into the on-disk tables under the
    /// maintenance write gate (one checkpoint, one generation bump).
    /// `None` when the delta was empty.
    pub fn fold_once(&self) -> Result<Option<FoldReport>> {
        trex_core::fold_once(&self.index)
    }

    /// Starts the background fold thread (sibling of the self-manager): it
    /// watches the delta index and folds it into the B+tree tables whenever
    /// it crosses `opts` size thresholds. Stop (or drop) the returned
    /// handle to shut it down; unfolded documents stay WAL-durable.
    pub fn start_fold_manager(&self, opts: FoldOptions) -> Result<FoldManager> {
        FoldManager::start_with(self.index.clone(), opts, Some(self.health.clone()))
    }

    /// Starts the background self-manager: observes the live query stream
    /// through this system's profiler and keeps the redundant lists
    /// reconciled to the §4 selection under `opts.budget_bytes`, while
    /// queries keep being served. Stop (or drop) the returned handle to
    /// shut it down.
    pub fn start_self_manager(&self, opts: SelfManageOptions) -> Result<SelfManager> {
        SelfManager::start_with(
            self.index.clone(),
            self.profiler.clone(),
            opts,
            trex_core::ManagerHooks::none()
                .journal(self.journal.clone())
                .health(self.health.clone()),
        )
    }

    /// What WAL recovery did when the store was opened: `None` after a
    /// clean shutdown, `Some` when an interrupted checkpoint was rolled
    /// forward (`completed_checkpoint`) or a torn log was discarded.
    pub fn recovery_report(&self) -> Option<storage::RecoveryReport> {
        self.index.store().recovery_report()
    }

    /// A query engine over the index (analyzer restored from the catalog),
    /// wired to the system's workload profiler.
    pub fn engine(&self) -> QueryEngine<'_> {
        QueryEngine::new(&self.index).with_profiler(&self.profiler)
    }

    /// A batch executor over the index: evaluates slices of NEXI queries on
    /// a scoped thread pool, returning per-query results in input order.
    /// Wired to the system's workload profiler, result cache and serve
    /// metrics (its [`QueryExecutor::execute_batch`] path routes through
    /// the same handler as the HTTP front end).
    pub fn executor(&self) -> QueryExecutor<'_> {
        QueryExecutor::new(&self.index)
            .with_profiler(&self.profiler)
            .with_cache(self.cache.clone())
            .with_metrics(self.serve_metrics.clone())
    }

    /// The shared `QueryRequest → QueryResponse` handler: the engine plus
    /// the system's result cache and serve metrics. The HTTP front end, the
    /// REPL and the batch executor all answer queries through this one
    /// path.
    pub fn service(&self) -> QueryService<'_> {
        QueryService::new(self.engine())
            .with_cache(self.cache.clone())
            .with_metrics(self.serve_metrics.clone())
    }

    /// Starts the query-serving HTTP front end on `addr` (see
    /// [`HttpServer`]): `POST /v1/query` plus the metrics surface, with
    /// bounded-queue admission control and cooperative deadlines. Stop (or
    /// drop) the returned handle to shut it down.
    pub fn serve_http(&self, addr: &str, config: HttpServerConfig) -> std::io::Result<HttpServer> {
        HttpServer::start(addr, self, config)
    }

    /// Evaluates a NEXI query with automatic strategy selection; `k = None`
    /// returns all answers.
    pub fn search(&self, nexi: &str, k: Option<usize>) -> Result<QueryResult> {
        self.engine().evaluate(nexi, EvalOptions::new().k(k))
    }

    /// Evaluates with an explicit strategy.
    pub fn search_with(
        &self,
        nexi: &str,
        k: Option<usize>,
        strategy: Strategy,
    ) -> Result<QueryResult> {
        self.engine()
            .evaluate(nexi, EvalOptions::new().k(k).strategy(strategy))
    }

    /// Like [`TrexSystem::search`], but attaches a [`QueryTrace`] (stage
    /// timings plus storage / index / cost-model counter deltas) to the
    /// result.
    pub fn search_traced(&self, nexi: &str, k: Option<usize>) -> Result<QueryResult> {
        self.engine()
            .evaluate(nexi, EvalOptions::new().k(k).trace(true))
    }

    /// Materialises the redundant lists a query needs (RPLs for TA, ERPLs
    /// for Merge, or both).
    pub fn materialize_for(&self, nexi: &str, kind: ListKind) -> Result<usize> {
        let translation = self.engine().translate(nexi, Interpretation::default())?;
        trex_core::materialize(&self.index, &translation.sids, &translation.terms, kind)
    }

    /// The self-managing advisor over this index.
    pub fn advisor(&self) -> Advisor<'_> {
        Advisor::new(&self.index)
    }

    /// The XML fragment an answer denotes, when the index was built with
    /// `store_documents` (None otherwise, or for unknown spans).
    pub fn snippet(&self, answer: &Answer) -> Result<Option<String>> {
        let Some(docs) = self.index.documents()? else {
            return Ok(None);
        };
        Ok(docs.snippet(answer.element, &self.index.analyzer())?)
    }

    /// The raw XML of a stored document, when `store_documents` was set.
    /// Documents still in the delta index (ingested, not yet folded) are
    /// served from the in-memory overlay regardless of `store_documents`.
    pub fn document(&self, doc_id: u32) -> Result<Option<String>> {
        if let Some(xml) = self.index.delta().document(doc_id) {
            return Ok(Some(xml));
        }
        let Some(docs) = self.index.documents()? else {
            return Ok(None);
        };
        Ok(docs.document(doc_id)?)
    }
}

/// The assembled partitioned TReX system: `N` independent stores (each
/// with its own pager, buffer pool, WAL, delta index and profiler) behind
/// one scatter-gather front. Store `i` lives at
/// [`partition_store_path`]`(config.store_path, i)` — `index.trex.p0`,
/// `index.trex.p1`, … — so a partitioned system occupies a family of
/// sibling files next to where the single-store file would be.
///
/// Queries, the result cache (keyed by the max generation across
/// partitions), serve metrics and the HTTP front end all sit above the
/// rank-safe merge unchanged; answers are byte-identical to a single-store
/// build over the same documents (see `trex_core::partition` docs).
pub struct PartitionedTrexSystem {
    system: Arc<PartitionedSystem>,
    cache: Arc<ResultCache>,
    serve_metrics: Arc<ServeMetrics>,
    journal: Arc<AdvisorJournal>,
    health: Arc<Health>,
}

impl PartitionedTrexSystem {
    fn assemble(system: PartitionedSystem, store_path: &Path) -> PartitionedTrexSystem {
        let health = Arc::new(Health::new());
        for part in system.parts() {
            health.attach_generation(part.index().maintenance().generation_cell());
        }
        health.set_ready(true);
        let journal = Arc::new(AdvisorJournal::new());
        let _ = journal.attach_sidecar(advisor_sidecar_path(store_path));
        PartitionedTrexSystem {
            system: Arc::new(system),
            cache: Arc::new(ResultCache::new(DEFAULT_CACHE_ENTRIES)),
            serve_metrics: Arc::new(ServeMetrics::new()),
            journal,
            health,
        }
    }

    /// Buffer-pool pages each partition store gets: the configured total
    /// split evenly, floored so tiny configs still get a working pool.
    fn pool_split(pool_pages: usize, partitions: usize) -> usize {
        (pool_pages / partitions.max(1)).max(128)
    }

    /// Builds `partitions` fresh stores over `documents` in one pass —
    /// one shared summary/dictionary/statistics catalog (written to every
    /// store), documents routed by [`partition_of`] over their global ids —
    /// and opens the system on them. Existing store files are replaced.
    /// `partitions = 1` degenerates to a single routed store.
    pub fn build(
        config: TrexConfig,
        partitions: usize,
        documents: impl IntoIterator<Item = String>,
    ) -> Result<PartitionedTrexSystem> {
        let partitions = partitions.max(1);
        let pool = PartitionedTrexSystem::pool_split(config.pool_pages, partitions);
        let mut stores = Vec::with_capacity(partitions);
        for i in 0..partitions {
            let path = partition_store_path(&config.store_path, i);
            stores.push(Store::create(&path, pool).map_err(trex_index::IndexError::Storage)?);
        }
        let mut builder = IndexBuilder::new_partitioned(
            stores.iter().collect(),
            config.summary,
            config.alias,
            config.analyzer,
        )?;
        if config.store_documents {
            builder.enable_document_store()?;
        }
        builder.set_checkpoint_interval(config.build_checkpoint_every);
        for doc in documents {
            builder.add_document(&doc)?;
        }
        builder.finish()?;
        let mut parts = Vec::with_capacity(partitions);
        for store in stores {
            let index = TrexIndex::open(Arc::new(store))?;
            let profiler = WorkloadProfiler::new(ProfilerConfig::default());
            parts.push(Partition::new(Arc::new(index), Arc::new(profiler)));
        }
        Ok(PartitionedTrexSystem::assemble(
            PartitionedSystem::from_parts(parts),
            &config.store_path,
        ))
    }

    /// Opens an existing partitioned family built earlier with
    /// [`PartitionedTrexSystem::build`]: probes `.p0`, `.p1`, … until the
    /// first missing sibling. Errors with [`TrexError::Unsupported`] when
    /// not even `.p0` exists.
    pub fn open(config: TrexConfig) -> Result<PartitionedTrexSystem> {
        let partitions = PartitionedTrexSystem::detect_partitions(&config.store_path);
        if partitions == 0 {
            return Err(TrexError::Unsupported(format!(
                "no partitioned store at {}: {} does not exist",
                config.store_path.display(),
                partition_store_path(&config.store_path, 0).display()
            )));
        }
        let pool = PartitionedTrexSystem::pool_split(config.pool_pages, partitions);
        let mut parts = Vec::with_capacity(partitions);
        for i in 0..partitions {
            let path = partition_store_path(&config.store_path, i);
            let store = Store::open(&path, pool).map_err(trex_index::IndexError::Storage)?;
            let index = TrexIndex::open(Arc::new(store))?;
            let profiler = WorkloadProfiler::new(ProfilerConfig::default());
            parts.push(Partition::new(Arc::new(index), Arc::new(profiler)));
        }
        Ok(PartitionedTrexSystem::assemble(
            PartitionedSystem::from_parts(parts),
            &config.store_path,
        ))
    }

    /// How many partition stores exist for `base`: the length of the
    /// contiguous `.p0`, `.p1`, … run on disk (0 when `.p0` is missing).
    pub fn detect_partitions(base: &Path) -> usize {
        let mut n = 0;
        while partition_store_path(base, n).is_file() {
            n += 1;
        }
        n
    }

    /// The underlying partitioned system (routing, scatter-gather
    /// evaluation, per-partition indexes and profilers).
    pub fn system(&self) -> &Arc<PartitionedSystem> {
        &self.system
    }

    /// Number of partition stores.
    pub fn partitions(&self) -> usize {
        self.system.partitions()
    }

    /// The system-wide result cache; keyed by the **maximum** maintenance
    /// generation across partitions (see [`PartitionedSystem::generation`]),
    /// so any partition's reconcile or ingest invalidates stale entries.
    pub fn result_cache(&self) -> &Arc<ResultCache> {
        &self.cache
    }

    /// The serving-layer metrics group shared by every front door.
    pub fn serve_metrics(&self) -> &Arc<ServeMetrics> {
        &self.serve_metrics
    }

    /// Every metric source of this system. The registry's primary
    /// (unlabelled) groups are partition 0's — plus the shared serve layer —
    /// and every partition's storage / index / self-manage counters are
    /// attached as `partition="i"`-labelled groups, so operators can see
    /// where fetches, decodes and reconcile work land.
    pub fn metrics(&self) -> MetricsRegistry {
        let primary = self.system.part(0);
        let labelled = self
            .system
            .parts()
            .iter()
            .enumerate()
            .map(|(i, part)| PartitionMetrics {
                label: i.to_string(),
                storage: part.index().store().counters().clone(),
                index: part.index().counters().clone(),
                selfmanage: part.profiler().counters().clone(),
            })
            .collect();
        MetricsRegistry::new(
            primary.index().store().counters().clone(),
            primary.index().counters().clone(),
            primary.profiler().counters().clone(),
            primary.index().store().timers().clone(),
            primary.index().telemetry().clone(),
            self.serve_metrics.clone(),
        )
        .with_partitions(labelled)
        .with_health(self.health.clone())
        .with_advisor(self.journal.clone())
    }

    /// The advisor decision journal: one aggregated [`obs::CycleRecord`]
    /// per partitioned reconcile cycle (per-partition budget splits in
    /// `splits`, deltas labelled with their partition).
    pub fn advisor_journal(&self) -> &Arc<AdvisorJournal> {
        &self.journal
    }

    /// Liveness/readiness state served at `/healthz` and `/readyz`; its
    /// generation is the **maximum** across partitions, matching the
    /// result-cache key.
    pub fn health(&self) -> &Arc<Health> {
        &self.health
    }

    /// The shared `QueryRequest → QueryResponse` handler over the
    /// scatter-gather evaluator, with this system's result cache and serve
    /// metrics — the same path the HTTP front end answers through.
    pub fn service(&self) -> QueryService<'_> {
        QueryService::partitioned(&self.system)
            .with_cache(self.cache.clone())
            .with_metrics(self.serve_metrics.clone())
    }

    /// Evaluates a NEXI query (scatter to every partition, rank-safe
    /// gather) with automatic strategy selection; `k = None` returns all
    /// answers.
    pub fn search(&self, nexi: &str, k: Option<usize>) -> Result<QueryResult> {
        self.system.evaluate(nexi, EvalOptions::new().k(k))
    }

    /// Evaluates with an explicit strategy.
    pub fn search_with(
        &self,
        nexi: &str,
        k: Option<usize>,
        strategy: Strategy,
    ) -> Result<QueryResult> {
        self.system
            .evaluate(nexi, EvalOptions::new().k(k).strategy(strategy))
    }

    /// Ingests one XML document: allocates the next global id, routes it
    /// to its home partition, and ingests there (WAL-durable before this
    /// returns). Returns the assigned global document id.
    pub fn ingest_document(&self, xml: &str) -> Result<u32> {
        Ok(self.system.ingest_document(xml)?)
    }

    /// Folds every partition's delta index into its on-disk tables
    /// (partitions with an empty delta report `None`).
    pub fn fold_once(&self) -> Result<Vec<Option<FoldReport>>> {
        self.system.fold_once()
    }

    /// Starts the background partitioned self-manager: each cycle it
    /// re-splits `opts.budget_bytes` across partitions proportional to
    /// per-partition profiler heat, then reconciles every partition to its
    /// share. Stop (or drop) the returned handle to shut it down.
    pub fn start_self_manager(&self, opts: SelfManageOptions) -> Result<PartitionedSelfManager> {
        PartitionedSelfManager::start_with(
            self.system.clone(),
            opts,
            trex_core::ManagerHooks::none()
                .journal(self.journal.clone())
                .health(self.health.clone()),
        )
    }

    /// Starts the query-serving HTTP front end on `addr` over this
    /// partitioned system (see [`HttpServer::start_partitioned`]).
    pub fn serve_http(&self, addr: &str, config: HttpServerConfig) -> std::io::Result<HttpServer> {
        HttpServer::start_partitioned(addr, self, config)
    }
}
