//! The HTTP front end: query serving plus metrics, hand-rolled HTTP/1.1.
//!
//! Two servers live here. [`MetricsServer`] is the original single-thread
//! scrape endpoint (kept for tooling that only wants metrics).
//! [`HttpServer`] is the query-serving front end: a versioned surface
//! (`/v1/*`, with unversioned aliases) answering queries through the same
//! [`QueryService`] the REPL and the batch executor use.
//!
//! | route | method | body |
//! |---|---|---|
//! | `/v1/query` | POST | JSON request → versioned result envelope |
//! | `/v1/ingest` | POST | raw XML document → `{"doc_id", "generation"}` |
//! | `/v1/metrics` | GET | Prometheus text exposition format 0.0.4 |
//! | `/v1/metrics.json` | GET | the same registry as one JSON object |
//! | `/v1/slow` | GET | the slow-query log (span trees included) |
//! | `/v1/healthz` | GET | liveness: `ok` whenever the process serves |
//! | `/v1/readyz` | GET | readiness JSON; `503` until the store is open |
//! | `/v1/advisor/history` | GET | the advisor decision journal (ring) |
//! | `/v1/advisor/last` | GET | the most recent reconcile cycle record |
//! | `/v1/trace/<id>` | GET | the span tree captured for trace id `<id>` |
//!
//! **Tracing.** `/query` requests that carry a W3C `traceparent` header are
//! traced: a malformed header is replaced with a freshly minted identity,
//! the engine assembles the query's span tree under that id (one child per
//! partition for scatter queries), and `/v1/trace/<trace-id>` serves the
//! assembled tree afterwards. The response always echoes a `traceparent`
//! header — the inbound identity when one was given, a fresh one otherwise
//! (a correlation id only; header-less requests skip capture so they keep
//! their result-cache eligibility).
//!
//! **Admission control.** The acceptor thread takes connections off the
//! listener and pushes them into a *bounded* queue ([`HttpServerConfig::
//! queue_depth`]); a fixed pool of workers drains it. When the queue is
//! full the acceptor answers `429 Too Many Requests` (with `Retry-After`)
//! immediately instead of letting the backlog grow — the queue is the only
//! buffer, so memory under overload is bounded by `queue_depth`, not by
//! the arrival rate.
//!
//! **Deadlines.** A request's `deadline_ms` budget is anchored at *enqueue*
//! time, so time spent waiting in the admission queue counts against it;
//! the strategies then poll the deadline cooperatively at their iteration
//! boundaries and an expired query answers `408` rather than running on.
//!
//! **Errors.** Every non-200 response is a structured JSON object
//! `{"code", "message", "retryable"}` — `400` (unparsable request or
//! query), `404`, `405`, `408` (deadline), `411`/`413` (body framing),
//! `429` (shed, with a `Retry-After` derived from the observed median
//! service time and the queue depth), `500` (engine failure), `507`
//! (document-id space exhausted).
//!
//! No external dependency, no framework: requests are read line-by-line
//! with per-connection read/write timeouts, bodies are framed by
//! `Content-Length` (capped), and every response closes the connection.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use trex_core::obs::{parse_traceparent, MetricsRegistry, ServeMetrics, TraceContext};
use trex_core::serve::error_body;
use trex_core::{
    parse_query_request, PartitionedSystem, QueryEngine, QueryService, ResultCache, TrexError,
    WorkloadProfiler,
};
use trex_index::TrexIndex;

use crate::{PartitionedTrexSystem, TrexSystem};

/// The background metrics endpoint. Dropping (or [`stop`]ping) the handle
/// shuts the listener thread down.
///
/// [`stop`]: MetricsServer::stop
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`, or port `0` for an ephemeral
    /// port — see [`addr`]) and starts answering scrapes on a new thread.
    ///
    /// [`addr`]: MetricsServer::addr
    pub fn start(addr: &str, registry: MetricsRegistry) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("trex-metrics".into())
                .spawn(move || serve_loop(listener, registry, stop))?
        };
        Ok(MetricsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (the actual port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and waits for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with one last connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.shutdown();
        }
    }
}

fn serve_loop(listener: TcpListener, registry: MetricsRegistry, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // A scrape is one short request; a stuck client must not wedge
        // the endpoint forever.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
        let _ = handle_scrape(stream, &registry);
    }
}

fn handle_scrape(stream: TcpStream, registry: &MetricsRegistry) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so well-behaved clients see a clean close.
    let mut header = String::new();
    while reader.read_line(&mut header)? > 2 {
        header.clear();
    }

    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let mut stream = reader.into_inner();

    if method != "GET" {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "GET only\n",
        );
    }
    match metrics_route(unversioned(path), registry) {
        Some((status, content_type, body)) => respond(&mut stream, status, content_type, &body),
        None => respond(
            &mut stream,
            "404 Not Found",
            "text/plain",
            "try /metrics, /metrics.json, /slow, /healthz, /readyz, /advisor/history or /trace/<id>\n",
        ),
    }
}

/// The GET surface shared by both servers: `(status, content-type, body)`,
/// or `None` for paths neither serves.
fn metrics_route(
    path: &str,
    registry: &MetricsRegistry,
) -> Option<(&'static str, &'static str, String)> {
    match path {
        "/metrics" => Some((
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            registry.render_prometheus(),
        )),
        "/metrics.json" => Some(("200 OK", "application/json", registry.render_json())),
        "/slow" => Some(("200 OK", "application/json", registry.render_slow_json())),
        // Liveness: answers whenever the process can serve HTTP at all.
        "/healthz" => Some(("200 OK", "text/plain", "ok\n".to_string())),
        // Readiness: 503 until the owning system flips `ready` after
        // open/recovery; the body reports the maintenance generation and
        // any reconcile/fold currently in flight either way.
        "/readyz" => {
            let health = registry.health();
            let status = if health.ready() {
                "200 OK"
            } else {
                "503 Service Unavailable"
            };
            Some((
                status,
                "application/json",
                trex_core::obs::ToJson::to_json(health.as_ref()),
            ))
        }
        "/advisor/history" => Some((
            "200 OK",
            "application/json",
            registry.advisor().history_json(),
        )),
        "/advisor/last" => Some(("200 OK", "application/json", registry.advisor().last_json())),
        _ => path
            .strip_prefix("/trace/")
            .map(|id| trace_route(id, registry)),
    }
}

/// `/trace/<id>`: the captured span tree for one 32-hex-digit trace id.
fn trace_route(id: &str, registry: &MetricsRegistry) -> (&'static str, &'static str, String) {
    let parsed = (id.len() == 32 && id.bytes().all(|b| b.is_ascii_hexdigit()))
        .then(|| u128::from_str_radix(id, 16).ok())
        .flatten();
    let Some(trace_id) = parsed else {
        return (
            "400 Bad Request",
            "application/json",
            error_body("bad_request", "trace id must be 32 hex digits", false),
        );
    };
    match registry.serve().traces.get(trace_id) {
        Some(record) => (
            "200 OK",
            "application/json",
            trex_core::obs::ToJson::to_json(&record),
        ),
        None => (
            "404 Not Found",
            "application/json",
            error_body(
                "not_found",
                "no captured trace with that id (traces are kept in a bounded ring)",
                false,
            ),
        ),
    }
}

/// Maps a `/v1/...` path to its unversioned alias; other paths pass
/// through. `/v1/query` and `/query` are the same route.
fn unversioned(path: &str) -> &str {
    match path.strip_prefix("/v1") {
        Some(rest) if rest.starts_with('/') => rest,
        _ => path,
    }
}

/// Configuration of the [`HttpServer`] front end.
#[derive(Debug, Clone)]
pub struct HttpServerConfig {
    /// Worker threads draining the admission queue (default 4).
    pub workers: usize,
    /// Admission-queue depth; connections beyond it are shed with `429`
    /// (default 64).
    pub queue_depth: usize,
    /// Largest accepted request body in bytes; larger bodies answer `413`
    /// (default 64 KiB).
    pub max_body_bytes: usize,
    /// Per-connection read/write timeout (default 5 s) — a stalled client
    /// can hold a worker for at most this long.
    pub io_timeout: Duration,
    /// Deadline budget applied to requests that do not carry their own
    /// `deadline_ms` (default: none).
    pub default_deadline_ms: Option<u64>,
    /// Serve answers from the generation-keyed result cache (default on).
    pub cache: bool,
}

impl Default for HttpServerConfig {
    fn default() -> HttpServerConfig {
        HttpServerConfig {
            workers: 4,
            queue_depth: 64,
            max_body_bytes: 64 * 1024,
            io_timeout: Duration::from_secs(5),
            default_deadline_ms: None,
            cache: true,
        }
    }
}

/// The query-serving HTTP front end. Start with [`TrexSystem::serve_http`];
/// dropping (or [`stop`]ping) the handle shuts the acceptor and every
/// worker down.
///
/// [`stop`]: HttpServer::stop
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// What the worker threads serve: one single-store engine, or a
/// partitioned system whose scatter-gather merge sits below the shared
/// [`QueryService`]. The HTTP surface above (admission control, deadlines,
/// cache, metrics) is identical either way.
enum WorkerTarget {
    Single(Arc<TrexIndex>, Arc<WorkloadProfiler>),
    Partitioned(Arc<PartitionedSystem>),
}

impl HttpServer {
    /// Binds `addr` and starts the acceptor plus `config.workers` worker
    /// threads serving `system`'s index.
    pub fn start(
        addr: &str,
        system: &TrexSystem,
        config: HttpServerConfig,
    ) -> std::io::Result<HttpServer> {
        HttpServer::start_inner(
            addr,
            WorkerTarget::Single(system.index.clone(), system.profiler.clone()),
            config.cache.then(|| system.result_cache().clone()),
            system.serve_metrics().clone(),
            system.metrics(),
            config,
        )
    }

    /// Like [`HttpServer::start`], over a partitioned system: every worker
    /// answers through `QueryService::partitioned`, so each query scatters
    /// to all partitions and gathers through the rank-safe merge; `/ingest`
    /// routes documents to their home partition by global doc-id hash.
    pub fn start_partitioned(
        addr: &str,
        system: &PartitionedTrexSystem,
        config: HttpServerConfig,
    ) -> std::io::Result<HttpServer> {
        HttpServer::start_inner(
            addr,
            WorkerTarget::Partitioned(system.system().clone()),
            config.cache.then(|| system.result_cache().clone()),
            system.serve_metrics().clone(),
            system.metrics(),
            config,
        )
    }

    fn start_inner(
        addr: &str,
        target: WorkerTarget,
        cache: Option<Arc<ResultCache>>,
        serve: Arc<ServeMetrics>,
        registry: MetricsRegistry,
        config: HttpServerConfig,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let target = Arc::new(target);

        let workers_n = config.workers.max(1);
        let (tx, rx) = crossbeam::channel::bounded::<(TcpStream, Instant)>(config.queue_depth);

        let mut workers = Vec::with_capacity(workers_n);
        for i in 0..workers_n {
            let rx = rx.clone();
            let target = target.clone();
            let cache = cache.clone();
            let serve = serve.clone();
            let registry = registry.clone();
            let config = config.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("trex-http-{i}"))
                    .spawn(move || {
                        let mut service = match target.as_ref() {
                            WorkerTarget::Single(index, profiler) => {
                                QueryService::new(QueryEngine::new(index).with_profiler(profiler))
                            }
                            WorkerTarget::Partitioned(system) => QueryService::partitioned(system),
                        }
                        .with_metrics(serve.clone());
                        if let Some(cache) = &cache {
                            service = service.with_cache(cache.clone());
                        }
                        while let Ok((stream, enqueued)) = rx.recv() {
                            serve.queue_depth.decr();
                            if serve.timers.enabled() {
                                serve.timers.queue_wait.record_duration(enqueued.elapsed());
                            }
                            let _ = handle_conn(stream, &service, &registry, &config, enqueued);
                        }
                    })?,
            );
        }
        drop(rx);

        let acceptor = {
            let stop = stop.clone();
            let io_timeout = config.io_timeout;
            let queue_depth = config.queue_depth;
            std::thread::Builder::new()
                .name("trex-http-accept".into())
                .spawn(move || {
                    accept_loop(listener, tx, serve, stop, io_timeout, queue_depth);
                })?
        };

        Ok(HttpServer {
            addr,
            stop,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (the actual port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the acceptor and workers, waiting for in-flight requests.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with one last connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // The acceptor owned the queue sender; with it gone the workers
        // drain the remaining connections and exit.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.shutdown();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    tx: crossbeam::channel::Sender<(TcpStream, Instant)>,
    serve: Arc<ServeMetrics>,
    stop: Arc<AtomicBool>,
    io_timeout: Duration,
    queue_depth: usize,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let _ = stream.set_read_timeout(Some(io_timeout));
        let _ = stream.set_write_timeout(Some(io_timeout));
        match tx.try_send((stream, Instant::now())) {
            Ok(()) => {
                serve.counters.admitted.incr();
                serve.queue_depth.incr();
            }
            Err(crossbeam::channel::TrySendError::Full((mut stream, _))) => {
                // Shed at the door: bounded queue, bounded memory. The
                // write is covered by the timeout set above, so a slow
                // shed-target cannot wedge the acceptor for long.
                serve.counters.shed.incr();
                let p50_ns = serve.timers.request.snapshot().percentile(0.50);
                let secs = retry_after_secs(p50_ns, queue_depth);
                let _ = respond_with(
                    &mut stream,
                    "429 Too Many Requests",
                    "application/json",
                    &[("Retry-After", &secs.to_string())],
                    &error_body("overloaded", "request queue is full; retry shortly", true),
                );
            }
            Err(crossbeam::channel::TrySendError::Disconnected(_)) => break,
        }
    }
}

/// How long a shed client should wait before retrying: the time the full
/// queue needs to drain at the observed median service time — `p50 ×
/// queue_depth`, rounded up to whole seconds and clamped to `1..=30`. With
/// no latency history yet (cold server, timers disabled) this degrades to
/// the old fixed `1`.
fn retry_after_secs(p50_ns: u64, queue_depth: usize) -> u64 {
    let drain_secs = (p50_ns as f64 / 1e9) * queue_depth as f64;
    (drain_secs.ceil() as u64).clamp(1, 30)
}

/// One parsed request `(method, path, body, traceparent)`, or the error
/// response it should get.
type ReadOutcome = Result<(String, String, String, Option<String>), (&'static str, String)>;

/// Reads a request (line, headers, `Content-Length`-framed body) off any
/// buffered reader. Returns `Err((status, json_body))` for framing
/// problems the caller should answer directly.
fn read_request<R: BufRead>(reader: &mut R, max_body_bytes: usize) -> std::io::Result<ReadOutcome> {
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();

    let mut content_length: Option<usize> = None;
    let mut bad_length = false;
    let mut traceparent: Option<String> = None;
    let mut header = String::new();
    loop {
        header.clear();
        if reader.read_line(&mut header)? <= 2 {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                match value.trim().parse::<usize>() {
                    Ok(n) => content_length = Some(n),
                    Err(_) => bad_length = true,
                }
            } else if name.eq_ignore_ascii_case("traceparent") {
                traceparent = Some(value.trim().to_string());
            }
        }
    }

    if method != "POST" {
        return Ok(Ok((method, path, String::new(), traceparent)));
    }
    if bad_length {
        return Ok(Err((
            "400 Bad Request",
            error_body("bad_request", "unparsable Content-Length", false),
        )));
    }
    let Some(len) = content_length else {
        return Ok(Err((
            "411 Length Required",
            error_body("length_required", "POST requires Content-Length", false),
        )));
    };
    if len > max_body_bytes {
        return Ok(Err((
            "413 Payload Too Large",
            error_body(
                "payload_too_large",
                &format!("body of {len} bytes exceeds the {max_body_bytes}-byte cap"),
                false,
            ),
        )));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    let body = match String::from_utf8(body) {
        Ok(s) => s,
        Err(_) => {
            return Ok(Err((
                "400 Bad Request",
                error_body("bad_request", "body is not valid UTF-8", false),
            )))
        }
    };
    Ok(Ok((method, path, body, traceparent)))
}

fn handle_conn(
    stream: TcpStream,
    service: &QueryService<'_>,
    registry: &MetricsRegistry,
    config: &HttpServerConfig,
    enqueued: Instant,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let outcome = read_request(&mut reader, config.max_body_bytes)?;
    let mut stream = reader.into_inner();
    let (method, path, body, traceparent) = match outcome {
        Ok(parsed) => parsed,
        Err((status, body)) => return respond(&mut stream, status, "application/json", &body),
    };

    match (method.as_str(), unversioned(&path)) {
        ("POST", "/query") => {
            let (status, body, echo) =
                answer_query(service, config, &body, enqueued, traceparent.as_deref());
            respond_with(
                &mut stream,
                status,
                "application/json",
                &[("traceparent", &echo)],
                &body,
            )
        }
        ("POST", "/ingest") => {
            let (status, body) = answer_ingest(service, &body);
            respond(&mut stream, status, "application/json", &body)
        }
        ("GET", "/query") | ("GET", "/ingest") => respond(
            &mut stream,
            "405 Method Not Allowed",
            "application/json",
            &error_body(
                "method_not_allowed",
                "/query and /ingest expect POST",
                false,
            ),
        ),
        ("GET", get_path) => match metrics_route(get_path, registry) {
            Some((status, content_type, body)) => respond(&mut stream, status, content_type, &body),
            None => respond(
                &mut stream,
                "404 Not Found",
                "application/json",
                &error_body(
                    "not_found",
                    "try /v1/query, /v1/metrics, /v1/metrics.json, /v1/slow, /v1/healthz, \
                     /v1/readyz, /v1/advisor/history or /v1/trace/<id>",
                    false,
                ),
            ),
        },
        _ => respond(
            &mut stream,
            "405 Method Not Allowed",
            "application/json",
            &error_body(
                "method_not_allowed",
                "use GET, or POST for /query and /ingest",
                false,
            ),
        ),
    }
}

/// Executes one `/ingest` body (a raw XML document), mapping every outcome
/// to `(status, body)`. Reuses the surrounding framing semantics: oversized
/// bodies were already shed with `413` by `read_request`, overload with
/// `429` at the acceptor. The WAL's own payload cap is enforced again here
/// in case `max_body_bytes` was configured above it.
fn answer_ingest(service: &QueryService<'_>, body: &str) -> (&'static str, String) {
    if body.trim().is_empty() {
        return (
            "400 Bad Request",
            error_body("bad_request", "ingest expects a non-empty XML body", false),
        );
    }
    if body.len() > trex_storage::MAX_INGEST_XML {
        return (
            "413 Payload Too Large",
            error_body(
                "payload_too_large",
                &format!(
                    "document of {} bytes exceeds the {}-byte ingest cap",
                    body.len(),
                    trex_storage::MAX_INGEST_XML
                ),
                false,
            ),
        );
    }
    match service.ingest(body) {
        Ok((doc_id, generation)) => (
            "200 OK",
            format!("{{\"doc_id\":{doc_id},\"generation\":{generation}}}"),
        ),
        Err(e @ (trex_index::IndexError::Xml(_) | trex_index::IndexError::UnknownPath(_))) => (
            "400 Bad Request",
            error_body("bad_document", &e.to_string(), false),
        ),
        Err(trex_index::IndexError::DocIdsExhausted) => (
            "507 Insufficient Storage",
            error_body("corpus_full", &TrexError::CorpusFull.to_string(), false),
        ),
        Err(e) => (
            "500 Internal Server Error",
            error_body("internal", &e.to_string(), false),
        ),
    }
}

/// Executes one `/query` body, mapping every outcome to `(status, body,
/// traceparent-echo)`. An inbound `traceparent` (malformed ones replaced
/// with a minted identity) arms span-tree capture; without one, a fresh
/// identity is minted for the echo only, so the request stays cacheable.
fn answer_query(
    service: &QueryService<'_>,
    config: &HttpServerConfig,
    body: &str,
    enqueued: Instant,
    traceparent: Option<&str>,
) -> (&'static str, String, String) {
    let ctx = traceparent.map(|h| parse_traceparent(h).unwrap_or_else(TraceContext::root));
    let echo = ctx.unwrap_or_else(TraceContext::root).header_value();
    let with_echo = |(status, body): (&'static str, String)| (status, body, echo.clone());
    let request = match parse_query_request(body) {
        Ok(r) => r,
        Err(e) => {
            // Count it like the service counts engine-side parse errors:
            // the request never reaches `execute`.
            return with_echo((
                "400 Bad Request",
                error_body("bad_request", &e.to_string(), false),
            ));
        }
    };
    let request = match (request.deadline_ms, config.default_deadline_ms) {
        (None, Some(ms)) => request.deadline_ms(ms),
        _ => request,
    };
    let request = request.trace_context(ctx);
    with_echo(match service.execute_from(&request, enqueued) {
        Ok(response) => ("200 OK", trex_core::obs::ToJson::to_json(&response)),
        Err(TrexError::DeadlineExceeded) => (
            "408 Request Timeout",
            error_body(
                "deadline_exceeded",
                "query deadline exceeded; retry with a larger budget",
                true,
            ),
        ),
        Err(e @ (TrexError::Parse(_) | TrexError::MissingIndex(_) | TrexError::Unsupported(_))) => {
            (
                "400 Bad Request",
                error_body("query_error", &e.to_string(), false),
            )
        }
        Err(e) => (
            "500 Internal Server Error",
            error_body("internal", &e.to_string(), false),
        ),
    })
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    respond_with(stream, status, content_type, &[], body)
}

fn respond_with(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::sync::Arc;
    use trex_core::obs::{
        IndexCounters, SelfManageCounters, StorageCounters, StorageTimers, Telemetry,
    };

    fn registry() -> MetricsRegistry {
        MetricsRegistry::new(
            Arc::new(StorageCounters::new()),
            Arc::new(IndexCounters::new()),
            Arc::new(SelfManageCounters::new()),
            Arc::new(StorageTimers::new()),
            Arc::new(Telemetry::new()),
            Arc::new(ServeMetrics::new()),
        )
    }

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_all_routes_and_404() {
        let server = MetricsServer::start("127.0.0.1:0", registry()).unwrap();
        let addr = server.addr();

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert_eq!(body, "ok\n");

        let (head, body) = get(addr, "/metrics");
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("# TYPE trex_storage_page_reads_total counter"));

        let (head, body) = get(addr, "/metrics.json");
        assert!(head.contains("application/json"));
        assert!(body.starts_with("{\"counters\":"));

        let (_, body) = get(addr, "/slow");
        assert!(body.contains("\"threshold_ns\""));

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        server.stop();
    }

    #[test]
    fn metrics_server_accepts_versioned_aliases() {
        let server = MetricsServer::start("127.0.0.1:0", registry()).unwrap();
        let addr = server.addr();
        let (head, body) = get(addr, "/v1/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert_eq!(body, "ok\n");
        let (head, _) = get(addr, "/v1/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        server.stop();
    }

    #[test]
    fn stop_terminates_the_thread() {
        let server = MetricsServer::start("127.0.0.1:0", registry()).unwrap();
        let addr = server.addr();
        server.stop();
        // After stop, new connections are either refused or never answered.
        std::thread::sleep(Duration::from_millis(20));
        assert!(
            TcpStream::connect(addr).is_err()
                || TcpStream::connect(addr)
                    .and_then(|mut s| {
                        s.set_read_timeout(Some(Duration::from_millis(200)))?;
                        write!(s, "GET /healthz HTTP/1.1\r\n\r\n")?;
                        let mut buf = [0u8; 1];
                        let n = s.read(&mut buf)?;
                        Ok(n == 0)
                    })
                    .unwrap_or(true)
        );
    }

    #[test]
    fn retry_after_tracks_observed_service_time() {
        // Cold server (no latency history): the old fixed 1 s.
        assert_eq!(retry_after_secs(0, 64), 1);
        // Sub-second drain still answers at least 1 s.
        assert_eq!(retry_after_secs(1_000_000, 8), 1); // 1 ms × 8 = 8 ms
                                                       // 250 ms median × 64 queued = 16 s drain.
        assert_eq!(retry_after_secs(250_000_000, 64), 16);
        // Rounded up, not truncated: 30 ms × 40 = 1.2 s → 2 s.
        assert_eq!(retry_after_secs(30_000_000, 40), 2);
        // Pathological backlogs clamp at 30 s.
        assert_eq!(retry_after_secs(2_000_000_000, 64), 30);
        assert_eq!(retry_after_secs(u64::MAX, usize::MAX), 30);
    }

    #[test]
    fn unversioned_maps_only_proper_v1_prefixes() {
        assert_eq!(unversioned("/v1/query"), "/query");
        assert_eq!(unversioned("/v1/metrics.json"), "/metrics.json");
        assert_eq!(unversioned("/query"), "/query");
        assert_eq!(unversioned("/v1"), "/v1");
        assert_eq!(unversioned("/v1x/query"), "/v1x/query");
    }

    #[test]
    fn read_request_frames_posts_by_content_length() {
        let raw = "POST /v1/query HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{}xy";
        let mut reader = std::io::BufReader::new(raw.as_bytes());
        let (method, path, body, traceparent) = read_request(&mut reader, 1024).unwrap().unwrap();
        assert_eq!(method, "POST");
        assert_eq!(path, "/v1/query");
        assert_eq!(body, "{}xy");
        assert_eq!(traceparent, None);

        // Header name is case-insensitive.
        let raw = "POST /q HTTP/1.1\r\ncontent-length: 2\r\n\r\nok";
        let mut reader = std::io::BufReader::new(raw.as_bytes());
        let (_, _, body, _) = read_request(&mut reader, 1024).unwrap().unwrap();
        assert_eq!(body, "ok");
    }

    #[test]
    fn read_request_captures_the_traceparent_header() {
        let header = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";
        let raw = format!(
            "POST /v1/query HTTP/1.1\r\nTraceParent: {header}\r\nContent-Length: 2\r\n\r\n{{}}"
        );
        let mut reader = std::io::BufReader::new(raw.as_bytes());
        let (_, _, body, traceparent) = read_request(&mut reader, 1024).unwrap().unwrap();
        assert_eq!(body, "{}");
        assert_eq!(traceparent.as_deref(), Some(header));
    }

    #[test]
    fn read_request_rejects_bad_framing() {
        // POST without Content-Length → 411.
        let raw = "POST /v1/query HTTP/1.1\r\nHost: x\r\n\r\n{}";
        let mut reader = std::io::BufReader::new(raw.as_bytes());
        let (status, body) = read_request(&mut reader, 1024).unwrap().unwrap_err();
        assert!(status.starts_with("411"), "{status}");
        assert!(body.contains("length_required"));

        // Oversized body → 413, without reading the body.
        let raw = "POST /v1/query HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
        let mut reader = std::io::BufReader::new(raw.as_bytes());
        let (status, body) = read_request(&mut reader, 1024).unwrap().unwrap_err();
        assert!(status.starts_with("413"), "{status}");
        assert!(body.contains("payload_too_large"));

        // Garbage Content-Length → 400.
        let raw = "POST /v1/query HTTP/1.1\r\nContent-Length: lots\r\n\r\n";
        let mut reader = std::io::BufReader::new(raw.as_bytes());
        let (status, _) = read_request(&mut reader, 1024).unwrap().unwrap_err();
        assert!(status.starts_with("400"), "{status}");

        // GETs never need a body.
        let raw = "GET /v1/healthz HTTP/1.1\r\n\r\n";
        let mut reader = std::io::BufReader::new(raw.as_bytes());
        let (method, path, body, _) = read_request(&mut reader, 1024).unwrap().unwrap();
        assert_eq!(
            (method.as_str(), path.as_str(), body.as_str()),
            ("GET", "/v1/healthz", "")
        );
    }
}
