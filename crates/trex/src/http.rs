//! A tiny hand-rolled HTTP/1.1 responder serving one system's metrics.
//!
//! [`MetricsServer::start`] binds a [`TcpListener`] and answers `GET`
//! requests on a dedicated thread:
//!
//! | path | body |
//! |---|---|
//! | `/metrics` | Prometheus text exposition format 0.0.4 |
//! | `/metrics.json` | the same registry as one JSON object |
//! | `/slow` | the slow-query log (span trees included) |
//! | `/healthz` | `ok` |
//!
//! No external dependency, no framework: requests are read line-by-line,
//! only the request line matters, and every response closes the
//! connection (`Connection: close`). That is all a Prometheus scraper or
//! a `curl` in a terminal needs, and it keeps the binary's footprint at
//! zero extra crates.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use trex_core::obs::MetricsRegistry;

/// The background metrics endpoint. Dropping (or [`stop`]ping) the handle
/// shuts the listener thread down.
///
/// [`stop`]: MetricsServer::stop
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`, or port `0` for an ephemeral
    /// port — see [`addr`]) and starts answering scrapes on a new thread.
    ///
    /// [`addr`]: MetricsServer::addr
    pub fn start(addr: &str, registry: MetricsRegistry) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("trex-metrics".into())
                .spawn(move || serve_loop(listener, registry, stop))?
        };
        Ok(MetricsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (the actual port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and waits for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with one last connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.shutdown();
        }
    }
}

fn serve_loop(listener: TcpListener, registry: MetricsRegistry, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // A scrape is one short request; a stuck client must not wedge
        // the endpoint forever.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
        let _ = handle(stream, &registry);
    }
}

fn handle(stream: TcpStream, registry: &MetricsRegistry) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so well-behaved clients see a clean close.
    let mut header = String::new();
    while reader.read_line(&mut header)? > 2 {
        header.clear();
    }

    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let mut stream = reader.into_inner();

    if method != "GET" {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "GET only\n",
        );
    }
    match path {
        "/metrics" => respond(
            &mut stream,
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &registry.render_prometheus(),
        ),
        "/metrics.json" => respond(
            &mut stream,
            "200 OK",
            "application/json",
            &registry.render_json(),
        ),
        "/slow" => respond(
            &mut stream,
            "200 OK",
            "application/json",
            &registry.render_slow_json(),
        ),
        "/healthz" => respond(&mut stream, "200 OK", "text/plain", "ok\n"),
        _ => respond(
            &mut stream,
            "404 Not Found",
            "text/plain",
            "try /metrics, /metrics.json, /slow or /healthz\n",
        ),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::sync::Arc;
    use trex_core::obs::{
        IndexCounters, SelfManageCounters, StorageCounters, StorageTimers, Telemetry,
    };

    fn registry() -> MetricsRegistry {
        MetricsRegistry::new(
            Arc::new(StorageCounters::new()),
            Arc::new(IndexCounters::new()),
            Arc::new(SelfManageCounters::new()),
            Arc::new(StorageTimers::new()),
            Arc::new(Telemetry::new()),
        )
    }

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_all_routes_and_404() {
        let server = MetricsServer::start("127.0.0.1:0", registry()).unwrap();
        let addr = server.addr();

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert_eq!(body, "ok\n");

        let (head, body) = get(addr, "/metrics");
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("# TYPE trex_storage_page_reads_total counter"));

        let (head, body) = get(addr, "/metrics.json");
        assert!(head.contains("application/json"));
        assert!(body.starts_with("{\"counters\":"));

        let (_, body) = get(addr, "/slow");
        assert!(body.contains("\"threshold_ns\""));

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        server.stop();
    }

    #[test]
    fn stop_terminates_the_thread() {
        let server = MetricsServer::start("127.0.0.1:0", registry()).unwrap();
        let addr = server.addr();
        server.stop();
        // After stop, new connections are either refused or never answered.
        std::thread::sleep(Duration::from_millis(20));
        assert!(
            TcpStream::connect(addr).is_err()
                || TcpStream::connect(addr)
                    .and_then(|mut s| {
                        s.set_read_timeout(Some(Duration::from_millis(200)))?;
                        write!(s, "GET /healthz HTTP/1.1\r\n\r\n")?;
                        let mut buf = [0u8; 1];
                        let n = s.read(&mut buf)?;
                        Ok(n == 0)
                    })
                    .unwrap_or(true)
        );
    }
}
