//! The `trex` command-line tool: build, inspect, query and self-manage a
//! TReX store.
//!
//! ```text
//! trex build <store.db> --dir <xml-dir>                index a directory of .xml files
//! trex build <store.db> --synthetic ieee --docs 1000   index a generated collection
//! trex info <store.db>                                 catalog and statistics
//! trex query <store.db> "<nexi>" [-k N] [--strategy auto|era|ta|merge]
//! trex materialize <store.db> "<nexi>" [--kind both|rpl|erpl]
//! trex advise <store.db> --workload <file> --budget <bytes> [--method greedy|lp]
//! trex serve <store.db> [--self-manage --budget <bytes>]     NEXI-per-line REPL
//! ```
//!
//! A workload file has one query per line: `<weight> <k> <nexi…>`.

use std::io::BufRead;
use std::process::ExitCode;

use trex::corpus::{CorpusConfig, IeeeGenerator, WikiGenerator};
use trex::{
    AdvisorOptions, AliasMap, HttpServerConfig, ListKind, PartitionedTrexSystem, QueryRequest,
    SelectionMethod, SelfManageOptions, Strategy, TrexConfig, TrexSystem, Workload,
};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("help");
    match command {
        "build" => build(&args),
        "info" => info(&args),
        "query" => query(&args),
        "explain" => explain(&args),
        "materialize" => materialize(&args),
        "advise" => advise(&args),
        "advisor" => advisor(&args),
        "serve" => serve(&args),
        "stats" => stats(&args),
        _ => {
            print!("{}", HELP);
            Ok(())
        }
    }
}

const HELP: &str = "\
trex — self-managing top-k XML retrieval (reproduction of Consens et al., ICDE 2007)

usage:
  trex build <store.db> --dir <xml-dir> [--threads N] [--partitions N] [--store-docs] [--checkpoint-every N]
  trex build <store.db> --synthetic ieee|wiki --docs N [--threads N] [--partitions N] [--store-docs] [--checkpoint-every N]
  trex info <store.db>
  trex query <store.db> \"<nexi>\" [-k N] [--strategy auto|era|ta|merge|race] [--snippets]
  trex explain <store.db> \"<nexi>\" [-k N]
  trex materialize <store.db> \"<nexi>\" [--kind both|rpl|erpl]
  trex advise <store.db> --workload <file> --budget <bytes> [--method greedy|lp]
  trex advisor <store.db> [--last N]
  trex serve <store.db> [-k N] [--partitions N] [--self-manage --budget <bytes> [--interval-ms N]]
                        [--listen HOST:PORT] [--workers N] [--queue-depth N]
                        [--deadline-ms N] [--no-cache] [--fold-docs N]
                        [--metrics-addr HOST:PORT] [--slow-ms N]
  trex stats <store.db> [--prometheus]

serve reads one NEXI query per line on stdin; with --listen it also answers
queries over HTTP (POST /v1/query with a JSON body {\"nexi\", \"k\",
\"strategy\", \"trace\", \"deadline_ms\"}) behind a bounded admission queue
(--workers worker threads, --queue-depth queue slots, overflow answered
429). --deadline-ms sets a default per-query evaluation budget (expired
queries answer 408); --no-cache disables the generation-keyed result cache.
The HTTP surface also serves /v1/metrics (Prometheus 0.0.4),
/v1/metrics.json, /v1/slow, /v1/healthz (liveness), /v1/readyz
(readiness: 503 until the store is open and recovered), /v1/advisor/history
and /v1/advisor/last (the self-manager's decision journal), and
/v1/trace/<id> (the span tree of a request that carried a traceparent
header — every POST /v1/query honours inbound W3C traceparent and echoes
one back), all with unversioned aliases; --metrics-addr exposes the same
routes on a separate scrape-only endpoint. --slow-ms sets the slow-query
capture threshold (default 100 ms). The REPL also accepts the commands
`stats` (metrics JSON), `slow` (slow-query log JSON), `advisor` (decision
journal JSON), `ingest <file.xml>` (index one document live — it is
WAL-durable and immediately queryable, folded into the on-disk tables in
the background) and `fold` (fold the delta index now) on a line by
themselves. `trex advisor <store.db>` tails the on-disk journal sidecar
(<store>.advisor.jsonl) after the fact. The HTTP surface ingests via POST /v1/ingest with a raw XML
body. --fold-docs sets the delta size (documents) that triggers a
background fold (default 1000).

build --partitions N writes N independent stores (<store>.p0 … .p(N-1)),
routing documents by doc-id hash but sharing one summary / dictionary /
statistics catalog, so answers are byte-identical at any partition count.
serve --partitions N (0 = auto-detect) opens the family and evaluates
every query on all partitions in parallel behind a rank-safe top-k merge;
--self-manage then splits --budget across partitions by workload heat,
re-split every reconcile cycle.
";

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn store_arg(args: &[String]) -> Result<&str, String> {
    args.get(1)
        .map(String::as_str)
        .ok_or_else(|| "missing <store.db> argument".to_string())
}

fn open(args: &[String]) -> Result<TrexSystem, String> {
    let path = store_arg(args)?;
    let system =
        TrexSystem::open(TrexConfig::new(path)).map_err(|e| format!("cannot open {path}: {e}"))?;
    if let Some(report) = system.recovery_report() {
        if report.completed_checkpoint {
            eprintln!(
                "recovery: completed interrupted checkpoint ({} pages replayed, {} wal bytes scanned)",
                report.replayed_pages, report.wal_bytes_scanned
            );
        } else {
            eprintln!(
                "recovery: discarded {} uncommitted wal record(s); store is at its last checkpoint",
                report.discarded_records
            );
        }
    }
    Ok(system)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// What `trex build` produced: one store, or a `.p0`, `.p1`, … family.
enum AnySystem {
    Single(TrexSystem),
    Partitioned(PartitionedTrexSystem),
}

/// Builds either a single store (parallel parse pipeline) or a partitioned
/// family (single-pass routed build — shared catalog, so answers are
/// byte-identical across partition counts).
fn build_any(
    config: TrexConfig,
    docs: impl IntoIterator<Item = String> + Send,
    threads: usize,
    partitions: usize,
) -> Result<AnySystem, String> {
    if partitions > 1 {
        PartitionedTrexSystem::build(config, partitions, docs)
            .map(AnySystem::Partitioned)
            .map_err(|e| e.to_string())
    } else {
        TrexSystem::build_parallel(config, docs, threads)
            .map(AnySystem::Single)
            .map_err(|e| e.to_string())
    }
}

fn build(args: &[String]) -> Result<(), String> {
    let store = store_arg(args)?;
    let threads: usize = flag(args, "--threads")
        .map(|v| v.parse().map_err(|_| "--threads expects a number"))
        .transpose()?
        .unwrap_or(4);
    let partitions: usize = flag(args, "--partitions")
        .map(|v| v.parse().map_err(|_| "--partitions expects a number"))
        .transpose()?
        .unwrap_or(1)
        .max(1);
    let store_docs = has_flag(args, "--store-docs");
    let checkpoint_every: Option<u32> = flag(args, "--checkpoint-every")
        .map(|v| v.parse().map_err(|_| "--checkpoint-every expects a number"))
        .transpose()?;
    let started = std::time::Instant::now();

    let system = if let Some(dir) = flag(args, "--dir") {
        let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| format!("cannot read {dir}: {e}"))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "xml"))
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(format!("no .xml files in {dir}"));
        }
        eprintln!("indexing {} documents from {dir}…", paths.len());
        let docs = paths.into_iter().map(|p| {
            std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
        });
        let mut config = TrexConfig::new(store);
        config.store_documents = store_docs;
        config.build_checkpoint_every = checkpoint_every;
        build_any(config, docs, threads, partitions)?
    } else if let Some(kind) = flag(args, "--synthetic") {
        let docs: usize = flag(args, "--docs")
            .map(|v| v.parse().map_err(|_| "--docs expects a number"))
            .transpose()?
            .unwrap_or(500);
        eprintln!("generating and indexing {docs} synthetic {kind} documents…");
        match kind {
            "ieee" => {
                let gen = IeeeGenerator::new(CorpusConfig {
                    docs,
                    ..CorpusConfig::ieee_default()
                });
                let mut config = TrexConfig::new(store);
                config.store_documents = store_docs;
                config.build_checkpoint_every = checkpoint_every;
                build_any(config, gen.documents(), threads, partitions)?
            }
            "wiki" => {
                let gen = WikiGenerator::new(CorpusConfig {
                    docs,
                    ..CorpusConfig::wiki_default()
                });
                let mut config = TrexConfig::new(store);
                config.alias = AliasMap::inex_wiki();
                config.store_documents = store_docs;
                config.build_checkpoint_every = checkpoint_every;
                build_any(config, gen.documents(), threads, partitions)?
            }
            other => return Err(format!("unknown synthetic collection {other:?}")),
        }
    } else {
        return Err("build needs --dir <xml-dir> or --synthetic ieee|wiki".into());
    };

    // A partitioned build writes the *global* collection statistics to
    // every partition's catalog (that is what keeps scores identical), so
    // partition 0 already reports collection-wide counts.
    let (index, suffix) = match &system {
        AnySystem::Single(system) => (system.index(), String::new()),
        AnySystem::Partitioned(system) => (
            system.system().part(0).index().as_ref(),
            format!(" across {} partitions", system.partitions()),
        ),
    };
    let stats = index.stats();
    eprintln!(
        "built {store}{suffix} in {:.1}s: {} documents, {} elements, {} terms, {} summary nodes",
        started.elapsed().as_secs_f64(),
        stats.doc_count,
        stats.element_count,
        index.dictionary().len(),
        index.summary().node_count(),
    );
    Ok(())
}

fn info(args: &[String]) -> Result<(), String> {
    let system = open(args)?;
    let index = system.index();
    let stats = index.stats();
    println!("documents        {}", stats.doc_count);
    println!("elements         {}", stats.element_count);
    println!("avg element len  {:.1} tokens", stats.avg_element_len);
    println!("terms            {}", index.dictionary().len());
    println!(
        "summary          {:?}, {} nodes",
        index.summary().kind(),
        index.summary().node_count()
    );
    println!("store pages      {}", index.store().page_count());
    let rpls = index.rpls().map_err(|e| e.to_string())?;
    let erpls = index.erpls().map_err(|e| e.to_string())?;
    println!(
        "RPL lists        {} ({} bytes)",
        rpls.lists().map_err(|e| e.to_string())?.len(),
        rpls.total_bytes().map_err(|e| e.to_string())?
    );
    println!(
        "ERPL lists       {} ({} bytes)",
        erpls.lists().map_err(|e| e.to_string())?.len(),
        erpls.total_bytes().map_err(|e| e.to_string())?
    );
    Ok(())
}

fn query(args: &[String]) -> Result<(), String> {
    let system = open(args)?;
    let nexi = args
        .get(2)
        .ok_or_else(|| "missing NEXI query argument".to_string())?;
    let k: Option<usize> = flag(args, "-k")
        .map(|v| v.parse().map_err(|_| "-k expects a number"))
        .transpose()?;
    let strategy = match flag(args, "--strategy").unwrap_or("auto") {
        "auto" => Strategy::Auto,
        "era" => Strategy::Era,
        "ta" => Strategy::Ta,
        "merge" => Strategy::Merge,
        "race" => Strategy::Race,
        other => return Err(format!("unknown strategy {other:?}")),
    };
    let result = system
        .search_with(nexi, k, strategy)
        .map_err(|e| e.to_string())?;
    let used = match &result.stats {
        trex::StrategyStats::Era(_) => "ERA",
        trex::StrategyStats::Ta(_) => "TA",
        trex::StrategyStats::Merge(_) => "Merge",
        trex::StrategyStats::Race { won_by, .. } => match won_by {
            trex::RaceWinner::Ta => "Race (TA won)",
            trex::RaceWinner::Merge => "Race (Merge won)",
        },
        // `trex query` opens one store; scatter stats only come out of a
        // partitioned system.
        trex::StrategyStats::Scatter { .. } => "Scatter",
    };
    eprintln!(
        "{} answers (showing {}), strategy {used}, {:.3} ms; {} sid(s), {} term(s)",
        result.total_answers,
        result.answers.len(),
        result.stats.wall().as_secs_f64() * 1e3,
        result.translation.sids.len(),
        result.translation.terms.len(),
    );
    if !result.translation.unknown_terms.is_empty() {
        eprintln!(
            "note: terms not in collection: {:?}",
            result.translation.unknown_terms
        );
    }
    let show_snippets = has_flag(args, "--snippets");
    for (rank, a) in result.answers.iter().enumerate() {
        println!(
            "{:>4}. doc {:>6}  span [{}, {}]  sid {:>5}  score {:.4}",
            rank + 1,
            a.element.doc,
            a.element.start(),
            a.element.end,
            a.sid,
            a.score
        );
        if show_snippets {
            match system.snippet(a).map_err(|e| e.to_string())? {
                Some(snippet) => {
                    let mut line: String = snippet.chars().take(160).collect();
                    if line.len() < snippet.len() {
                        line.push('…');
                    }
                    println!("      {line}");
                }
                None => println!("      (no snippet: build with --store-docs)"),
            }
        }
    }
    Ok(())
}

fn explain(args: &[String]) -> Result<(), String> {
    let system = open(args)?;
    let nexi = args
        .get(2)
        .ok_or_else(|| "missing NEXI query argument".to_string())?;
    let k: Option<usize> = flag(args, "-k")
        .map(|v| v.parse().map_err(|_| "-k expects a number"))
        .transpose()?;
    let plan = system
        .engine()
        .explain(nexi, trex::EvalOptions::new().k(k))
        .map_err(|e| e.to_string())?;
    println!("query: {nexi}");
    println!("\nextents ({} sids):", plan.extents.len());
    for (sid, xpath, size) in &plan.extents {
        println!("  sid {sid:>5}  {xpath:<50} {size:>8} elements");
    }
    println!("\nterms ({}):", plan.terms.len());
    for (id, text, cf) in &plan.terms {
        println!("  term {id:>5}  {text:<30} {cf:>8} occurrences");
    }
    if !plan.translation.unknown_terms.is_empty() {
        println!("\nnot in collection: {:?}", plan.translation.unknown_terms);
    }
    println!("\nRPLs materialised:  {}", plan.rpls_available);
    println!("ERPLs materialised: {}", plan.erpls_available);
    println!("auto would run:     {:?}", plan.chosen);
    Ok(())
}

fn materialize(args: &[String]) -> Result<(), String> {
    let system = open(args)?;
    let nexi = args
        .get(2)
        .ok_or_else(|| "missing NEXI query argument".to_string())?;
    let kind = match flag(args, "--kind").unwrap_or("both") {
        "both" => ListKind::Both,
        "rpl" => ListKind::Rpl,
        "erpl" => ListKind::Erpl,
        other => return Err(format!("unknown kind {other:?}")),
    };
    let written = system
        .materialize_for(nexi, kind)
        .map_err(|e| e.to_string())?;
    eprintln!("materialised {written} lists for {nexi:?}");
    Ok(())
}

fn advise(args: &[String]) -> Result<(), String> {
    let system = open(args)?;
    let workload_path = flag(args, "--workload").ok_or("missing --workload <file>")?;
    let budget: u64 = flag(args, "--budget")
        .ok_or("missing --budget <bytes>")?
        .parse()
        .map_err(|_| "--budget expects bytes")?;
    let method = match flag(args, "--method").unwrap_or("greedy") {
        "greedy" => SelectionMethod::Greedy,
        "lp" => SelectionMethod::Lp,
        other => return Err(format!("unknown method {other:?}")),
    };

    let text = std::fs::read_to_string(workload_path)
        .map_err(|e| format!("cannot read {workload_path}: {e}"))?;
    let mut entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let weight: f64 = parts
            .next()
            .and_then(|w| w.parse().ok())
            .ok_or(format!("line {}: expected <weight> <k> <nexi>", lineno + 1))?;
        let k: usize = parts
            .next()
            .and_then(|w| w.parse().ok())
            .ok_or(format!("line {}: expected <weight> <k> <nexi>", lineno + 1))?;
        let nexi = parts
            .next()
            .ok_or(format!("line {}: missing query", lineno + 1))?
            .trim()
            .to_string();
        entries.push((nexi, weight, k));
    }
    let workload = Workload::from_weights(entries).map_err(|e| e.to_string())?;
    eprintln!("profiling {} queries…", workload.len());
    let report = system
        .advisor()
        .apply(
            &workload,
            AdvisorOptions {
                budget_bytes: budget,
                method,
                measure_runs: 3,
            },
        )
        .map_err(|e| e.to_string())?;
    for (wq, choice) in workload.queries().iter().zip(&report.selection.choices) {
        println!(
            "{:?}  f={:.3} k={}  {}",
            choice, wq.frequency, wq.k, wq.nexi
        );
    }
    println!(
        "kept {} bytes (budget {budget}), dropped {} lists, expected saving {:.6}s per workload execution",
        report.bytes_used, report.lists_dropped, report.expected_saving
    );
    Ok(())
}

/// Tails the advisor decision-journal sidecar (`<store>.advisor.jsonl`):
/// one JSON line per reconcile cycle, written by the online self-manager.
/// Reads the file, not the live process, so it works on a stopped store.
fn advisor(args: &[String]) -> Result<(), String> {
    let store = store_arg(args)?;
    let last: usize = flag(args, "--last")
        .map(|v| v.parse().map_err(|_| "--last expects a number"))
        .transpose()?
        .unwrap_or(10);
    let path = trex::advisor_sidecar_path(std::path::Path::new(store));
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read {}: {e} (the journal is written while `trex serve --self-manage` runs)",
            path.display()
        )
    })?;
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let start = lines.len().saturating_sub(last);
    for line in &lines[start..] {
        println!("{line}");
    }
    eprintln!(
        "{} cycle(s) on record, showing last {}",
        lines.len(),
        lines.len() - start
    );
    Ok(())
}

/// One-shot metrics dump for an existing store: every counter and histogram
/// the registry knows, as JSON (default) or Prometheus text exposition
/// (`--prometheus`). Counters cover this process only — the open itself
/// plus whatever the caller already ran — because metrics live in memory,
/// not in the store.
fn stats(args: &[String]) -> Result<(), String> {
    let system = open(args)?;
    let registry = system.metrics();
    if has_flag(args, "--prometheus") {
        print!("{}", registry.render_prometheus());
    } else {
        println!("{}", registry.render_json());
    }
    Ok(())
}

/// A NEXI-per-line REPL over stdin, optionally with the online self-manager
/// reconciling the redundant indexes in the background while queries run,
/// optionally with the query-serving HTTP front end (`--listen`), and
/// optionally with a scrape-only metrics endpoint (`--metrics-addr`).
fn serve(args: &[String]) -> Result<(), String> {
    if let Some(n) = flag(args, "--partitions") {
        let n: usize = n.parse().map_err(|_| "--partitions expects a number")?;
        return serve_partitioned(args, n);
    }
    let system = open(args)?;
    let k: Option<usize> = flag(args, "-k")
        .map(|v| v.parse().map_err(|_| "-k expects a number"))
        .transpose()?;
    let k = k.or(Some(10));

    if let Some(ms) = flag(args, "--slow-ms") {
        let ms: u64 = ms.parse().map_err(|_| "--slow-ms expects milliseconds")?;
        system
            .index()
            .telemetry()
            .slow
            .set_threshold(Some(std::time::Duration::from_millis(ms)));
    }

    let metrics = match flag(args, "--metrics-addr") {
        Some(addr) => {
            let server = trex::MetricsServer::start(addr, system.metrics())
                .map_err(|e| format!("cannot bind metrics endpoint {addr}: {e}"))?;
            eprintln!("metrics: listening on {}", server.addr());
            Some(server)
        }
        None => None,
    };

    let mut http_config = HttpServerConfig::default();
    if let Some(n) = flag(args, "--workers") {
        http_config.workers = n.parse().map_err(|_| "--workers expects a number")?;
    }
    if let Some(n) = flag(args, "--queue-depth") {
        http_config.queue_depth = n.parse().map_err(|_| "--queue-depth expects a number")?;
    }
    if let Some(ms) = flag(args, "--deadline-ms") {
        http_config.default_deadline_ms = Some(
            ms.parse()
                .map_err(|_| "--deadline-ms expects milliseconds")?,
        );
    }
    http_config.cache = !has_flag(args, "--no-cache");
    let http = match flag(args, "--listen") {
        Some(addr) => {
            let server = system
                .serve_http(addr, http_config.clone())
                .map_err(|e| format!("cannot bind http endpoint {addr}: {e}"))?;
            eprintln!(
                "http: serving on {} ({} workers, queue depth {}, cache {})",
                server.addr(),
                http_config.workers.max(1),
                http_config.queue_depth,
                if http_config.cache { "on" } else { "off" },
            );
            Some(server)
        }
        None => None,
    };

    // The background fold thread keeps live-ingested documents from
    // accumulating in memory: past the threshold the delta index is folded
    // into the B+tree tables. Idle cost is two atomic loads per poll.
    let fold_docs: usize = flag(args, "--fold-docs")
        .map(|v| v.parse().map_err(|_| "--fold-docs expects a number"))
        .transpose()?
        .unwrap_or(1000);
    let folder = system
        .start_fold_manager(trex::FoldOptions::new().max_docs(fold_docs).log_folds(true))
        .map_err(|e| e.to_string())?;

    let manager = if has_flag(args, "--self-manage") {
        let budget: u64 = flag(args, "--budget")
            .ok_or("--self-manage needs --budget <bytes>")?
            .parse()
            .map_err(|_| "--budget expects bytes")?;
        let interval_ms: u64 = flag(args, "--interval-ms")
            .map(|v| v.parse().map_err(|_| "--interval-ms expects a number"))
            .transpose()?
            .unwrap_or(1000);
        let opts = SelfManageOptions::new(budget)
            .interval(std::time::Duration::from_millis(interval_ms))
            .log_cycles(true);
        let manager = system.start_self_manager(opts).map_err(|e| e.to_string())?;
        eprintln!("self-manager running: budget {budget} bytes, reconcile every {interval_ms} ms");
        Some(manager)
    } else {
        None
    };

    eprintln!("serving: one NEXI query per line (or `stats` / `slow` / `advisor`), EOF to exit");
    // The REPL answers through the same QueryService as the HTTP front end
    // (shared cache, shared serve metrics) — one handler, two transports.
    let service = if http_config.cache {
        system.service()
    } else {
        trex::QueryService::new(system.engine()).with_metrics(system.serve_metrics().clone())
    };
    let registry = system.metrics();
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        let nexi = line.trim();
        if nexi.is_empty() || nexi.starts_with('#') {
            continue;
        }
        if nexi == "stats" {
            println!("{}", registry.render_json());
            continue;
        }
        if nexi == "slow" {
            println!("{}", registry.render_slow_json());
            continue;
        }
        if nexi == "advisor" {
            println!("{}", system.advisor_journal().history_json());
            continue;
        }
        if let Some(path) = nexi.strip_prefix("ingest ") {
            let path = path.trim();
            match std::fs::read_to_string(path) {
                Ok(xml) => match system.ingest_document(&xml) {
                    Ok(doc_id) => eprintln!(
                        "ingested {path} as doc {doc_id} ({} doc(s) in delta, folds at {fold_docs})",
                        system.index().delta().doc_count()
                    ),
                    Err(e) => eprintln!("error: ingest {path}: {e}"),
                },
                Err(e) => eprintln!("error: cannot read {path}: {e}"),
            }
            continue;
        }
        if nexi == "fold" {
            match system.fold_once() {
                Ok(Some(report)) => eprintln!(
                    "folded {} doc(s) ({} new term(s), {} list(s) refreshed) in {:.1} ms, generation {}",
                    report.docs_folded,
                    report.new_terms,
                    report.lists_refreshed,
                    report.wall.as_secs_f64() * 1e3,
                    report.generation,
                ),
                Ok(None) => eprintln!("delta is empty; nothing to fold"),
                Err(e) => eprintln!("error: fold: {e}"),
            }
            continue;
        }
        let mut request = QueryRequest::new(nexi).k(k);
        if let Some(ms) = http_config.default_deadline_ms {
            request = request.deadline_ms(ms);
        }
        match service.execute(&request) {
            Ok(response) => {
                for (rank, a) in response.answers.iter().enumerate() {
                    println!(
                        "{:>4}. doc {:>6}  span [{}, {}]  sid {:>5}  score {:.4}",
                        rank + 1,
                        a.element.doc,
                        a.element.start(),
                        a.element.end,
                        a.sid,
                        a.score
                    );
                }
                let counters = system.profiler().counters();
                let latency = system.index().telemetry().query.query.snapshot();
                let profiled = counters.queries_profiled.get();
                let fallbacks = counters.era_fallbacks.get();
                let fallback_rate = if profiled > 0 {
                    100.0 * fallbacks as f64 / profiled as f64
                } else {
                    0.0
                };
                let mut status = format!(
                    "{} answers in {:.3} ms ({}, cache {}); \
                     p50 {:.3} ms p99 {:.3} ms over {} queries; \
                     profiled {}, era fallback rate {:.1}% ({fallbacks})",
                    response.total_answers,
                    response.server_time.as_secs_f64() * 1e3,
                    response.strategy,
                    response.cache.as_str(),
                    latency.percentile(0.50) as f64 / 1e6,
                    latency.percentile(0.99) as f64 / 1e6,
                    latency.count(),
                    profiled,
                    fallback_rate,
                );
                if let Some(manager) = &manager {
                    match manager.last_report() {
                        Some(report) => status.push_str(&format!(
                            "; self-manage: {} cycle(s), {} bytes kept, +{} / -{} lists last cycle",
                            counters.cycles.get(),
                            report.bytes_used,
                            report.lists_materialized,
                            report.lists_dropped,
                        )),
                        None => status.push_str("; self-manage: no reconcile cycle yet"),
                    }
                    if let Some(err) = manager.last_error() {
                        status.push_str(&format!("; last reconcile error: {err}"));
                    }
                }
                eprintln!("{status}");
            }
            Err(e) => eprintln!("error: {e}"),
        }
    }
    if let Some(http) = http {
        http.stop();
    }
    if let Some(manager) = manager {
        manager.stop();
    }
    // Unfolded delta documents are WAL-durable; stopping without a final
    // fold just means the next open replays them into a fresh delta.
    folder.stop();
    if let Some(metrics) = metrics {
        metrics.stop();
    }
    Ok(())
}

/// `trex serve --partitions N`: the same REPL + HTTP front end over a
/// partitioned store family (`<store>.p0`, `.p1`, …). Every query scatters
/// to all partitions and gathers through the rank-safe merge; `--self-manage`
/// runs the partitioned reconciler, which re-splits the byte budget across
/// partitions by profiler heat every cycle.
fn serve_partitioned(args: &[String], partitions: usize) -> Result<(), String> {
    let path = store_arg(args)?;
    let detected = PartitionedTrexSystem::detect_partitions(std::path::Path::new(path));
    if detected == 0 {
        return Err(format!(
            "no partitioned store family at {path} (build one with `trex build {path} --partitions N …`)"
        ));
    }
    if partitions != 0 && partitions != detected {
        return Err(format!(
            "--partitions {partitions} does not match the {detected} partition store(s) on disk \
             (pass --partitions {detected}, or 0 to auto-detect)"
        ));
    }
    let system = PartitionedTrexSystem::open(TrexConfig::new(path)).map_err(|e| e.to_string())?;
    eprintln!("opened {path} with {} partitions", system.partitions());
    let k: Option<usize> = flag(args, "-k")
        .map(|v| v.parse().map_err(|_| "-k expects a number"))
        .transpose()?;
    let k = k.or(Some(10));

    if let Some(ms) = flag(args, "--slow-ms") {
        let ms: u64 = ms.parse().map_err(|_| "--slow-ms expects milliseconds")?;
        for part in system.system().parts() {
            part.index()
                .telemetry()
                .slow
                .set_threshold(Some(std::time::Duration::from_millis(ms)));
        }
    }

    let metrics = match flag(args, "--metrics-addr") {
        Some(addr) => {
            let server = trex::MetricsServer::start(addr, system.metrics())
                .map_err(|e| format!("cannot bind metrics endpoint {addr}: {e}"))?;
            eprintln!("metrics: listening on {}", server.addr());
            Some(server)
        }
        None => None,
    };

    let mut http_config = HttpServerConfig::default();
    if let Some(n) = flag(args, "--workers") {
        http_config.workers = n.parse().map_err(|_| "--workers expects a number")?;
    }
    if let Some(n) = flag(args, "--queue-depth") {
        http_config.queue_depth = n.parse().map_err(|_| "--queue-depth expects a number")?;
    }
    if let Some(ms) = flag(args, "--deadline-ms") {
        http_config.default_deadline_ms = Some(
            ms.parse()
                .map_err(|_| "--deadline-ms expects milliseconds")?,
        );
    }
    http_config.cache = !has_flag(args, "--no-cache");
    let http = match flag(args, "--listen") {
        Some(addr) => {
            let server = system
                .serve_http(addr, http_config.clone())
                .map_err(|e| format!("cannot bind http endpoint {addr}: {e}"))?;
            eprintln!(
                "http: serving on {} ({} workers, queue depth {}, cache {})",
                server.addr(),
                http_config.workers.max(1),
                http_config.queue_depth,
                if http_config.cache { "on" } else { "off" },
            );
            Some(server)
        }
        None => None,
    };

    // One background fold thread per partition: each watches only its own
    // delta, so routed live ingest folds where the documents landed.
    let fold_docs: usize = flag(args, "--fold-docs")
        .map(|v| v.parse().map_err(|_| "--fold-docs expects a number"))
        .transpose()?
        .unwrap_or(1000);
    let folders: Vec<trex::FoldManager> = system
        .system()
        .parts()
        .iter()
        .map(|part| {
            trex::FoldManager::start(
                part.index().clone(),
                trex::FoldOptions::new().max_docs(fold_docs).log_folds(true),
            )
        })
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;

    let manager = if has_flag(args, "--self-manage") {
        let budget: u64 = flag(args, "--budget")
            .ok_or("--self-manage needs --budget <bytes>")?
            .parse()
            .map_err(|_| "--budget expects bytes")?;
        let interval_ms: u64 = flag(args, "--interval-ms")
            .map(|v| v.parse().map_err(|_| "--interval-ms expects a number"))
            .transpose()?
            .unwrap_or(1000);
        let opts = SelfManageOptions::new(budget)
            .interval(std::time::Duration::from_millis(interval_ms))
            .log_cycles(true);
        let manager = system.start_self_manager(opts).map_err(|e| e.to_string())?;
        eprintln!(
            "partitioned self-manager running: {budget} bytes split across {} partitions by heat, reconcile every {interval_ms} ms",
            system.partitions()
        );
        Some(manager)
    } else {
        None
    };

    eprintln!("serving: one NEXI query per line (or `stats` / `slow` / `advisor`), EOF to exit");
    let service = if http_config.cache {
        system.service()
    } else {
        trex::QueryService::partitioned(system.system())
            .with_metrics(system.serve_metrics().clone())
    };
    let registry = system.metrics();
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        let nexi = line.trim();
        if nexi.is_empty() || nexi.starts_with('#') {
            continue;
        }
        if nexi == "stats" {
            println!("{}", registry.render_json());
            continue;
        }
        if nexi == "slow" {
            println!("{}", registry.render_slow_json());
            continue;
        }
        if nexi == "advisor" {
            println!("{}", system.advisor_journal().history_json());
            continue;
        }
        if let Some(path) = nexi.strip_prefix("ingest ") {
            let path = path.trim();
            match std::fs::read_to_string(path) {
                Ok(xml) => match system.ingest_document(&xml) {
                    Ok(doc_id) => {
                        let home = trex::partition_of(doc_id, system.partitions());
                        eprintln!("ingested {path} as doc {doc_id} into partition {home}")
                    }
                    Err(e) => eprintln!("error: ingest {path}: {e}"),
                },
                Err(e) => eprintln!("error: cannot read {path}: {e}"),
            }
            continue;
        }
        if nexi == "fold" {
            match system.fold_once() {
                Ok(reports) => {
                    let folded: usize = reports
                        .iter()
                        .flatten()
                        .map(|report| report.docs_folded)
                        .sum();
                    if folded == 0 {
                        eprintln!("every partition delta is empty; nothing to fold");
                    } else {
                        eprintln!(
                            "folded {folded} doc(s) across {} partition(s), generation {}",
                            reports.iter().flatten().count(),
                            system.system().generation(),
                        );
                    }
                }
                Err(e) => eprintln!("error: fold: {e}"),
            }
            continue;
        }
        let mut request = QueryRequest::new(nexi).k(k);
        if let Some(ms) = http_config.default_deadline_ms {
            request = request.deadline_ms(ms);
        }
        match service.execute(&request) {
            Ok(response) => {
                for (rank, a) in response.answers.iter().enumerate() {
                    println!(
                        "{:>4}. doc {:>6}  span [{}, {}]  sid {:>5}  score {:.4}",
                        rank + 1,
                        a.element.doc,
                        a.element.start(),
                        a.element.end,
                        a.sid,
                        a.score
                    );
                }
                let mut status = format!(
                    "{} answers in {:.3} ms ({}, cache {}) over {} partitions",
                    response.total_answers,
                    response.server_time.as_secs_f64() * 1e3,
                    response.strategy,
                    response.cache.as_str(),
                    system.partitions(),
                );
                if let Some(manager) = &manager {
                    match manager.last_cycle() {
                        Some(cycle) => {
                            let splits: Vec<String> = cycle
                                .budgets
                                .iter()
                                .map(|b| format!("p{}:{}", b.partition, b.budget_bytes))
                                .collect();
                            status.push_str(&format!(
                                "; self-manage cycle {}: budget split {}",
                                cycle.cycle,
                                splits.join(" ")
                            ));
                        }
                        None => status.push_str("; self-manage: no reconcile cycle yet"),
                    }
                    if let Some(err) = manager.last_error() {
                        status.push_str(&format!("; last reconcile error: {err}"));
                    }
                }
                eprintln!("{status}");
            }
            Err(e) => eprintln!("error: {e}"),
        }
    }
    if let Some(http) = http {
        http.stop();
    }
    if let Some(manager) = manager {
        manager.stop();
    }
    for folder in folders {
        folder.stop();
    }
    if let Some(metrics) = metrics {
        metrics.stop();
    }
    Ok(())
}
