//! Merge — evaluation over ERPLs (paper Fig. 3).
//!
//! Merge walks the position-ordered ERPL lists of the query's (term, sid)
//! pairs in lockstep, combining the scores of entries that refer to the same
//! element, and finally sorts the combined list by score with QuickSort
//! (Fig. 3, line 22). It always computes *all* answers; top-k is a prefix of
//! the sorted result.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use trex_index::{ErplTable, Position, RplEntry};
use trex_summary::Sid;
use trex_text::TermId;

use crate::answer::Answer;
use crate::qsort::quicksort;
use crate::serve::deadline::{Deadline, CHECK_INTERVAL};
use crate::Result;

/// Execution statistics of one Merge run.
#[derive(Debug, Clone, Copy, Default)]
pub struct MergeStats {
    /// Wall-clock time (includes the final sort).
    pub wall: Duration,
    /// Time of the final QuickSort alone.
    pub sort_time: Duration,
    /// ERPL entries read.
    pub entries_read: u64,
    /// Distinct elements produced.
    pub merged_elements: u64,
}

/// Runs Merge for the translated query `(sids, terms)`, returning *all*
/// answers in descending score order.
///
/// Requires the ERPL lists of every `(term, sid)` pair to be materialised;
/// the engine checks this before choosing Merge.
pub fn merge(
    erpls: &ErplTable,
    sids: &[Sid],
    terms: &[TermId],
) -> Result<(Vec<Answer>, MergeStats)> {
    Ok(
        merge_with_cancel(erpls, sids, terms, None, Deadline::none())?
            .expect("uncancelled run completes"),
    )
}

/// Like [`merge`], but aborts (returning `Ok(None)`) as soon as `cancel` is
/// set — checked every [`CHECK_INTERVAL`] merged elements, alongside the
/// cooperative [`Deadline`] (whose expiry fails with
/// [`TrexError::DeadlineExceeded`](crate::TrexError::DeadlineExceeded)
/// instead). Used by the engine's race mode and the serving layer.
pub fn merge_with_cancel(
    erpls: &ErplTable,
    sids: &[Sid],
    terms: &[TermId],
    cancel: Option<&AtomicBool>,
    deadline: Deadline,
) -> Result<Option<(Vec<Answer>, MergeStats)>> {
    let start = Instant::now();
    let mut stats = MergeStats::default();

    // Lines 2–5: one iterator per (term, sid) list, primed with its head.
    let mut iters = Vec::with_capacity(terms.len() * sids.len());
    // Min-heap of (position, length, sid, iterator index) — Fig. 3 scans
    // c_1..c_n for the minimum each round; a heap gives the same order with
    // fewer compares. The merge key is the full element identity (position,
    // length, sid): an ancestor and its descendant can share an end position
    // (differing in length), and a parent with a single child can even share
    // the whole span (differing in sid) — those are distinct answers.
    let mut heads: BinaryHeap<Reverse<(Position, u32, Sid, usize)>> = BinaryHeap::new();
    for &term in terms {
        for &sid in sids {
            let mut it = erpls.iter_list(term, sid)?;
            if let Some(entry) = it.next_entry()? {
                stats.entries_read += 1;
                let idx = iters.len();
                heads.push(Reverse((
                    entry.element.end_position(),
                    entry.element.length,
                    entry.sid,
                    idx,
                )));
                iters.push((it, Some(entry)));
            } else {
                iters.push((it, None));
            }
        }
    }

    // Lines 6–21: repeatedly take the minimal position and combine the
    // scores of every current entry at that position.
    let mut answers: Vec<Answer> = Vec::new();
    while let Some(Reverse((pos, len, sid, idx))) = heads.pop() {
        let entry = iters[idx].1.take().expect("head entry present");
        let mut combined = Answer {
            element: entry.element,
            sid: entry.sid,
            score: entry.score,
        };
        advance(&mut iters[idx], idx, &mut heads, &mut stats)?;

        // Other lists whose current entry is the same element.
        while let Some(&Reverse((next_pos, next_len, next_sid, next_idx))) = heads.peek() {
            if next_pos != pos || next_len != len || next_sid != sid {
                break;
            }
            heads.pop();
            let other: RplEntry = iters[next_idx].1.take().expect("head entry present");
            debug_assert_eq!(other.element, combined.element);
            combined.score += other.score;
            advance(&mut iters[next_idx], next_idx, &mut heads, &mut stats)?;
        }

        answers.push(combined);
        stats.merged_elements += 1;
        if stats.merged_elements % CHECK_INTERVAL == 0 {
            if let Some(flag) = cancel {
                if flag.load(Ordering::Relaxed) {
                    return Ok(None);
                }
            }
            deadline.check()?;
        }
    }

    // Line 22: sort V using QuickSort (descending score, stable tiebreak).
    let sort_start = Instant::now();
    quicksort(&mut answers, |a, b| {
        a.score > b.score || (a.score == b.score && (a.element, a.sid) < (b.element, b.sid))
    });
    stats.sort_time = sort_start.elapsed();
    stats.wall = start.elapsed();
    Ok(Some((answers, stats)))
}

type IterState<'a> = (trex_index::ErplIter<'a>, Option<RplEntry>);

fn advance(
    state: &mut IterState<'_>,
    idx: usize,
    heads: &mut BinaryHeap<Reverse<(Position, u32, Sid, usize)>>,
    stats: &mut MergeStats,
) -> Result<()> {
    if let Some(next) = state.0.next_entry()? {
        stats.entries_read += 1;
        heads.push(Reverse((
            next.element.end_position(),
            next.element.length,
            next.sid,
            idx,
        )));
        state.1 = Some(next);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_index::ElementRef;
    use trex_storage::Store;

    fn with_erpls<R>(name: &str, f: impl FnOnce(&mut ErplTable) -> R) -> R {
        let mut path = std::env::temp_dir();
        path.push(format!("trex-merge-{name}-{}", std::process::id()));
        let store = Store::create(&path, 64).unwrap();
        let mut t = ErplTable::open(&store).unwrap();
        let r = f(&mut t);
        drop(t);
        drop(store);
        std::fs::remove_file(&path).ok();
        r
    }

    fn el(doc: u32, end: u32) -> ElementRef {
        ElementRef {
            doc,
            end,
            length: 2,
        }
    }

    #[test]
    fn merges_shared_elements_across_terms() {
        with_erpls("shared", |erpls| {
            erpls
                .put_list(1, 10, &[(el(0, 1), 2.0), (el(0, 5), 1.0)])
                .unwrap();
            erpls
                .put_list(2, 10, &[(el(0, 1), 0.5), (el(0, 9), 3.0)])
                .unwrap();
            let (answers, stats) = merge(erpls, &[10], &[1, 2]).unwrap();
            assert_eq!(answers.len(), 3);
            assert_eq!(answers[0].element, el(0, 9));
            assert_eq!(answers[0].score, 3.0);
            assert_eq!(answers[1].element, el(0, 1));
            assert!((answers[1].score - 2.5).abs() < 1e-6);
            assert_eq!(answers[2].score, 1.0);
            assert_eq!(stats.entries_read, 4);
            assert_eq!(stats.merged_elements, 3);
        });
    }

    #[test]
    fn merges_across_sids() {
        with_erpls("sids", |erpls| {
            erpls.put_list(1, 10, &[(el(0, 1), 1.0)]).unwrap();
            erpls.put_list(1, 20, &[(el(0, 7), 2.0)]).unwrap();
            let (answers, _) = merge(erpls, &[10, 20], &[1]).unwrap();
            assert_eq!(answers.len(), 2);
            assert_eq!(answers[0].sid, 20);
            assert_eq!(answers[1].sid, 10);
        });
    }

    #[test]
    fn missing_lists_contribute_nothing() {
        with_erpls("missing", |erpls| {
            erpls.put_list(1, 10, &[(el(0, 1), 1.0)]).unwrap();
            let (answers, _) = merge(erpls, &[10, 99], &[1, 2]).unwrap();
            assert_eq!(answers.len(), 1);
        });
    }

    #[test]
    fn empty_query_is_empty() {
        with_erpls("empty", |erpls| {
            let (answers, stats) = merge(erpls, &[], &[]).unwrap();
            assert!(answers.is_empty());
            assert_eq!(stats.entries_read, 0);
        });
    }

    #[test]
    fn output_is_sorted_descending_with_stable_ties() {
        with_erpls("ties", |erpls| {
            erpls
                .put_list(
                    1,
                    10,
                    &[
                        (el(0, 1), 1.0),
                        (el(0, 3), 2.0),
                        (el(0, 5), 1.0),
                        (el(1, 1), 2.0),
                    ],
                )
                .unwrap();
            let (answers, _) = merge(erpls, &[10], &[1]).unwrap();
            let scores: Vec<f32> = answers.iter().map(|a| a.score).collect();
            assert_eq!(scores, vec![2.0, 2.0, 1.0, 1.0]);
            // Ties resolved by element order.
            assert!(answers[0].element < answers[1].element);
            assert!(answers[2].element < answers[3].element);
        });
    }
}
