//! Query answers and score ordering.

use std::cmp::Ordering;

use trex_index::ElementRef;
use trex_summary::Sid;

/// One ranked answer: an element, the summary node it belongs to, and its
/// combined relevance score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Answer {
    /// The answer element.
    pub element: ElementRef,
    /// The element's summary node.
    pub sid: Sid,
    /// Combined (summed over terms) relevance score.
    pub score: f32,
}

impl Answer {
    /// Deterministic ranking order: score descending, then (doc, end)
    /// ascending as the tiebreak so equal-scored runs are stable across
    /// strategies.
    pub fn rank_cmp(&self, other: &Answer) -> Ordering {
        other
            .score
            .partial_cmp(&self.score)
            .expect("scores are finite")
            .then_with(|| self.element.cmp(&other.element))
            .then_with(|| self.sid.cmp(&other.sid))
    }
}

/// Sorts answers into ranking order (used by tests and by strategies that
/// do not use the from-scratch quicksort).
pub fn rank(answers: &mut [Answer]) {
    answers.sort_unstable_by(Answer::rank_cmp);
}

/// Truncates a ranked list to the top-k prefix.
pub fn top_k(mut answers: Vec<Answer>, k: usize) -> Vec<Answer> {
    rank(&mut answers);
    answers.truncate(k);
    answers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ans(doc: u32, end: u32, score: f32) -> Answer {
        Answer {
            element: ElementRef {
                doc,
                end,
                length: 1,
            },
            sid: 1,
            score,
        }
    }

    #[test]
    fn rank_orders_by_score_then_position() {
        let mut v = vec![ans(0, 5, 1.0), ans(0, 3, 2.0), ans(1, 1, 2.0)];
        rank(&mut v);
        assert_eq!(v[0].score, 2.0);
        assert_eq!(v[0].element.doc, 0);
        assert_eq!(v[1].element.doc, 1);
        assert_eq!(v[2].score, 1.0);
    }

    #[test]
    fn top_k_truncates_after_ranking() {
        let v = vec![ans(0, 1, 0.5), ans(0, 2, 3.0), ans(0, 3, 1.5)];
        let top = top_k(v, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].score, 3.0);
        assert_eq!(top[1].score, 1.5);
    }

    #[test]
    fn top_k_with_large_k_keeps_everything() {
        let v = vec![ans(0, 1, 0.5)];
        assert_eq!(top_k(v, 100).len(), 1);
    }
}
