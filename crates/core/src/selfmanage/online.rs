//! The online self-manager: periodic, incremental advisor reconciliation
//! concurrent with query serving.
//!
//! The offline [`Advisor`] answers "given this workload, which lists should
//! exist?" — but it assumes a quiesced system and a hand-written workload.
//! This module closes the loop of the paper's title: the
//! [`WorkloadProfiler`] observes the live query stream, [`reconcile_once`]
//! periodically re-runs the §4 selection under the disk budget, and the
//! delta is applied *list by list* under the index's maintenance write gate
//! — queries keep flowing between list mutations, and one that lands
//! mid-reconcile simply observes partial coverage and falls back to ERA
//! (correct answers, never an error; counted as `era_fallbacks`).
//!
//! Cost measurement is cheaper than the offline advisor's: instead of
//! materialising every candidate's lists and timing all three strategies,
//! a cycle measures only `T_e` (a traced ERA run, which needs no redundant
//! lists) and *estimates* `T_m`/`T_ta` from the §4 access-count predictions
//! scaled by the measured per-access cost. Measurements are cached per
//! query shape ([`CostCache`]), so steady-state cycles re-measure nothing
//! and touch no lists at all.
//!
//! [`Advisor`]: super::advisor::Advisor

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use trex_index::TrexIndex;
use trex_obs::{AdvisorJournal, CycleRecord, Health, InFlight, ListDeltaRecord, ShapeRecord};
use trex_summary::Sid;
use trex_text::TermId;

use crate::engine::{EvalOptions, QueryEngine, Strategy};
use crate::materialize::{collect_lists, erpl_list_bytes, rpl_list_bytes, ScoredLists};
use crate::ta::TA_MAX_TERMS;
use crate::{Result, TrexError};

use super::advisor::SelectionMethod;
use super::cost::{predicted_merge_accesses, predicted_ta_accesses, Choice, ListId, QueryCost};
use super::greedy::solve_greedy;
use super::lp::solve_lp;
use super::profiler::WorkloadProfiler;
use super::workload::Workload;
use super::Selection;

/// Options for the online self-manager.
#[derive(Debug, Clone, Copy)]
pub struct SelfManageOptions {
    /// Disk budget `d` in bytes for the redundant lists.
    pub budget_bytes: u64,
    /// Selection algorithm.
    pub method: SelectionMethod,
    /// Pause between background reconcile cycles.
    pub interval: Duration,
    /// How many of the heaviest profiled query shapes a cycle considers.
    pub max_queries: usize,
    /// Timing runs per `T_e` measurement; the median is used.
    pub measure_runs: usize,
    /// Print one status line per completed background cycle to stderr
    /// (query p50/p99, ERA-fallback rate, lists moved). Off by default;
    /// `trex serve` turns it on.
    pub log_cycles: bool,
}

impl SelfManageOptions {
    /// Defaults: greedy selection, 1 s cycles, top 8 shapes, one timing run.
    pub fn new(budget_bytes: u64) -> SelfManageOptions {
        SelfManageOptions {
            budget_bytes,
            method: SelectionMethod::Greedy,
            interval: Duration::from_secs(1),
            max_queries: 8,
            measure_runs: 1,
            log_cycles: false,
        }
    }

    /// Sets the cycle interval.
    pub fn interval(mut self, interval: Duration) -> SelfManageOptions {
        self.interval = interval;
        self
    }

    /// Sets the selection method.
    pub fn method(mut self, method: SelectionMethod) -> SelfManageOptions {
        self.method = method;
        self
    }

    /// Sets the workload width per cycle.
    pub fn max_queries(mut self, max: usize) -> SelfManageOptions {
        self.max_queries = max;
        self
    }

    /// Sets the number of timing runs per measurement.
    pub fn measure_runs(mut self, runs: usize) -> SelfManageOptions {
        self.measure_runs = runs;
        self
    }

    /// Enables/disables the per-cycle stderr status line.
    pub fn log_cycles(mut self, on: bool) -> SelfManageOptions {
        self.log_cycles = on;
        self
    }
}

/// Everything a cycle learns about one query shape that does not depend on
/// the workload frequencies: measured ERA cost, estimated deltas, and the
/// exact list footprints. Valid as long as the corpus has not moved: the
/// entry records the ingest epoch (documents ever ingested — staged plus
/// folded) it was measured at, and a cycle re-measures any shape whose
/// epoch is stale, so live ingestion cannot leave the advisor pricing
/// yesterday's lists.
#[derive(Debug, Clone)]
struct CachedCost {
    t_e: f64,
    delta_merge: f64,
    delta_ta: f64,
    erpl_lists: Vec<ListId>,
    rpl_lists: Vec<ListId>,
    sids: Vec<Sid>,
    terms: Vec<TermId>,
    /// `delta.folded_docs() + delta.doc_count()` at measurement time.
    ingest_epoch: u64,
}

/// Memoised per-shape measurements across reconcile cycles. Keyed by
/// (representative NEXI, k).
#[derive(Debug, Default)]
pub struct CostCache {
    by_query: HashMap<(String, usize), CachedCost>,
}

impl CostCache {
    /// An empty cache.
    pub fn new() -> CostCache {
        CostCache::default()
    }

    /// Number of cached shapes.
    pub fn len(&self) -> usize {
        self.by_query.len()
    }

    /// Whether nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.by_query.is_empty()
    }
}

/// What one reconcile cycle decided and did.
#[derive(Debug, Clone)]
pub struct ReconcileReport {
    /// The workload the cycle derived from the profiler (may be empty).
    pub workload: Workload,
    /// Per-query decisions, aligned with the workload order.
    pub selection: Selection,
    /// The (partly estimated) costs the decision was based on.
    pub costs: Vec<QueryCost>,
    /// Lists written this cycle (only missing lists are written).
    pub lists_materialized: usize,
    /// Lists dropped this cycle.
    pub lists_dropped: usize,
    /// Registry bytes after the cycle (RPLs + ERPLs).
    pub bytes_used: u64,
    /// The maintenance generation after the cycle's last mutation.
    pub generation: u64,
    /// Every list mutation the cycle applied, with byte deltas (the
    /// `partition` field is 0; `reconcile_partitioned` rewrites it).
    pub deltas: Vec<ListDeltaRecord>,
    /// Total wall time queries were excluded by the write gate — summed
    /// over the cycle's list mutations, each of which gates individually.
    pub gate_pause: Duration,
    /// End-to-end wall time of the cycle.
    pub wall: Duration,
}

/// Runs one reconcile cycle: derive the workload from `profiler`, cost it
/// (reusing `cache`), solve the §4 selection under the budget, and apply
/// the delta incrementally — drops first, then the missing lists, each
/// mutation under the maintenance write gate, one WAL checkpoint at the
/// end. Safe to run concurrently with query serving; do not run two cycles
/// concurrently with each other (the self-manager never does).
pub fn reconcile_once(
    index: &TrexIndex,
    profiler: &WorkloadProfiler,
    opts: &SelfManageOptions,
    cache: &mut CostCache,
) -> Result<ReconcileReport> {
    let cycle_started = Instant::now();
    let counters = profiler.counters().clone();
    let telemetry = index.telemetry().clone();
    let workload = profiler.workload(opts.max_queries).unwrap_or_default();
    if workload.is_empty() {
        // Nothing observed yet: leave the lists alone rather than dropping
        // everything on startup.
        return Ok(ReconcileReport {
            workload,
            selection: Selection::none(0),
            costs: Vec::new(),
            lists_materialized: 0,
            lists_dropped: 0,
            bytes_used: index.rpls()?.total_bytes()? + index.erpls()?.total_bytes()?,
            generation: index.maintenance().generation(),
            deltas: Vec::new(),
            gate_pause: Duration::ZERO,
            wall: cycle_started.elapsed(),
        });
    }

    // Phase telemetry: one "reconcile" span for the cycle with one child
    // span per phase, plus the matching `maint.reconcile_*` histograms.
    let cycle_span = telemetry.journal.span("reconcile");
    let sw_cycle = telemetry.maint.start();

    let measure_span = telemetry.journal.span("reconcile:measure");
    let sw_measure = telemetry.maint.start();
    let engine = QueryEngine::new(index);
    let mut costs = Vec::with_capacity(workload.len());
    // Documents ever ingested (staged + folded): cached measurements from
    // an older epoch price lists that no longer match the corpus.
    let ingest_epoch = index.delta().folded_docs() + index.delta().doc_count() as u64;
    for wq in workload.queries() {
        let key = (wq.nexi.clone(), wq.k);
        let stale = cache
            .by_query
            .get(&key)
            .map(|c| c.ingest_epoch != ingest_epoch)
            .unwrap_or(true);
        if stale {
            let cached = measure_query(index, &engine, &wq.nexi, wq.k, opts.measure_runs)?;
            cache.by_query.insert(key.clone(), cached);
        }
        let cached = &cache.by_query[&key];
        costs.push(QueryCost {
            frequency: wq.frequency,
            measured_era: cached.t_e,
            delta_merge: cached.delta_merge,
            delta_ta: cached.delta_ta,
            erpl_lists: cached.erpl_lists.clone(),
            rpl_lists: cached.rpl_lists.clone(),
        });
    }

    telemetry.maint.reconcile_measure.observe(&sw_measure);
    drop(measure_span);

    let selection = match opts.method {
        SelectionMethod::Lp => solve_lp(&costs, opts.budget_bytes),
        SelectionMethod::Greedy => solve_greedy(&costs, opts.budget_bytes),
    };

    // The lists the selection wants on disk.
    let mut keep_rpl: HashSet<(TermId, Sid)> = HashSet::new();
    let mut keep_erpl: HashSet<(TermId, Sid)> = HashSet::new();
    for (choice, cost) in selection.choices.iter().zip(&costs) {
        match choice {
            Choice::None => {}
            Choice::Erpl => keep_erpl.extend(cost.erpl_lists.iter().map(|l| (l.term, l.sid))),
            Choice::Rpl => keep_rpl.extend(cost.rpl_lists.iter().map(|l| (l.term, l.sid))),
        }
    }

    // Apply the delta. Drops FIRST, so the registry never holds more than
    // max(old bytes, budget) at any instant and frees space for the adds.
    let apply_span = telemetry.journal.span("reconcile:apply");
    let sw_apply = telemetry.maint.start();
    let mut rpls = index.rpls()?;
    let mut erpls = index.erpls()?;
    let mut dropped = 0usize;
    let mut deltas: Vec<ListDeltaRecord> = Vec::new();
    let mut gate_pause = Duration::ZERO;
    // The journal wants the human-readable term, not the id; a missing
    // dictionary entry (never expected) degrades to "#id".
    let term_text = |term: TermId| {
        index
            .dictionary()
            .term(term)
            .map(str::to_string)
            .unwrap_or_else(|| format!("#{term}"))
    };
    for (term, sid, stats) in rpls.lists()? {
        if !keep_rpl.contains(&(term, sid)) {
            let gate_started = Instant::now();
            {
                let _gate = index.maintenance().enter_write();
                rpls.drop_list(term, sid)?;
            }
            gate_pause += gate_started.elapsed();
            dropped += 1;
            counters.lists_dropped.incr();
            counters.bytes_dropped.add(stats.bytes);
            deltas.push(ListDeltaRecord {
                partition: 0,
                term: term_text(term),
                sid: sid as u64,
                kind: "rpl".to_string(),
                action: "drop".to_string(),
                bytes: stats.bytes,
            });
        }
    }
    for (term, sid, stats) in erpls.lists()? {
        if !keep_erpl.contains(&(term, sid)) {
            let gate_started = Instant::now();
            {
                let _gate = index.maintenance().enter_write();
                erpls.drop_list(term, sid)?;
            }
            gate_pause += gate_started.elapsed();
            dropped += 1;
            counters.lists_dropped.incr();
            counters.bytes_dropped.add(stats.bytes);
            deltas.push(ListDeltaRecord {
                partition: 0,
                term: term_text(term),
                sid: sid as u64,
                kind: "erpl".to_string(),
                action: "drop".to_string(),
                bytes: stats.bytes,
            });
        }
    }

    // Add the missing lists, gated on the budget as a hard invariant: the
    // greedy/LP space accounting and our exact footprints should already
    // guarantee it, but the registry must never exceed the budget even if
    // an estimate drifts.
    let mut bytes_now = rpls.total_bytes()? + erpls.total_bytes()?;
    let mut written = 0usize;
    // One ERA pass per query that actually needs new lists, memoised for
    // queries sharing a shape within the cycle.
    let mut entries_memo: HashMap<usize, ScoredLists> = HashMap::new();
    for (i, (choice, cost)) in selection.choices.iter().zip(&costs).enumerate() {
        let (lists, is_rpl) = match choice {
            Choice::None => continue,
            Choice::Erpl => (&cost.erpl_lists, false),
            Choice::Rpl => (&cost.rpl_lists, true),
        };
        for list in lists {
            let present = if is_rpl {
                rpls.has_list(list.term, list.sid)?
            } else {
                erpls.has_list(list.term, list.sid)?
            };
            if present {
                continue;
            }
            if bytes_now + list.bytes > opts.budget_bytes {
                continue; // belt-and-braces; see above
            }
            if let std::collections::hash_map::Entry::Vacant(slot) = entries_memo.entry(i) {
                let key = (workload.queries()[i].nexi.clone(), workload.queries()[i].k);
                let cached = &cache.by_query[&key];
                slot.insert(collect_lists(index, &cached.sids, &cached.terms)?);
            }
            let entries = entries_memo[&i]
                .get(&(list.term, list.sid))
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            let gate_started = Instant::now();
            {
                let _gate = index.maintenance().enter_write();
                if is_rpl {
                    rpls.put_list(list.term, list.sid, entries)?;
                } else {
                    erpls.put_list(list.term, list.sid, entries)?;
                }
            }
            gate_pause += gate_started.elapsed();
            bytes_now += list.bytes;
            written += 1;
            counters.lists_materialized.incr();
            counters.bytes_materialized.add(list.bytes);
            deltas.push(ListDeltaRecord {
                partition: 0,
                term: term_text(list.term),
                sid: list.sid as u64,
                kind: if is_rpl { "rpl" } else { "erpl" }.to_string(),
                action: "add".to_string(),
                bytes: list.bytes,
            });
        }
    }

    telemetry.maint.reconcile_apply.observe(&sw_apply);
    drop(apply_span);

    // One checkpoint per cycle (cf. the offline advisor's one per query).
    if written > 0 || dropped > 0 {
        let _ckpt_span = telemetry.journal.span("reconcile:checkpoint");
        let sw_ckpt = telemetry.maint.start();
        index.store().flush()?;
        telemetry.maint.reconcile_checkpoint.observe(&sw_ckpt);
    }
    counters.cycles.incr();
    telemetry.maint.reconcile_cycle.observe(&sw_cycle);
    drop(cycle_span);

    let bytes_used = rpls.total_bytes()? + erpls.total_bytes()?;
    Ok(ReconcileReport {
        workload,
        selection,
        costs,
        lists_materialized: written,
        lists_dropped: dropped,
        bytes_used,
        generation: index.maintenance().generation(),
        deltas,
        gate_pause,
        wall: cycle_started.elapsed(),
    })
}

/// Converts a completed cycle's report into the structured journal entry
/// the advisor decision journal stores and `/v1/advisor/history` serves:
/// the workload snapshot with per-shape predicted-vs-measured costs, the
/// chosen/dropped lists with byte deltas, and the cycle's gate pause.
pub fn cycle_record(report: &ReconcileReport, budget_bytes: u64, cycle: u64) -> CycleRecord {
    let us = |secs: f64| (secs * 1e6).max(0.0);
    let shapes = report
        .workload
        .queries()
        .iter()
        .zip(&report.costs)
        .zip(&report.selection.choices)
        .map(|((wq, cost), choice)| {
            let (choice_str, bytes) = match choice {
                Choice::None => ("none", 0),
                Choice::Erpl => ("erpl", cost.s_erpl()),
                Choice::Rpl => ("rpl", cost.s_rpl()),
            };
            ShapeRecord {
                nexi: wq.nexi.clone(),
                k: wq.k as u64,
                frequency: wq.frequency,
                measured_era_us: us(cost.measured_era),
                // The deltas are savings against ERA; the absolute
                // predictions the solver implicitly compared are T_e − Δ.
                predicted_merge_us: us(cost.measured_era - cost.delta_merge),
                predicted_ta_us: us(cost.measured_era - cost.delta_ta),
                choice: choice_str.to_string(),
                bytes,
            }
        })
        .collect();
    CycleRecord {
        cycle,
        unix_ms: trex_obs::unix_ms(),
        generation: report.generation,
        budget_bytes,
        bytes_used: report.bytes_used,
        lists_materialized: report.lists_materialized as u64,
        lists_dropped: report.lists_dropped as u64,
        gate_pause_us: u64::try_from(report.gate_pause.as_micros()).unwrap_or(u64::MAX),
        wall_us: u64::try_from(report.wall.as_micros()).unwrap_or(u64::MAX),
        shapes,
        deltas: report.deltas.clone(),
        splits: Vec::new(),
    }
}

/// Optional observability attachments for the background managers: a
/// decision journal that receives one [`CycleRecord`] per completed cycle,
/// and a [`Health`] whose in-flight gauges bracket each cycle (so `/readyz`
/// can report reconciles/folds in progress). Absent hooks cost nothing.
#[derive(Clone, Default)]
pub struct ManagerHooks {
    /// Receives one record per completed reconcile cycle.
    pub journal: Option<Arc<AdvisorJournal>>,
    /// In-flight gauges bracketing cycles.
    pub health: Option<Arc<Health>>,
}

impl ManagerHooks {
    /// No attachments.
    pub fn none() -> ManagerHooks {
        ManagerHooks::default()
    }

    /// Attaches a decision journal.
    pub fn journal(mut self, journal: Arc<AdvisorJournal>) -> ManagerHooks {
        self.journal = Some(journal);
        self
    }

    /// Attaches a health surface.
    pub fn health(mut self, health: Arc<Health>) -> ManagerHooks {
        self.health = Some(health);
        self
    }
}

/// Measures `T_e` with a traced ERA run and derives the cost entry: exact
/// list footprints from a dry materialisation pass, `T_m`/`T_ta` estimated
/// as `unit_cost × predicted accesses` where `unit_cost` is ERA's measured
/// seconds per access.
fn measure_query(
    index: &TrexIndex,
    engine: &QueryEngine<'_>,
    nexi: &str,
    k: usize,
    runs: usize,
) -> Result<CachedCost> {
    let translation = engine.translate(nexi, Default::default())?;
    let (sids, terms) = (translation.sids.clone(), translation.terms.clone());

    // Exact footprints without writing: the scored entry lists a
    // materialisation would produce, priced with the tables' encoders.
    // Staged (unfolded) delta matches are appended before pricing: the
    // next fold will push them into these lists, so budget selection must
    // account for the bytes now, not discover them after the fold.
    let delta = index.delta();
    let ingest_epoch = delta.folded_docs() + delta.doc_count() as u64;
    let lists = collect_lists(index, &sids, &terms)?;
    let mut rpl_lists = Vec::new();
    let mut erpl_lists = Vec::new();
    let mut rpl_entry_counts = Vec::new();
    let mut erpl_entry_counts = Vec::new();
    for &term in &terms {
        for &sid in &sids {
            let mut entries = lists.get(&(term, sid)).cloned().unwrap_or_default();
            for m in delta.matches(&[sid], &[term]) {
                let score = index.score(m.tf[0], term, m.element.length)?;
                entries.push((m.element, score));
            }
            rpl_lists.push(ListId {
                term,
                sid,
                bytes: rpl_list_bytes(term, sid, &entries),
            });
            erpl_lists.push(ListId {
                term,
                sid,
                bytes: erpl_list_bytes(term, sid, &entries),
            });
            rpl_entry_counts.push(entries.len() as u64);
            erpl_entry_counts.push(entries.len() as u64);
        }
    }

    // Median-of-runs traced ERA measurement.
    let runs = runs.max(1);
    let mut times = Vec::with_capacity(runs);
    let mut era_accesses = 1u64;
    for _ in 0..runs {
        let start = Instant::now();
        let result = engine.evaluate_translated(
            translation.clone(),
            EvalOptions::new().k(k).strategy(Strategy::Era).trace(true),
        )?;
        times.push(start.elapsed());
        let trace = result.trace.expect("trace was requested");
        era_accesses = (trace.cost.sorted_accesses + trace.cost.random_accesses).max(1);
    }
    times.sort();
    let t_e = times[times.len() / 2].as_secs_f64();
    let unit = t_e / era_accesses as f64;

    let t_m = unit * predicted_merge_accesses(&erpl_entry_counts) as f64;
    let t_ta = unit * predicted_ta_accesses(&rpl_entry_counts, k);
    // TA is infeasible past its bitmask arity; a zero delta keeps the
    // solvers from ever choosing it.
    let delta_ta = if terms.len() > TA_MAX_TERMS {
        0.0
    } else {
        (t_e - t_ta).max(0.0)
    };

    Ok(CachedCost {
        t_e,
        delta_merge: (t_e - t_m).max(0.0),
        delta_ta,
        erpl_lists,
        rpl_lists,
        sids,
        terms,
        ingest_epoch,
    })
}

/// The per-cycle status line the background manager prints when
/// `SelfManageOptions::log_cycles` is on: what the cycle moved, where the
/// serving latency distribution sits (p50/p99 end-to-end), and how often
/// `Auto` had to fall back to ERA for lack of lists.
fn log_cycle(index: &TrexIndex, profiler: &WorkloadProfiler, report: &ReconcileReport) {
    let q = index.telemetry().query.query.snapshot();
    let sm = profiler.counters().snapshot();
    let rate = if sm.queries_profiled > 0 {
        100.0 * sm.era_fallbacks as f64 / sm.queries_profiled as f64
    } else {
        0.0
    };
    eprintln!(
        "self-manage cycle {}: +{}/-{} lists, {} bytes used; query p50 {:.3} ms p99 {:.3} ms \
         over {} queries, era fallback rate {:.1}% ({}/{})",
        sm.cycles,
        report.lists_materialized,
        report.lists_dropped,
        report.bytes_used,
        q.percentile(0.50) as f64 / 1e6,
        q.percentile(0.99) as f64 / 1e6,
        q.count(),
        rate,
        sm.era_fallbacks,
        sm.queries_profiled,
    );
}

#[derive(Debug, Default)]
struct ManagerStatus {
    last: Option<ReconcileReport>,
    last_error: Option<String>,
}

/// A handle to the background self-management thread. Stops (and joins) on
/// [`SelfManager::stop`] or drop.
pub struct SelfManager {
    stop: Arc<AtomicBool>,
    status: Arc<Mutex<ManagerStatus>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl SelfManager {
    /// Starts the background reconcile loop: every `opts.interval`, one
    /// [`reconcile_once`] against the profiler's current workload.
    ///
    /// Touches the RPL/ERPL tables once up front so they exist before any
    /// concurrent serving starts (table creation is a structural store
    /// write that must not race readers).
    pub fn start(
        index: Arc<TrexIndex>,
        profiler: Arc<WorkloadProfiler>,
        opts: SelfManageOptions,
    ) -> Result<SelfManager> {
        SelfManager::start_with(index, profiler, opts, ManagerHooks::none())
    }

    /// [`SelfManager::start`] with observability hooks: each completed
    /// cycle is recorded into `hooks.journal`, and `hooks.health`'s
    /// `reconciles_in_flight` gauge brackets every cycle.
    pub fn start_with(
        index: Arc<TrexIndex>,
        profiler: Arc<WorkloadProfiler>,
        opts: SelfManageOptions,
        hooks: ManagerHooks,
    ) -> Result<SelfManager> {
        index.rpls()?;
        index.erpls()?;
        let stop = Arc::new(AtomicBool::new(false));
        let status = Arc::new(Mutex::new(ManagerStatus::default()));
        let handle = {
            let stop = stop.clone();
            let status = status.clone();
            std::thread::Builder::new()
                .name("trex-selfmanage".into())
                .spawn(move || {
                    let mut cache = CostCache::new();
                    let mut cycle = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        // Sleep in slices so stop() returns promptly even
                        // with long intervals.
                        let wake = Instant::now() + opts.interval;
                        while Instant::now() < wake {
                            if stop.load(Ordering::Relaxed) {
                                return;
                            }
                            std::thread::sleep(Duration::from_millis(10).min(opts.interval));
                        }
                        cycle += 1;
                        let _busy = hooks
                            .health
                            .as_ref()
                            .map(|h| InFlight::enter(&h.reconciles_in_flight));
                        match reconcile_once(&index, &profiler, &opts, &mut cache) {
                            Ok(report) => {
                                if opts.log_cycles {
                                    log_cycle(&index, &profiler, &report);
                                }
                                if let Some(journal) = &hooks.journal {
                                    journal.record(cycle_record(&report, opts.budget_bytes, cycle));
                                }
                                let mut s = status.lock();
                                s.last = Some(report);
                                s.last_error = None;
                            }
                            Err(e) => status.lock().last_error = Some(e.to_string()),
                        }
                    }
                })
                .map_err(|e| {
                    TrexError::Unsupported(format!("cannot spawn self-manage thread: {e}"))
                })?
        };
        Ok(SelfManager {
            stop,
            status,
            handle: Some(handle),
        })
    }

    /// The most recent cycle's report, if any cycle has completed.
    pub fn last_report(&self) -> Option<ReconcileReport> {
        self.status.lock().last.clone()
    }

    /// The most recent cycle error, if the last cycle failed.
    pub fn last_error(&self) -> Option<String> {
        self.status.lock().last_error.clone()
    }

    /// Stops the background thread and waits for it to finish.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for SelfManager {
    fn drop(&mut self) {
        self.shutdown();
    }
}
