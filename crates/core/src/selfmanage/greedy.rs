//! The greedy 2-approximation of paper §4.2.
//!
//! "In the greedy approach, we iteratively add indexes. Each time we add the
//! index that seems to provide the largest improvement, i.e., the highest
//! ratio of the reduction in time to the addition of space." The marginal
//! space of supporting query `Q_i` with Merge is `|I_m|` — the bytes of the
//! ERPL lists the query needs that are *not already chosen* (sharing between
//! queries is therefore exploited, unlike the LP's additive model).
//!
//! As in the classic knapsack analysis, plain ratio-greedy alone is not a
//! 2-approximation; the guarantee (Theorem 4.2) requires comparing the
//! greedy solution against the best *single* supportable query and keeping
//! the better of the two, which this implementation does.

use std::collections::HashSet;

use trex_summary::Sid;
use trex_text::TermId;

use super::cost::{Choice, QueryCost, Selection};

/// Runs the greedy algorithm under the shared-space model; returns the
/// selection (at most one method per query, total shared space ≤ `budget`).
pub fn solve_greedy(costs: &[QueryCost], budget: u64) -> Selection {
    let l = costs.len();
    let mut selection = Selection::none(l);
    let mut chosen_erpl: HashSet<(TermId, Sid)> = HashSet::new();
    let mut chosen_rpl: HashSet<(TermId, Sid)> = HashSet::new();
    let mut used = 0u64;

    loop {
        // Find the unsupported (query, method) with the highest gain-cost
        // ratio whose marginal lists fit the remaining budget.
        let mut best: Option<(f64, usize, Choice, u64)> = None;
        for (i, q) in costs.iter().enumerate() {
            if selection.choices[i] != Choice::None {
                continue;
            }
            for (choice, gain, lists, chosen) in [
                (
                    Choice::Erpl,
                    q.frequency * q.delta_merge,
                    &q.erpl_lists,
                    &chosen_erpl,
                ),
                (
                    Choice::Rpl,
                    q.frequency * q.delta_ta,
                    &q.rpl_lists,
                    &chosen_rpl,
                ),
            ] {
                if gain <= 0.0 {
                    continue;
                }
                let marginal: u64 = lists
                    .iter()
                    .filter(|lst| !chosen.contains(&(lst.term, lst.sid)))
                    .map(|lst| lst.bytes)
                    .sum();
                if used + marginal > budget {
                    continue; // gain-cost ratio defined as 0 when it overflows d
                }
                // Free support (everything shared) gets an infinite ratio.
                let ratio = if marginal == 0 {
                    f64::INFINITY
                } else {
                    gain / marginal as f64
                };
                if best.is_none_or(|(r, ..)| ratio > r) {
                    best = Some((ratio, i, choice, marginal));
                }
            }
        }

        let Some((_, i, choice, marginal)) = best else {
            break; // all supported, or every remaining ratio is zero
        };
        selection.choices[i] = choice;
        used += marginal;
        let (lists, chosen) = match choice {
            Choice::Erpl => (&costs[i].erpl_lists, &mut chosen_erpl),
            Choice::Rpl => (&costs[i].rpl_lists, &mut chosen_rpl),
            Choice::None => unreachable!(),
        };
        for lst in lists {
            chosen.insert((lst.term, lst.sid));
        }
    }

    // 2-approximation safeguard: compare with the best single-query choice.
    let mut best_single = Selection::none(l);
    let mut best_single_saving = 0.0f64;
    for (i, q) in costs.iter().enumerate() {
        for (choice, gain, space) in [
            (Choice::Erpl, q.frequency * q.delta_merge, q.s_erpl()),
            (Choice::Rpl, q.frequency * q.delta_ta, q.s_rpl()),
        ] {
            if gain > best_single_saving && space <= budget {
                best_single = Selection::none(l);
                best_single.choices[i] = choice;
                best_single_saving = gain;
            }
        }
    }

    if best_single_saving > selection.saving(costs) {
        best_single
    } else {
        selection
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selfmanage::cost::ListId;
    use crate::selfmanage::lp::solve_lp;

    fn list(term: TermId, sid: Sid, bytes: u64) -> ListId {
        ListId { term, sid, bytes }
    }

    fn cost(f: f64, dm: f64, dta: f64, erpl: Vec<ListId>, rpl: Vec<ListId>) -> QueryCost {
        QueryCost {
            frequency: f,
            measured_era: dm.max(dta),
            delta_merge: dm,
            delta_ta: dta,
            erpl_lists: erpl,
            rpl_lists: rpl,
        }
    }

    #[test]
    fn supports_everything_when_budget_allows() {
        let costs = vec![
            cost(0.5, 10.0, 2.0, vec![list(1, 1, 100)], vec![list(1, 1, 90)]),
            cost(0.5, 1.0, 8.0, vec![list(2, 1, 100)], vec![list(2, 1, 90)]),
        ];
        let sel = solve_greedy(&costs, 10_000);
        assert_eq!(sel.choices, vec![Choice::Erpl, Choice::Rpl]);
    }

    #[test]
    fn exploits_shared_lists() {
        // Two queries share one large ERPL; supporting the second is nearly
        // free once the first is chosen.
        let shared = list(7, 3, 900);
        let costs = vec![
            cost(0.5, 10.0, 0.0, vec![shared, list(1, 1, 50)], vec![]),
            cost(0.5, 10.0, 0.0, vec![shared, list(2, 1, 50)], vec![]),
        ];
        // Budget fits shared + both small lists, but not 2× shared.
        let sel = solve_greedy(&costs, 1000);
        assert_eq!(sel.choices, vec![Choice::Erpl, Choice::Erpl]);
        assert_eq!(sel.space_shared(&costs), 1000);
    }

    #[test]
    fn zero_budget_selects_nothing() {
        let costs = vec![cost(
            1.0,
            5.0,
            5.0,
            vec![list(1, 1, 10)],
            vec![list(1, 1, 10)],
        )];
        let sel = solve_greedy(&costs, 0);
        assert_eq!(sel.choices, vec![Choice::None]);
    }

    #[test]
    fn single_big_item_safeguard_kicks_in() {
        // Ratio-greedy would take the small high-ratio item and then cannot
        // fit the big one; the safeguard keeps the better single choice.
        let costs = vec![
            cost(0.5, 1.0, 0.0, vec![list(1, 1, 10)], vec![]), // gain .5, ratio .05
            cost(0.5, 100.0, 0.0, vec![list(2, 1, 995)], vec![]), // gain 50, ratio .0503
        ];
        let sel = solve_greedy(&costs, 1000);
        // Both fit? 10 + 995 > 1000, so only one can be chosen; it must be
        // the big one (saving 50 ≫ 0.5).
        assert_eq!(sel.choices, vec![Choice::None, Choice::Erpl]);
    }

    /// Theorem 4.2: the greedy saving is at least half the optimum. We use
    /// the LP optimum (additive space) as the reference; under the shared
    /// model the greedy can only do better, so the bound still holds.
    #[test]
    fn theorem_4_2_greedy_is_2_approximation() {
        let mut seed = 0xdeadbeefcafef00du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..50 {
            let l = 2 + (next() % 7) as usize;
            let costs: Vec<QueryCost> = (0..l)
                .map(|i| {
                    cost(
                        1.0 / l as f64,
                        (next() % 100) as f64,
                        (next() % 100) as f64,
                        vec![list(i as u32, 0, next() % 300 + 1)],
                        vec![list(i as u32, 1, next() % 300 + 1)],
                    )
                })
                .collect();
            let budget = next() % 800;
            let greedy = solve_greedy(&costs, budget);
            let optimal = solve_lp(&costs, budget);
            let g = greedy.saving(&costs);
            let o = optimal.saving(&costs);
            assert!(
                o <= 2.0 * g + 1e-9,
                "round {round}: optimal {o} > 2 × greedy {g}"
            );
            assert!(greedy.space_shared(&costs) <= budget);
        }
    }
}
