//! The abstract index-selection problem (paper §4).
//!
//! For each workload query `Q_i` the advisor knows:
//!
//! * `Δm(Q_i) = max(T_e − T_m, 0)` — the saving of Merge over ERA;
//! * `Δta(Q_i) = max(T_e − T_ta, 0)` — the saving of TA over ERA;
//! * the (term, sid) lists Merge/TA need, with their sizes
//!   (`S_ERPL(Q_i)`, `S_RPL(Q_i)`).
//!
//! A *selection* assigns each query one of {nothing, ERPLs, RPLs}
//! (constraint (1) of §4.1: `x_i1 + x_i2 ≤ 1`). The objective is the
//! frequency-weighted saving; the constraint is the disk budget `d`.

use trex_obs::{json_escape, json_field, ToJson};
use trex_summary::Sid;
use trex_text::TermId;

/// Measured-over-predicted tolerance for the TA access prediction.
///
/// [`predicted_ta_accesses`] uses the Fagin-style expected stopping depth
/// `N^{(n-1)/n} · k^{1/n}` per list, which assumes independent,
/// uniformly-shuffled score orders. Real lists are correlated (the same
/// elements score well everywhere), early-stopping checks run every
/// `check_interval` accesses, and short lists bottom out — so the measured
/// count is only expected to match within this factor, in either direction.
/// Merge's prediction is exact (every entry of every list is read once), so
/// it validates with factor 1.
pub const TA_PREDICTION_FACTOR: f64 = 32.0;

/// Predicted Merge sorted accesses (§4): Merge reads every entry of every
/// required ERPL exactly once, so the prediction is the entry total.
pub fn predicted_merge_accesses(list_entries: &[u64]) -> u64 {
    list_entries.iter().sum()
}

/// Predicted TA sorted accesses for top-`k` over the given score-ordered
/// lists: per list, the Fagin expected stopping depth
/// `min(N_i, N_i^{(n-1)/n} · k^{1/n})` where `n` is the number of lists,
/// summed over the lists. With one list this degenerates to `min(N, k)` —
/// TA stops as soon as the heap holds k answers and the threshold drops.
pub fn predicted_ta_accesses(list_entries: &[u64], k: usize) -> f64 {
    let n = list_entries.len();
    if n == 0 {
        return 0.0;
    }
    let k = k.max(1) as f64;
    let exp = (n as f64 - 1.0) / n as f64;
    list_entries
        .iter()
        .map(|&entries| {
            let n_i = entries as f64;
            let depth = n_i.powf(exp) * k.powf(1.0 / n as f64);
            depth.min(n_i)
        })
        .sum()
}

/// Predicted Merge **block reads** under the block-compressed layout: Merge
/// scans every list front to back, so every block of every required ERPL is
/// fetched exactly once. `list_blocks` are the registry-reported per-list
/// block counts; the prediction is exact, like
/// [`predicted_merge_accesses`].
pub fn predicted_merge_block_reads(list_blocks: &[u64]) -> u64 {
    list_blocks.iter().sum()
}

/// Predicted TA **block reads**: each list is consumed to its Fagin
/// stopping depth, and a list whose `N_i` entries span `B_i` blocks packs
/// `N_i / B_i` entries per block, so a depth of `d_i` entries touches
/// `ceil(d_i · B_i / N_i)` blocks (at least one per non-empty list — the
/// iterator primes each stream's head). Validated with
/// [`TA_PREDICTION_FACTOR`], which the per-entry depth estimate already
/// needs.
pub fn predicted_ta_block_reads(lists: &[(u64, u64)], k: usize) -> f64 {
    let entries: Vec<u64> = lists.iter().map(|&(e, _)| e).collect();
    let n = entries.len();
    if n == 0 {
        return 0.0;
    }
    let k = k.max(1) as f64;
    let exp = (n as f64 - 1.0) / n as f64;
    lists
        .iter()
        .map(|&(entries, blocks)| {
            if entries == 0 || blocks == 0 {
                return 0.0;
            }
            let n_i = entries as f64;
            let depth = (n_i.powf(exp) * k.powf(1.0 / n as f64)).min(n_i);
            (depth * blocks as f64 / n_i).ceil().max(1.0)
        })
        .sum()
}

/// One measured-versus-predicted comparison in §4 cost-model units.
#[derive(Debug, Clone, PartialEq)]
pub struct CostValidation {
    /// Which strategy was measured (`"ta"`, `"merge"`).
    pub strategy: String,
    /// Sorted + random accesses the traced run actually performed.
    pub measured: u64,
    /// The cost model's predicted access count.
    pub predicted: f64,
}

impl CostValidation {
    /// A validation record for `strategy`.
    pub fn new(strategy: impl Into<String>, measured: u64, predicted: f64) -> CostValidation {
        CostValidation {
            strategy: strategy.into(),
            measured,
            predicted,
        }
    }

    /// `measured / predicted` (predicted floored at one access to keep the
    /// ratio finite for degenerate empty-list queries).
    pub fn ratio(&self) -> f64 {
        self.measured as f64 / self.predicted.max(1.0)
    }

    /// Whether the ratio is finite and within `factor` of 1 in either
    /// direction (use [`TA_PREDICTION_FACTOR`] for TA).
    pub fn within_factor(&self, factor: f64) -> bool {
        let r = self.ratio();
        r.is_finite() && r <= factor && r >= 1.0 / factor
    }
}

impl ToJson for CostValidation {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"strategy\":\"");
        out.push_str(&json_escape(&self.strategy));
        out.push_str("\",");
        json_field(out, "measured", self.measured);
        out.push(',');
        json_field(out, "predicted", self.predicted);
        out.push(',');
        json_field(out, "ratio", self.ratio());
        out.push('}');
    }
}

/// One (term, sid) list with its disk footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ListId {
    /// The term.
    pub term: TermId,
    /// The sid.
    pub sid: Sid,
    /// Bytes the materialised list occupies.
    pub bytes: u64,
}

/// Profiled costs of one workload query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryCost {
    /// Workload frequency `f_i`.
    pub frequency: f64,
    /// Measured `T_e(Q_i)` in seconds — the ERA baseline the deltas were
    /// computed against. Not used by the solvers; carried for the advisor
    /// decision journal so a cycle record can show predicted absolute costs
    /// (`T_e − Δ`) rather than only savings.
    pub measured_era: f64,
    /// `Δm(Q_i)` in seconds.
    pub delta_merge: f64,
    /// `Δta(Q_i)` in seconds.
    pub delta_ta: f64,
    /// ERPL lists Merge needs (`S_ERPL(Q_i)` = Σ bytes).
    pub erpl_lists: Vec<ListId>,
    /// RPL lists TA needs (`S_RPL(Q_i)` = Σ bytes).
    pub rpl_lists: Vec<ListId>,
}

impl QueryCost {
    /// `S_ERPL(Q_i)`.
    pub fn s_erpl(&self) -> u64 {
        self.erpl_lists.iter().map(|l| l.bytes).sum()
    }

    /// `S_RPL(Q_i)`.
    pub fn s_rpl(&self) -> u64 {
        self.rpl_lists.iter().map(|l| l.bytes).sum()
    }
}

/// Per-query decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Choice {
    /// Store nothing; the query runs with ERA.
    #[default]
    None,
    /// Store the query's ERPLs; it runs with Merge.
    Erpl,
    /// Store the query's RPLs; it runs with TA.
    Rpl,
}

/// A solution to the selection problem: one choice per query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    /// `choices[i]` is the decision for query i.
    pub choices: Vec<Choice>,
}

impl Selection {
    /// The all-ERA selection.
    pub fn none(l: usize) -> Selection {
        Selection {
            choices: vec![Choice::None; l],
        }
    }

    /// The objective: `Σ f_i · Δ_i` for the chosen methods.
    pub fn saving(&self, costs: &[QueryCost]) -> f64 {
        self.choices
            .iter()
            .zip(costs)
            .map(|(c, q)| match c {
                Choice::None => 0.0,
                Choice::Erpl => q.frequency * q.delta_merge,
                Choice::Rpl => q.frequency * q.delta_ta,
            })
            .sum()
    }

    /// Disk space of the selection under the paper's LP model (§4.1):
    /// additive per query, no sharing between queries.
    pub fn space_additive(&self, costs: &[QueryCost]) -> u64 {
        self.choices
            .iter()
            .zip(costs)
            .map(|(c, q)| match c {
                Choice::None => 0,
                Choice::Erpl => q.s_erpl(),
                Choice::Rpl => q.s_rpl(),
            })
            .sum()
    }

    /// Disk space counting each distinct (term, sid, kind) list once —
    /// queries sharing lists share the space (the greedy model of §4.2,
    /// where each step adds only the *missing* lists `I_m` / `I_ta`).
    pub fn space_shared(&self, costs: &[QueryCost]) -> u64 {
        use std::collections::HashSet;
        let mut erpl: HashSet<(TermId, Sid)> = HashSet::new();
        let mut rpl: HashSet<(TermId, Sid)> = HashSet::new();
        let mut total = 0u64;
        for (c, q) in self.choices.iter().zip(costs) {
            match c {
                Choice::None => {}
                Choice::Erpl => {
                    for l in &q.erpl_lists {
                        if erpl.insert((l.term, l.sid)) {
                            total += l.bytes;
                        }
                    }
                }
                Choice::Rpl => {
                    for l in &q.rpl_lists {
                        if rpl.insert((l.term, l.sid)) {
                            total += l.bytes;
                        }
                    }
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(term: TermId, sid: Sid, bytes: u64) -> ListId {
        ListId { term, sid, bytes }
    }

    fn cost(f: f64, dm: f64, dta: f64, erpl: Vec<ListId>, rpl: Vec<ListId>) -> QueryCost {
        QueryCost {
            frequency: f,
            measured_era: dm.max(dta),
            delta_merge: dm,
            delta_ta: dta,
            erpl_lists: erpl,
            rpl_lists: rpl,
        }
    }

    #[test]
    fn saving_weights_by_frequency() {
        let costs = vec![
            cost(0.25, 10.0, 4.0, vec![list(1, 1, 100)], vec![list(1, 1, 80)]),
            cost(0.75, 2.0, 6.0, vec![list(2, 1, 50)], vec![list(2, 1, 40)]),
        ];
        let sel = Selection {
            choices: vec![Choice::Erpl, Choice::Rpl],
        };
        assert!((sel.saving(&costs) - (0.25 * 10.0 + 0.75 * 6.0)).abs() < 1e-9);
        assert_eq!(sel.space_additive(&costs), 100 + 40);
    }

    #[test]
    fn shared_space_counts_lists_once() {
        let shared = list(7, 3, 500);
        let costs = vec![
            cost(0.5, 5.0, 0.0, vec![shared, list(1, 1, 10)], vec![]),
            cost(0.5, 5.0, 0.0, vec![shared, list(2, 1, 20)], vec![]),
        ];
        let sel = Selection {
            choices: vec![Choice::Erpl, Choice::Erpl],
        };
        assert_eq!(sel.space_additive(&costs), 510 + 520);
        assert_eq!(sel.space_shared(&costs), 500 + 10 + 20);
    }

    #[test]
    fn merge_prediction_is_the_entry_total() {
        assert_eq!(predicted_merge_accesses(&[10, 20, 5]), 35);
        assert_eq!(predicted_merge_accesses(&[]), 0);
    }

    #[test]
    fn ta_prediction_caps_at_list_length() {
        // One list: min(N, k).
        assert!((predicted_ta_accesses(&[100], 7) - 7.0).abs() < 1e-9);
        // Huge k saturates at the full lists.
        assert!((predicted_ta_accesses(&[10, 10], 1_000_000) - 20.0).abs() < 1e-9);
        // Two lists of N=100, k=1: 2 · sqrt(100) = 20.
        assert!((predicted_ta_accesses(&[100, 100], 1) - 20.0).abs() < 1e-9);
        assert_eq!(predicted_ta_accesses(&[], 10), 0.0);
    }

    #[test]
    fn merge_block_prediction_is_the_block_total() {
        assert_eq!(predicted_merge_block_reads(&[3, 1, 7]), 11);
        assert_eq!(predicted_merge_block_reads(&[]), 0);
    }

    #[test]
    fn ta_block_prediction_scales_depth_by_block_density() {
        // One list of 100 entries in 1 block, k=7: depth 7 touches 1 block.
        assert!((predicted_ta_block_reads(&[(100, 1)], 7) - 1.0).abs() < 1e-9);
        // 256 entries over 2 blocks, k large enough to read everything.
        assert!((predicted_ta_block_reads(&[(256, 2)], 1_000_000) - 2.0).abs() < 1e-9);
        // Depth never predicts zero blocks for a non-empty list.
        assert!(predicted_ta_block_reads(&[(1000, 8)], 1) >= 1.0);
        // Empty input and empty lists are free.
        assert_eq!(predicted_ta_block_reads(&[], 10), 0.0);
        assert_eq!(predicted_ta_block_reads(&[(0, 0)], 10), 0.0);
    }

    #[test]
    fn validation_ratio_and_factor() {
        let v = CostValidation::new("ta", 40, 20.0);
        assert!((v.ratio() - 2.0).abs() < 1e-9);
        assert!(v.within_factor(2.0));
        assert!(!v.within_factor(1.5));
        let exact = CostValidation::new("merge", 35, 35.0);
        assert!(exact.within_factor(1.0 + 1e-9));
        let json = v.to_json();
        assert!(json.contains("\"strategy\":\"ta\""));
        assert!(json.contains("\"measured\":40"));
    }

    #[test]
    fn none_selection_is_free() {
        let costs = vec![cost(1.0, 5.0, 5.0, vec![list(1, 1, 10)], vec![])];
        let sel = Selection::none(1);
        assert_eq!(sel.saving(&costs), 0.0);
        assert_eq!(sel.space_additive(&costs), 0);
        assert_eq!(sel.space_shared(&costs), 0);
    }
}
