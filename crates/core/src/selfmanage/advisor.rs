//! The self-managing advisor: profiles a workload, chooses which redundant
//! indexes to keep within the disk budget (LP or greedy), and reconciles the
//! store to the chosen set.
//!
//! "The actual time savings and disk space for typical queries should be
//! measured experimentally and assigned in the formulas" (paper §4.1) — the
//! advisor does exactly that: it materialises each workload query's lists,
//! measures `T_e`, `T_m`, `T_ta`, records `S_ERPL` / `S_RPL` from the list
//! registries, runs the selection algorithm, and finally drops every list
//! the selection did not keep.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use trex_index::TrexIndex;
use trex_summary::Sid;
use trex_text::TermId;

use crate::engine::{EvalOptions, QueryEngine, Strategy};
use crate::materialize::{materialize_batch, ListKind};
use crate::Result;

use super::cost::{Choice, ListId, QueryCost, Selection};
use super::greedy::solve_greedy;
use super::lp::solve_lp;
use super::workload::Workload;

/// Which selection algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionMethod {
    /// Exact boolean LP (branch-and-bound), §4.1. Small workloads only.
    Lp,
    /// Greedy 2-approximation, §4.2.
    #[default]
    Greedy,
}

/// Advisor options.
#[derive(Debug, Clone, Copy)]
pub struct AdvisorOptions {
    /// Disk budget `d` in bytes for the redundant lists.
    pub budget_bytes: u64,
    /// Selection algorithm.
    pub method: SelectionMethod,
    /// Timing runs per measurement; the median is used (the paper ran five
    /// and averaged the middle three).
    pub measure_runs: usize,
}

impl AdvisorOptions {
    /// Defaults: greedy, three timing runs.
    pub fn new(budget_bytes: u64) -> AdvisorOptions {
        AdvisorOptions {
            budget_bytes,
            method: SelectionMethod::Greedy,
            measure_runs: 3,
        }
    }
}

/// What the advisor did.
#[derive(Debug, Clone)]
pub struct AdvisorReport {
    /// Per-query decisions, aligned with the workload order.
    pub selection: Selection,
    /// The measured costs the decision was based on.
    pub costs: Vec<QueryCost>,
    /// Bytes of redundant lists kept on disk (shared-space accounting).
    pub bytes_used: u64,
    /// Expected per-workload-execution saving in seconds (`Σ f_i Δ_i`).
    pub expected_saving: f64,
    /// Lists dropped during reconciliation.
    pub lists_dropped: usize,
}

/// The self-managing advisor.
pub struct Advisor<'a> {
    index: &'a TrexIndex,
}

impl<'a> Advisor<'a> {
    /// An advisor over `index`.
    pub fn new(index: &'a TrexIndex) -> Advisor<'a> {
        Advisor { index }
    }

    /// Profiles every workload query: measures `T_e`, `T_m`, `T_ta` and the
    /// list sizes. Leaves every query's RPLs and ERPLs materialised (the
    /// reconciliation in [`Advisor::apply`] trims them afterwards), with one
    /// WAL checkpoint for the whole pass rather than one per query.
    pub fn profile(&self, workload: &Workload, runs: usize) -> Result<Vec<QueryCost>> {
        let engine = QueryEngine::new(self.index);
        let mut costs = Vec::with_capacity(workload.len());
        for wq in workload.queries() {
            let translation = engine.translate(&wq.nexi, Default::default())?;
            let (sids, terms) = (translation.sids.clone(), translation.terms.clone());

            // Make both redundant indexes available for this query; the
            // batch form defers the durability flush to the end of the pass.
            materialize_batch(self.index, &sids, &terms, ListKind::Both)?;

            let t_e = self.measure(runs, || {
                engine.evaluate_translated(
                    translation.clone(),
                    EvalOptions::new().k(wq.k).strategy(Strategy::Era),
                )
            })?;
            let t_m = self.measure(runs, || {
                engine.evaluate_translated(
                    translation.clone(),
                    EvalOptions::new().k(wq.k).strategy(Strategy::Merge),
                )
            })?;
            let t_ta = self.measure(runs, || {
                engine.evaluate_translated(
                    translation.clone(),
                    EvalOptions::new().k(wq.k).strategy(Strategy::Ta),
                )
            })?;

            let rpls = self.index.rpls()?;
            let erpls = self.index.erpls()?;
            let mut rpl_lists = Vec::new();
            let mut erpl_lists = Vec::new();
            for &term in &terms {
                for &sid in &sids {
                    if let Some(s) = rpls.list_stats(term, sid)? {
                        rpl_lists.push(ListId {
                            term,
                            sid,
                            bytes: s.bytes,
                        });
                    }
                    if let Some(s) = erpls.list_stats(term, sid)? {
                        erpl_lists.push(ListId {
                            term,
                            sid,
                            bytes: s.bytes,
                        });
                    }
                }
            }

            costs.push(QueryCost {
                frequency: wq.frequency,
                measured_era: t_e.as_secs_f64(),
                delta_merge: (t_e.as_secs_f64() - t_m.as_secs_f64()).max(0.0),
                delta_ta: (t_e.as_secs_f64() - t_ta.as_secs_f64()).max(0.0),
                erpl_lists,
                rpl_lists,
            });
        }
        self.index.store().flush()?;
        Ok(costs)
    }

    fn measure<R>(&self, runs: usize, mut f: impl FnMut() -> Result<R>) -> Result<Duration> {
        let runs = runs.max(1);
        let mut times = Vec::with_capacity(runs);
        for _ in 0..runs {
            let start = Instant::now();
            f()?;
            times.push(start.elapsed());
        }
        times.sort();
        Ok(times[times.len() / 2])
    }

    /// Profiles, selects and reconciles: after this, exactly the lists the
    /// selection needs remain materialised.
    pub fn apply(&self, workload: &Workload, opts: AdvisorOptions) -> Result<AdvisorReport> {
        let costs = self.profile(workload, opts.measure_runs)?;
        let selection = match opts.method {
            SelectionMethod::Lp => solve_lp(&costs, opts.budget_bytes),
            SelectionMethod::Greedy => solve_greedy(&costs, opts.budget_bytes),
        };

        // Reconcile the store: keep exactly the selected lists.
        let mut keep_rpl: HashSet<(TermId, Sid)> = HashSet::new();
        let mut keep_erpl: HashSet<(TermId, Sid)> = HashSet::new();
        for (choice, cost) in selection.choices.iter().zip(&costs) {
            match choice {
                Choice::None => {}
                Choice::Erpl => keep_erpl.extend(cost.erpl_lists.iter().map(|l| (l.term, l.sid))),
                Choice::Rpl => keep_rpl.extend(cost.rpl_lists.iter().map(|l| (l.term, l.sid))),
            }
        }

        let mut dropped = 0usize;
        let mut rpls = self.index.rpls()?;
        for (term, sid, _) in rpls.lists()? {
            if !keep_rpl.contains(&(term, sid)) {
                let _gate = self.index.maintenance().enter_write();
                rpls.drop_list(term, sid)?;
                dropped += 1;
            }
        }
        let mut erpls = self.index.erpls()?;
        for (term, sid, _) in erpls.lists()? {
            if !keep_erpl.contains(&(term, sid)) {
                let _gate = self.index.maintenance().enter_write();
                erpls.drop_list(term, sid)?;
                dropped += 1;
            }
        }
        self.index.store().flush()?;

        let bytes_used = rpls.total_bytes()? + erpls.total_bytes()?;
        let expected_saving = selection.saving(&costs);
        Ok(AdvisorReport {
            selection,
            costs,
            bytes_used,
            expected_saving,
            lists_dropped: dropped,
        })
    }
}
