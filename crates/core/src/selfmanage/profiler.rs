//! Online workload profiling: a lock-cheap frequency sketch over the live
//! query stream.
//!
//! The paper's advisor takes the workload (Definition 4.1) as an input; a
//! *self-managing* index has to derive it from the queries it actually
//! serves. [`WorkloadProfiler`] sits on the engine's evaluation path
//! ([`QueryEngine::with_profiler`]) and aggregates queries by their
//! *translated shape* — the (sids, terms, k) triple — since two NEXI
//! spellings that translate identically need the same redundant lists.
//!
//! Recording is designed to be cheap enough for the hot path: one atomic
//! tick plus one short critical section on one of [`ProfilerConfig::shards`]
//! sharded hash maps, so concurrent query threads rarely contend.
//!
//! Recency weighting uses exponential decay on a *logical* clock (the
//! profiler's own query counter): each entry's weight halves every
//! [`ProfilerConfig::half_life`] recorded queries. A shifted workload
//! therefore overtakes the old one after a few half-lives, no wall clock
//! involved — and with `half_life: None` the sketch degenerates to exact
//! counts, which makes the derived workload reproducible for tests.
//!
//! [`QueryEngine::with_profiler`]: crate::engine::QueryEngine::with_profiler

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use trex_obs::SelfManageCounters;
use trex_summary::Sid;
use trex_text::TermId;

use super::workload::{Workload, WorkloadQuery};

/// Tuning knobs for the profiler.
#[derive(Debug, Clone, Copy)]
pub struct ProfilerConfig {
    /// Number of independently locked sketch shards (contention control).
    pub shards: usize,
    /// Half-life of an entry's weight, in recorded queries; `None` disables
    /// decay (pure counts, deterministic).
    pub half_life: Option<u64>,
    /// Hard cap on distinct shapes kept per shard. When an insert would
    /// exceed it, decayed-out entries are pruned and, if that is not
    /// enough, the lightest entries are evicted — so a flood of
    /// never-repeated queries cannot grow the sketch without bound.
    pub max_entries_per_shard: usize,
}

impl Default for ProfilerConfig {
    fn default() -> ProfilerConfig {
        ProfilerConfig {
            shards: 16,
            // A few hundred queries: old workloads fade within a handful of
            // reconcile intervals at realistic serving rates.
            half_life: Some(256),
            max_entries_per_shard: 1024,
        }
    }
}

/// Entries whose decayed weight falls below this are dead: they can no
/// longer influence the top-shapes ranking, only occupy memory.
const PRUNE_EPSILON: f64 = 1e-3;

/// The profiler's aggregation key: the translated query shape. Sids and
/// terms are kept sorted so NEXI variants with the same translation
/// coincide.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct ProfileKey {
    sids: Vec<Sid>,
    terms: Vec<TermId>,
    k: usize,
}

#[derive(Debug, Clone)]
struct ProfileEntry {
    /// A representative NEXI spelling (the first one observed), used when
    /// the self-manager re-runs the query for cost measurement.
    nexi: String,
    /// Decayed observation weight as of `tick`.
    weight: f64,
    /// Logical time of the last update.
    tick: u64,
}

/// One profiled query shape, ready for workload construction.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfiledQuery {
    /// Representative NEXI text.
    pub nexi: String,
    /// Decayed observation weight (un-normalised).
    pub weight: f64,
    /// The k the shape was queried with.
    pub k: usize,
}

/// Concurrent frequency sketch over the live query stream.
pub struct WorkloadProfiler {
    shards: Vec<Mutex<HashMap<ProfileKey, ProfileEntry>>>,
    ticks: AtomicU64,
    half_life: Option<f64>,
    max_entries: usize,
    counters: Arc<SelfManageCounters>,
}

impl WorkloadProfiler {
    /// A profiler with the given configuration.
    pub fn new(config: ProfilerConfig) -> WorkloadProfiler {
        let shards = config.shards.max(1);
        WorkloadProfiler {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            ticks: AtomicU64::new(0),
            half_life: config.half_life.map(|h| h.max(1) as f64),
            max_entries: config.max_entries_per_shard.max(1),
            counters: Arc::new(SelfManageCounters::new()),
        }
    }

    /// The self-management counter group this profiler (and the manager
    /// built on it) reports into.
    pub fn counters(&self) -> &Arc<SelfManageCounters> {
        &self.counters
    }

    /// Records one served query. No-ops for shapes redundant lists cannot
    /// serve: structure-only or term-only translations, and unbounded
    /// (`k: None`) or `k = 0` requests — the self-manager optimises *top-k*
    /// retrieval.
    pub fn record(&self, nexi: &str, sids: &[Sid], terms: &[TermId], k: Option<usize>) {
        let Some(k) = k.filter(|&k| k > 0) else {
            return;
        };
        if sids.is_empty() || terms.is_empty() {
            return;
        }
        let mut sids = sids.to_vec();
        let mut terms = terms.to_vec();
        sids.sort_unstable();
        terms.sort_unstable();
        let key = ProfileKey { sids, terms, k };

        let tick = self.ticks.fetch_add(1, Ordering::Relaxed) + 1;
        let mut shard = self.shards[self.shard_of(&key)].lock();
        // A new shape landing on a full shard first prunes decayed-out
        // entries, then (if the shard is still full — e.g. decay disabled)
        // evicts the lightest ones. Amortised: eviction frees a batch, so
        // the sort does not run on every insert of a flood.
        if shard.len() >= self.max_entries && !shard.contains_key(&key) {
            self.prune(&mut shard, tick);
        }
        let entry = shard.entry(key).or_insert_with(|| ProfileEntry {
            nexi: nexi.to_string(),
            weight: 0.0,
            tick,
        });
        entry.weight = self.decayed(entry.weight, entry.tick, tick) + 1.0;
        entry.tick = tick;
        drop(shard);
        self.counters.queries_profiled.incr();
    }

    /// Number of queries recorded so far (the logical clock).
    pub fn recorded(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// The current top-`max` query shapes by decayed weight, heaviest
    /// first. Equal weights are broken by the full shape key (sids, terms,
    /// k) — the sketch's own aggregation key — like the ranked eviction in
    /// [`prune`](WorkloadProfiler::prune). NEXI text alone is not a key:
    /// the same spelling queried at two k values is two distinct shapes,
    /// and tied shapes sorted only by text would surface in hash-map order,
    /// making reconcile plans differ run to run.
    pub fn profile(&self, max: usize) -> Vec<ProfiledQuery> {
        let now = self.ticks.load(Ordering::Relaxed);
        let mut all: Vec<(ProfileKey, ProfiledQuery)> = Vec::new();
        for shard in &self.shards {
            let mut shard = shard.lock();
            // Reading the sketch is the other natural pruning point: dead
            // entries are dropped here even on shards no flood ever fills.
            if self.half_life.is_some() {
                shard.retain(|_, e| self.decayed(e.weight, e.tick, now) >= PRUNE_EPSILON);
            }
            for (key, entry) in shard.iter() {
                let weight = self.decayed(entry.weight, entry.tick, now);
                if weight > 0.0 {
                    all.push((
                        key.clone(),
                        ProfiledQuery {
                            nexi: entry.nexi.clone(),
                            weight,
                            k: key.k,
                        },
                    ));
                }
            }
        }
        all.sort_by(|(ka, a), (kb, b)| b.weight.total_cmp(&a.weight).then_with(|| ka.cmp(kb)));
        all.truncate(max);
        all.into_iter().map(|(_, q)| q).collect()
    }

    /// Derives the Definition-4.1 workload of the top-`max` shapes:
    /// decayed weights normalised to frequencies summing to 1. `None` when
    /// nothing has been recorded yet.
    pub fn workload(&self, max: usize) -> Option<Workload> {
        let profiled = self.profile(max);
        if profiled.is_empty() {
            return None;
        }
        let total: f64 = profiled.iter().map(|p| p.weight).sum();
        // Normalisation keeps Definition 4.1 (Σf = 1) by construction, so
        // `Workload::new` cannot fail on positive weights.
        Workload::new(
            profiled
                .into_iter()
                .map(|p| WorkloadQuery {
                    nexi: p.nexi,
                    frequency: p.weight / total,
                    k: p.k,
                })
                .collect(),
        )
        .ok()
    }

    /// Drops every recorded shape (the logical clock keeps running).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }

    /// Total entries currently held across all shards (memory-bound tests
    /// and observability; `O(shards)`).
    pub fn entry_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Makes room in a full shard: drop entries decayed below
    /// [`PRUNE_EPSILON`], then if the shard is still at capacity evict the
    /// lightest eighth (at least one) so the heaviest shapes — the only
    /// ones `profile` can ever surface — are untouched.
    fn prune(&self, shard: &mut HashMap<ProfileKey, ProfileEntry>, now: u64) {
        shard.retain(|_, e| self.decayed(e.weight, e.tick, now) >= PRUNE_EPSILON);
        if shard.len() < self.max_entries {
            return;
        }
        let excess = shard.len() + 1 - self.max_entries;
        let evict = excess.max(self.max_entries / 8).min(shard.len());
        let mut ranked: Vec<(ProfileKey, f64)> = shard
            .iter()
            .map(|(k, e)| (k.clone(), self.decayed(e.weight, e.tick, now)))
            .collect();
        ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        for (key, _) in ranked.into_iter().take(evict) {
            shard.remove(&key);
        }
    }

    fn shard_of(&self, key: &ProfileKey) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    fn decayed(&self, weight: f64, from_tick: u64, to_tick: u64) -> f64 {
        match self.half_life {
            Some(half_life) => {
                let dt = to_tick.saturating_sub(from_tick) as f64;
                weight * 0.5f64.powf(dt / half_life)
            }
            None => weight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_by_translated_shape() {
        let p = WorkloadProfiler::new(ProfilerConfig {
            shards: 4,
            half_life: None,
            ..ProfilerConfig::default()
        });
        // Different sid/term *orderings* of the same shape coincide.
        p.record("//a[about(., x y)]", &[1, 2], &[7, 9], Some(10));
        p.record("//a[about(., y x)]", &[2, 1], &[9, 7], Some(10));
        // A different k is a different shape.
        p.record("//a[about(., x y)]", &[1, 2], &[7, 9], Some(5));
        let profiled = p.profile(10);
        assert_eq!(profiled.len(), 2);
        assert_eq!(profiled[0].weight, 2.0);
        assert_eq!(profiled[1].weight, 1.0);
    }

    #[test]
    fn ignores_unprofitable_shapes() {
        let p = WorkloadProfiler::new(ProfilerConfig::default());
        p.record("//a", &[1], &[], Some(10)); // no terms
        p.record("about(., x)", &[], &[3], Some(10)); // no sids
        p.record("//a[about(., x)]", &[1], &[3], None); // unbounded
        p.record("//a[about(., x)]", &[1], &[3], Some(0)); // k = 0
        assert!(p.profile(10).is_empty());
        assert_eq!(p.counters().queries_profiled.get(), 0);
    }

    #[test]
    fn decay_fades_old_shapes() {
        let p = WorkloadProfiler::new(ProfilerConfig {
            shards: 1,
            half_life: Some(4),
            ..ProfilerConfig::default()
        });
        p.record("//a[about(., old)]", &[1], &[1], Some(10));
        for _ in 0..16 {
            p.record("//a[about(., new)]", &[1], &[2], Some(10));
        }
        let profiled = p.profile(10);
        assert_eq!(profiled[0].nexi, "//a[about(., new)]");
        // 16 ticks = 4 half-lives: the old entry is at 1/16 weight.
        assert!(profiled.len() == 1 || profiled[1].weight < 0.1);
    }

    #[test]
    fn workload_normalises_and_orders_deterministically() {
        let p = WorkloadProfiler::new(ProfilerConfig {
            shards: 8,
            half_life: None,
            ..ProfilerConfig::default()
        });
        for _ in 0..6 {
            p.record("//a[about(., x)]", &[1], &[1], Some(10));
        }
        for _ in 0..3 {
            p.record("//b[about(., y)]", &[2], &[2], Some(10));
        }
        p.record("//c[about(., z)]", &[3], &[3], Some(5));
        let w = p.workload(10).unwrap();
        let expected = Workload::from_weights(vec![
            ("//a[about(., x)]".into(), 6.0, 10),
            ("//b[about(., y)]".into(), 3.0, 10),
            ("//c[about(., z)]".into(), 1.0, 5),
        ])
        .unwrap();
        assert_eq!(w, expected);
    }

    #[test]
    fn tied_weights_order_by_shape_key_not_hash_order() {
        // Two shapes with the SAME representative NEXI text and the same
        // weight — only k (part of the shape key) distinguishes them. The
        // text tiebreak alone cannot order these, so before the shape-key
        // tiebreak their order was whatever the hash map yielded.
        let build = || {
            let p = WorkloadProfiler::new(ProfilerConfig {
                shards: 4,
                half_life: None,
                ..ProfilerConfig::default()
            });
            p.record("//a[about(., x)]", &[1], &[7], Some(20));
            p.record("//a[about(., x)]", &[1], &[7], Some(5));
            // Same k and text, tied weight, differing terms: key orders them.
            p.record("//b[about(., y)]", &[2], &[9], Some(5));
            p.record("//b[about(., y)]", &[2], &[8], Some(5));
            p.profile(10)
        };
        let first = build();
        assert_eq!(first.len(), 4);
        // Shape key orders (sids, terms, k) ascending within the weight tie.
        assert_eq!(
            (first[0].nexi.as_str(), first[0].k),
            ("//a[about(., x)]", 5)
        );
        assert_eq!(
            (first[1].nexi.as_str(), first[1].k),
            ("//a[about(., x)]", 20)
        );
        assert_eq!(first[2].nexi.as_str(), "//b[about(., y)]");
        assert_eq!(first[3].nexi.as_str(), "//b[about(., y)]");
        // Fresh sketches (fresh hash seeds) must reproduce the same order.
        for _ in 0..8 {
            assert_eq!(build(), first);
        }
    }

    #[test]
    fn truncates_to_the_heaviest_shapes() {
        let p = WorkloadProfiler::new(ProfilerConfig {
            shards: 2,
            half_life: None,
            ..ProfilerConfig::default()
        });
        for i in 0..20u32 {
            for _ in 0..=i {
                p.record(&format!("//a[about(., t{i})]"), &[1], &[i], Some(10));
            }
        }
        let profiled = p.profile(3);
        assert_eq!(profiled.len(), 3);
        assert_eq!(profiled[0].weight, 20.0);
        assert_eq!(profiled[2].weight, 18.0);
    }

    #[test]
    fn flood_of_unique_shapes_stays_bounded_and_keeps_hot_ranking() {
        let cap = 128;
        let p = WorkloadProfiler::new(ProfilerConfig {
            shards: 2,
            half_life: Some(64),
            max_entries_per_shard: cap,
        });
        // A hot query interleaved with a flood of never-repeated shapes:
        // the sketch must stay within its cap and the hot query must stay
        // ranked first throughout.
        for i in 0..10_000u32 {
            if i % 10 == 0 {
                p.record("//a[about(., hot)]", &[1], &[1], Some(10));
            }
            p.record(
                &format!("//a[about(., r{i})]"),
                &[2],
                &[1_000 + i],
                Some(10),
            );
            assert!(p.entry_count() <= 2 * cap, "flood grew past cap at i={i}");
        }
        let profiled = p.profile(5);
        assert_eq!(profiled[0].nexi, "//a[about(., hot)]");
        // Reading the profile prunes decayed-out entries too.
        assert!(p.entry_count() <= 2 * cap);
    }

    #[test]
    fn eviction_without_decay_keeps_the_heaviest_shapes() {
        let cap = 16;
        let p = WorkloadProfiler::new(ProfilerConfig {
            shards: 1,
            half_life: None,
            max_entries_per_shard: cap,
        });
        for _ in 0..50 {
            p.record("//a[about(., hot)]", &[1], &[1], Some(10));
        }
        for i in 0..200u32 {
            p.record(&format!("//a[about(., r{i})]"), &[2], &[100 + i], Some(10));
        }
        assert!(p.entry_count() <= cap);
        assert_eq!(p.profile(1)[0].nexi, "//a[about(., hot)]");
    }
}
