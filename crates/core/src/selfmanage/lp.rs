//! Exact solver for the boolean linear program of paper §4.1.
//!
//! Maximise `Σ (x_i1 · f_i · Δm(Q_i) + x_i2 · f_i · Δta(Q_i))` subject to
//!
//! 1. `x_i1 + x_i2 ≤ 1` — at most one redundant index per query;
//! 2. `Σ (x_i1 · S_ERPL(Q_i) + x_i2 · S_RPL(Q_i)) ≤ d` — the disk budget;
//! 3. `x_ij ∈ {0, 1}`.
//!
//! (The paper's constraint (2) prints `S_RPL` next to `x_i1`; since `x_i1`
//! selects ERPLs and `x_i2` RPLs, the sizes are matched to the index each
//! variable actually stores.)
//!
//! The solver is branch-and-bound ("can be solved using known techniques
//! such as the branch-and-cut or branch-and-bound algorithms", §4.1): DFS
//! over queries with three branches each, pruned by a fractional-knapsack
//! upper bound. Exact, and fast for the small workloads the paper intends
//! LP for ("it should be used only when the number of queries in the
//! workload is small", §4.2).

use super::cost::{Choice, QueryCost, Selection};

/// Solves the boolean LP exactly; returns the optimal selection under the
/// additive (per-query) space model.
pub fn solve_lp(costs: &[QueryCost], budget: u64) -> Selection {
    let l = costs.len();
    // Candidate options per query: (saving, space, choice); `None` is free.
    let options: Vec<Vec<(f64, u64, Choice)>> = costs
        .iter()
        .map(|q| {
            let mut opts = vec![(0.0, 0u64, Choice::None)];
            let s_erpl = q.s_erpl();
            let s_rpl = q.s_rpl();
            if q.frequency * q.delta_merge > 0.0 && s_erpl <= budget {
                opts.push((q.frequency * q.delta_merge, s_erpl, Choice::Erpl));
            }
            if q.frequency * q.delta_ta > 0.0 && s_rpl <= budget {
                opts.push((q.frequency * q.delta_ta, s_rpl, Choice::Rpl));
            }
            opts
        })
        .collect();

    // Best saving-per-byte ratio of each query's non-trivial options, used
    // by the fractional upper bound. Zero-space positive-saving options make
    // the ratio infinite; handle them by always taking them in the bound.
    let mut order: Vec<usize> = (0..l).collect();
    let ratio = |i: usize| -> f64 {
        options[i]
            .iter()
            .map(|&(s, sp, _)| {
                if sp == 0 {
                    f64::INFINITY
                } else {
                    s / sp as f64
                }
            })
            .fold(0.0, f64::max)
    };
    order.sort_by(|&a, &b| ratio(b).partial_cmp(&ratio(a)).expect("finite or inf"));

    let mut best = Selection::none(l);
    let mut best_saving = 0.0f64;
    let mut current = vec![Choice::None; l];

    // Fractional upper bound for the remaining queries `order[depth..]`:
    // relax both the integrality and the one-index-per-query constraints,
    // i.e. a plain fractional knapsack over every remaining option. That is
    // a superset of the feasible solutions, so it never under-estimates.
    let upper_bound = |depth: usize, space_left: u64| -> f64 {
        let mut items: Vec<(f64, u64)> = Vec::new();
        for &i in &order[depth..] {
            for &(s, sp, _) in &options[i] {
                if s > 0.0 {
                    items.push((s, sp));
                }
            }
        }
        items.sort_by(|a, b| {
            let ra = if a.1 == 0 {
                f64::INFINITY
            } else {
                a.0 / a.1 as f64
            };
            let rb = if b.1 == 0 {
                f64::INFINITY
            } else {
                b.0 / b.1 as f64
            };
            rb.partial_cmp(&ra).expect("finite or inf")
        });
        let mut bound = 0.0;
        let mut left = space_left as f64;
        for (s, sp) in items {
            if sp == 0 {
                bound += s;
            } else if (sp as f64) <= left {
                bound += s;
                left -= sp as f64;
            } else if left > 0.0 {
                bound += s * left / sp as f64;
                left = 0.0;
            } else {
                break;
            }
        }
        bound
    };

    #[allow(clippy::too_many_arguments)] // plain recursion state, clearer than a context struct
    fn dfs(
        depth: usize,
        saving: f64,
        space_left: u64,
        order: &[usize],
        options: &[Vec<(f64, u64, Choice)>],
        current: &mut Vec<Choice>,
        best: &mut Selection,
        best_saving: &mut f64,
        upper_bound: &dyn Fn(usize, u64) -> f64,
    ) {
        if saving > *best_saving {
            *best_saving = saving;
            best.choices.clone_from(current);
        }
        if depth == order.len() {
            return;
        }
        if saving + upper_bound(depth, space_left) <= *best_saving {
            return; // pruned
        }
        let i = order[depth];
        // Branch on the highest-saving options first to find good incumbents
        // early.
        let mut opts = options[i].clone();
        opts.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
        for (s, sp, choice) in opts {
            if sp > space_left {
                continue;
            }
            current[i] = choice;
            dfs(
                depth + 1,
                saving + s,
                space_left - sp,
                order,
                options,
                current,
                best,
                best_saving,
                upper_bound,
            );
            current[i] = Choice::None;
        }
    }

    dfs(
        0,
        0.0,
        budget,
        &order,
        &options,
        &mut current,
        &mut best,
        &mut best_saving,
        &upper_bound,
    );
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selfmanage::cost::ListId;

    fn cost(f: f64, dm: f64, dta: f64, s_erpl: u64, s_rpl: u64) -> QueryCost {
        QueryCost {
            frequency: f,
            measured_era: dm.max(dta),
            delta_merge: dm,
            delta_ta: dta,
            erpl_lists: vec![ListId {
                term: 0,
                sid: 0,
                bytes: s_erpl,
            }],
            rpl_lists: vec![ListId {
                term: 0,
                sid: 1,
                bytes: s_rpl,
            }],
        }
    }

    #[test]
    fn picks_the_best_method_per_query() {
        // Query 0: Merge saves more; query 1: TA saves more. Budget fits both.
        let costs = vec![
            cost(0.5, 10.0, 2.0, 100, 100),
            cost(0.5, 1.0, 8.0, 100, 100),
        ];
        let sel = solve_lp(&costs, 1000);
        assert_eq!(sel.choices, vec![Choice::Erpl, Choice::Rpl]);
    }

    #[test]
    fn respects_the_budget() {
        let costs = vec![cost(0.5, 10.0, 0.0, 100, 0), cost(0.5, 9.0, 0.0, 100, 0)];
        let sel = solve_lp(&costs, 100);
        // Only one fits; the better one must be chosen.
        assert_eq!(sel.choices, vec![Choice::Erpl, Choice::None]);
        assert!(sel.space_additive(&costs) <= 100);
    }

    #[test]
    fn knapsack_tradeoff_is_solved_exactly() {
        // One big saving vs two smaller ones that together beat it.
        let costs = vec![
            cost(0.4, 10.0, 0.0, 100, 0), // ratio 0.04
            cost(0.3, 9.0, 0.0, 50, 0),   // ratio 0.054
            cost(0.3, 9.0, 0.0, 50, 0),   // ratio 0.054
        ];
        let sel = solve_lp(&costs, 100);
        assert_eq!(sel.choices, vec![Choice::None, Choice::Erpl, Choice::Erpl]);
        assert!((sel.saving(&costs) - (0.3 * 9.0 + 0.3 * 9.0)).abs() < 1e-9);
    }

    #[test]
    fn zero_budget_selects_nothing() {
        let costs = vec![cost(1.0, 10.0, 10.0, 100, 100)];
        let sel = solve_lp(&costs, 0);
        assert_eq!(sel.choices, vec![Choice::None]);
    }

    #[test]
    fn zero_savings_select_nothing() {
        let costs = vec![cost(1.0, 0.0, 0.0, 10, 10)];
        let sel = solve_lp(&costs, 1000);
        assert_eq!(sel.choices, vec![Choice::None]);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        // Deterministic pseudo-random instances; exhaustive check for l = 6.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..20 {
            let l = 6;
            let costs: Vec<QueryCost> = (0..l)
                .map(|_| {
                    cost(
                        1.0 / l as f64,
                        (next() % 100) as f64,
                        (next() % 100) as f64,
                        next() % 200 + 1,
                        next() % 200 + 1,
                    )
                })
                .collect();
            let budget = next() % 500;
            let sel = solve_lp(&costs, budget);
            // Brute force over 3^l assignments.
            let mut best = 0.0f64;
            for mut code in 0..3usize.pow(l as u32) {
                let mut choices = Vec::with_capacity(l);
                for _ in 0..l {
                    choices.push(match code % 3 {
                        0 => Choice::None,
                        1 => Choice::Erpl,
                        _ => Choice::Rpl,
                    });
                    code /= 3;
                }
                let s = Selection { choices };
                if s.space_additive(&costs) <= budget {
                    best = best.max(s.saving(&costs));
                }
            }
            assert!(
                (sel.saving(&costs) - best).abs() < 1e-9,
                "lp={} brute={}",
                sel.saving(&costs),
                best
            );
            assert!(sel.space_additive(&costs) <= budget);
        }
    }
}
