//! Workloads of top-k retrieval queries (paper Definition 4.1).

/// One workload entry: a query and its relative frequency.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadQuery {
    /// The NEXI query text.
    pub nexi: String,
    /// Relative frequency, `0 < f ≤ 1`.
    pub frequency: f64,
    /// The k the workload asks this query with (affects TA profiling).
    pub k: usize,
}

/// "A workload is a list of top-k retrieval queries Q1,…,Ql, where each
/// query Qi is associated with a frequency 0 < fi ≤ 1, such that Σ fi = 1"
/// (Definition 4.1).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Workload {
    queries: Vec<WorkloadQuery>,
}

/// Errors constructing a workload.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// A frequency was outside `(0, 1]`.
    BadFrequency(f64),
    /// The frequencies do not sum to 1 (within tolerance).
    BadSum(f64),
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::BadFrequency(v) => write!(f, "frequency {v} outside (0, 1]"),
            WorkloadError::BadSum(s) => write!(f, "frequencies sum to {s}, expected 1"),
        }
    }
}

impl std::error::Error for WorkloadError {}

impl Workload {
    /// Builds a workload, validating Definition 4.1.
    pub fn new(queries: Vec<WorkloadQuery>) -> Result<Workload, WorkloadError> {
        let mut sum = 0.0;
        for q in &queries {
            if !(q.frequency > 0.0 && q.frequency <= 1.0) {
                return Err(WorkloadError::BadFrequency(q.frequency));
            }
            sum += q.frequency;
        }
        if !queries.is_empty() && (sum - 1.0).abs() > 1e-6 {
            return Err(WorkloadError::BadSum(sum));
        }
        Ok(Workload { queries })
    }

    /// Builds a workload from raw weights, normalising them to sum to 1.
    pub fn from_weights(entries: Vec<(String, f64, usize)>) -> Result<Workload, WorkloadError> {
        let total: f64 = entries.iter().map(|(_, w, _)| *w).sum();
        if total <= 0.0 {
            return Err(WorkloadError::BadSum(total));
        }
        Workload::new(
            entries
                .into_iter()
                .map(|(nexi, w, k)| WorkloadQuery {
                    nexi,
                    frequency: w / total,
                    k,
                })
                .collect(),
        )
    }

    /// The queries.
    pub fn queries(&self) -> &[WorkloadQuery] {
        &self.queries
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(nexi: &str, f: f64) -> WorkloadQuery {
        WorkloadQuery {
            nexi: nexi.into(),
            frequency: f,
            k: 10,
        }
    }

    #[test]
    fn accepts_valid_workloads() {
        let w = Workload::new(vec![
            q("//a[about(., x)]", 0.25),
            q("//b[about(., y)]", 0.75),
        ])
        .unwrap();
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn rejects_bad_frequencies() {
        assert!(matches!(
            Workload::new(vec![q("//a[about(., x)]", 0.0)]),
            Err(WorkloadError::BadFrequency(_))
        ));
        assert!(matches!(
            Workload::new(vec![q("//a[about(., x)]", 1.5)]),
            Err(WorkloadError::BadFrequency(_))
        ));
    }

    #[test]
    fn rejects_frequencies_not_summing_to_one() {
        assert!(matches!(
            Workload::new(vec![q("//a[about(., x)]", 0.4), q("//b[about(., y)]", 0.4)]),
            Err(WorkloadError::BadSum(_))
        ));
    }

    #[test]
    fn from_weights_normalises() {
        let w = Workload::from_weights(vec![
            ("//a[about(., x)]".into(), 3.0, 10),
            ("//b[about(., y)]".into(), 1.0, 5),
        ])
        .unwrap();
        assert!((w.queries()[0].frequency - 0.75).abs() < 1e-9);
        assert!((w.queries()[1].frequency - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_workload_is_allowed() {
        assert!(Workload::new(vec![]).unwrap().is_empty());
    }
}
