//! Self-managing retrieval indexes (paper §4): the workload model, the
//! index-selection problem, the exact boolean-LP solver, the greedy
//! 2-approximation, the offline advisor that measures costs and reconciles
//! the store, and the online layer (profiler + background self-manager)
//! that does the same continuously against the live query stream.

pub mod advisor;
pub mod cost;
pub mod greedy;
pub mod lp;
pub mod online;
pub mod profiler;
pub mod workload;

pub use advisor::{Advisor, AdvisorOptions, AdvisorReport, SelectionMethod};
pub use cost::{Choice, ListId, QueryCost, Selection};
pub use greedy::solve_greedy;
pub use lp::solve_lp;
pub use online::{
    cycle_record, reconcile_once, CostCache, ManagerHooks, ReconcileReport, SelfManageOptions,
    SelfManager,
};
pub use profiler::{ProfiledQuery, ProfilerConfig, WorkloadProfiler};
pub use workload::{Workload, WorkloadError, WorkloadQuery};
