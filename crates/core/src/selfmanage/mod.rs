//! Self-managing retrieval indexes (paper §4): the workload model, the
//! index-selection problem, the exact boolean-LP solver, the greedy
//! 2-approximation, and the advisor that measures costs and reconciles the
//! store.

pub mod advisor;
pub mod cost;
pub mod greedy;
pub mod lp;
pub mod workload;

pub use advisor::{Advisor, AdvisorOptions, AdvisorReport, SelectionMethod};
pub use cost::{Choice, ListId, QueryCost, Selection};
pub use greedy::solve_greedy;
pub use lp::solve_lp;
pub use workload::{Workload, WorkloadError, WorkloadQuery};
