//! # trex-core
//!
//! The primary contribution of *Self Managing Top-k (Summary, Keyword)
//! Indexes in XML Retrieval* (ICDE 2007): the three retrieval strategies —
//! [`mod@era`] (Fig. 2), [`mod@ta`] (§3.3, with the instrumented-heap ITA
//! variant) and [`mod@merge`] (Fig. 3) — the strategy-choosing [`engine`],
//! the redundant-list [`mod@materialize`]r, and the [`selfmanage`] advisor
//! that decides, for a
//! workload and a disk budget, which RPL/ERPL lists to keep (boolean LP of
//! §4.1 and the greedy 2-approximation of §4.2).

pub mod answer;
pub mod engine;
pub mod era;
pub mod executor;
pub mod heap;
pub mod ingest;
pub mod materialize;
pub mod merge;
pub mod metrics;
pub mod partition;
pub mod qsort;
pub mod selfmanage;
pub mod serve;
pub mod ta;

use std::fmt;

/// The observability primitives (counters, snapshots, [`obs::QueryTrace`]),
/// re-exported so downstream crates need not depend on `trex-obs` directly.
pub use trex_obs as obs;

pub use answer::{rank, top_k, Answer};
pub use engine::{
    EvalOptions, Explain, QueryEngine, QueryResult, RaceWinner, Strategy, StrategyStats,
};
pub use era::{era, era_with_deadline, EraMatch, EraStats};
pub use executor::QueryExecutor;
pub use heap::{HeapClock, HeapPolicy, TopKHeap};
pub use ingest::{fold_once, FoldManager, FoldOptions, FoldReport};
pub use materialize::{
    collect_lists, erpls_cover, materialize, materialize_batch, rpls_cover, ListKind, ScoredLists,
};
pub use merge::{merge, merge_with_cancel, MergeStats};
pub use metrics::StrategyMetrics;
pub use partition::{
    merge_topk, partition_store_path, partitioned_cycle_record, reconcile_partitioned,
    split_budget, Partition, PartitionBudget, PartitionedCycle, PartitionedSelfManager,
    PartitionedSystem,
};
pub use qsort::quicksort;
pub use selfmanage::cost::{
    predicted_merge_accesses, predicted_ta_accesses, CostValidation, TA_PREDICTION_FACTOR,
};
pub use selfmanage::{
    cycle_record, reconcile_once, Advisor, AdvisorOptions, AdvisorReport, Choice, CostCache,
    ManagerHooks, ProfilerConfig, QueryCost, ReconcileReport, Selection, SelectionMethod,
    SelfManageOptions, SelfManager, Workload, WorkloadProfiler, WorkloadQuery,
};
pub use serve::{
    normalize_nexi, parse_query_request, CacheKey, CacheStatus, CachedResult, Deadline,
    QueryRequest, QueryResponse, QueryService, ResultCache, WireError, DEFAULT_CACHE_ENTRIES,
};
pub use ta::{ta, ta_with_cancel, TaOptions, TaStats, TA_MAX_TERMS};

/// Errors from query evaluation.
#[derive(Debug)]
pub enum TrexError {
    /// The NEXI query failed to parse.
    Parse(trex_nexi::ParseError),
    /// An index / storage failure.
    Index(trex_index::IndexError),
    /// A strategy was requested whose redundant indexes are missing.
    MissingIndex(String),
    /// The query exceeds a hard engine limit (e.g. TA's 64-term bitmask).
    Unsupported(String),
    /// The workload definition was invalid.
    Workload(selfmanage::WorkloadError),
    /// The query's [`EvalOptions::deadline`] passed before evaluation
    /// finished; the strategies poll it cooperatively at iteration
    /// boundaries, so the query stopped within one check window. Maps to
    /// HTTP 408 at the serving surface, and is always retryable (with a
    /// larger budget).
    DeadlineExceeded,
    /// Live ingestion has allocated every representable document id
    /// (`u32::MAX` is the `m-pos` sentinel and is never assigned); the
    /// collection must be rebuilt to accept more documents. Not retryable.
    CorpusFull,
    /// A worker thread panicked while evaluating this query. The panic is
    /// caught at the batch/scatter boundary so one poisoned query cannot
    /// tear down its batchmates; the payload's message is preserved here.
    Internal(String),
}

impl fmt::Display for TrexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrexError::Parse(e) => write!(f, "{e}"),
            TrexError::Index(e) => write!(f, "{e}"),
            TrexError::MissingIndex(what) => write!(f, "missing index: {what}"),
            TrexError::Unsupported(what) => write!(f, "unsupported query: {what}"),
            TrexError::Workload(e) => write!(f, "{e}"),
            TrexError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            TrexError::CorpusFull => {
                write!(f, "document id space exhausted; rebuild to ingest more")
            }
            TrexError::Internal(what) => write!(f, "internal error: {what}"),
        }
    }
}

impl std::error::Error for TrexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrexError::Parse(e) => Some(e),
            TrexError::Index(e) => Some(e),
            TrexError::MissingIndex(_) => None,
            TrexError::Unsupported(_) => None,
            TrexError::Workload(e) => Some(e),
            TrexError::DeadlineExceeded => None,
            TrexError::CorpusFull => None,
            TrexError::Internal(_) => None,
        }
    }
}

impl From<trex_index::IndexError> for TrexError {
    fn from(e: trex_index::IndexError) -> Self {
        match e {
            trex_index::IndexError::DocIdsExhausted => TrexError::CorpusFull,
            e => TrexError::Index(e),
        }
    }
}

impl From<trex_storage::StorageError> for TrexError {
    fn from(e: trex_storage::StorageError) -> Self {
        TrexError::Index(trex_index::IndexError::Storage(e))
    }
}

impl From<selfmanage::WorkloadError> for TrexError {
    fn from(e: selfmanage::WorkloadError) -> Self {
        TrexError::Workload(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, TrexError>;
