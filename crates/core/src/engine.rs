//! The query engine: translation + strategy selection + evaluation.
//!
//! "TReX evaluates a given query by choosing a method from the three
//! evaluation methods" (paper §4). ERA can always run; TA needs the query's
//! RPLs, Merge its ERPLs. `Strategy::Auto` picks the cheapest *available*
//! method with the paper's observed preferences: TA for small k when RPLs
//! exist, Merge when ERPLs exist, ERA as the fallback.

use std::time::{Duration, Instant};

use trex_nexi::{parse, translate, Interpretation, Translation, TranslationContext};
use trex_obs::{
    tree_from_events, DriftKind, QueryTrace, SlowQuery, SpanGuard, StageTimings, TraceContext,
    TraceNode,
};
use trex_text::Analyzer;

use trex_index::TrexIndex;

use crate::answer::{top_k, Answer};
use crate::era::{era_with_deadline, EraStats};
use crate::materialize::{erpls_cover, rpls_cover};
use crate::merge::{merge_with_cancel, MergeStats};
use crate::metrics::StrategyMetrics;
use crate::selfmanage::cost::{
    predicted_merge_accesses, predicted_merge_block_reads, predicted_ta_accesses,
    predicted_ta_block_reads, CostValidation,
};
use crate::selfmanage::profiler::WorkloadProfiler;
use crate::serve::Deadline;
use crate::ta::{ta_with_cancel, TaOptions, TaStats, TA_MAX_TERMS};
use crate::{Result, TrexError};

/// Which retrieval method to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Strategy {
    /// Exhaustive retrieval over Elements + PostingLists.
    Era,
    /// Threshold algorithm over RPLs.
    Ta,
    /// Merge over ERPLs.
    Merge,
    /// Run TA and Merge in parallel and return whichever finishes first,
    /// cancelling the loser (paper §4: "if the two computations are being
    /// done in parallel, the system can return the answer from the
    /// computation that finishes first"). Requires both RPLs and ERPLs.
    Race,
    /// Pick automatically based on available indexes and k.
    #[default]
    Auto,
}

impl Strategy {
    /// The wire/CLI name of this strategy (`"era"`, `"ta"`, `"merge"`,
    /// `"race"`, `"auto"`). Inverse of the [`FromStr`] impl.
    ///
    /// [`FromStr`]: std::str::FromStr
    pub fn as_str(&self) -> &'static str {
        match self {
            Strategy::Era => "era",
            Strategy::Ta => "ta",
            Strategy::Merge => "merge",
            Strategy::Race => "race",
            Strategy::Auto => "auto",
        }
    }
}

impl std::str::FromStr for Strategy {
    type Err = String;

    /// Parses the wire/CLI names, case-insensitively.
    fn from_str(s: &str) -> std::result::Result<Strategy, String> {
        match s.to_ascii_lowercase().as_str() {
            "era" => Ok(Strategy::Era),
            "ta" => Ok(Strategy::Ta),
            "merge" => Ok(Strategy::Merge),
            "race" => Ok(Strategy::Race),
            "auto" => Ok(Strategy::Auto),
            other => Err(format!(
                "unknown strategy {other:?}; expected era, ta, merge, race or auto"
            )),
        }
    }
}

/// The strategy actually used plus its execution statistics.
#[derive(Debug, Clone)]
pub enum StrategyStats {
    /// ERA ran (with post-scoring time included in `EraStats::wall`).
    Era(EraStats),
    /// TA ran.
    Ta(TaStats),
    /// Merge ran.
    Merge(MergeStats),
    /// TA and Merge raced; `winner` is the stats of the one that finished.
    Race {
        /// The method that finished first.
        won_by: RaceWinner,
        /// The winner's own statistics.
        winner: Box<StrategyStats>,
        /// Wall-clock time of the race (first finish).
        wall: Duration,
    },
    /// The query was scattered across a partitioned system and the
    /// per-partition streams k-way merged (see `crate::partition`).
    Scatter {
        /// Number of partitions evaluated.
        partitions: usize,
        /// Each partition's own strategy statistics, in partition order
        /// (partitions resolve strategies independently — one may run TA
        /// while another falls back to ERA).
        per_part: Vec<StrategyStats>,
        /// Wall-clock time of the whole scatter-gather (slowest partition
        /// plus merge).
        wall: Duration,
    },
}

/// Which racer finished first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceWinner {
    /// TA produced the answer first.
    Ta,
    /// Merge produced the answer first.
    Merge,
}

impl StrategyStats {
    /// Wall-clock time of the evaluation.
    pub fn wall(&self) -> Duration {
        match self {
            StrategyStats::Era(s) => s.wall,
            StrategyStats::Ta(s) => s.wall,
            StrategyStats::Merge(s) => s.wall,
            StrategyStats::Race { wall, .. } => *wall,
            StrategyStats::Scatter { wall, .. } => *wall,
        }
    }

    /// The strategy that produced these stats, as a trace label
    /// (`"race(ta)"` names the race's winner).
    pub fn name(&self) -> &'static str {
        match self {
            StrategyStats::Era(_) => "era",
            StrategyStats::Ta(_) => "ta",
            StrategyStats::Merge(_) => "merge",
            StrategyStats::Race {
                won_by: RaceWinner::Ta,
                ..
            } => "race(ta)",
            StrategyStats::Race {
                won_by: RaceWinner::Merge,
                ..
            } => "race(merge)",
            StrategyStats::Scatter { .. } => "scatter",
        }
    }
}

/// The result of evaluating a query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Ranked answers (top-k, or all answers when `k` was `None`).
    pub answers: Vec<Answer>,
    /// Total number of answers the query has (known exactly for ERA/Merge;
    /// for TA it is the number of answers returned).
    pub total_answers: usize,
    /// The translation the evaluation used.
    pub translation: Translation,
    /// Which strategy ran, with statistics.
    pub stats: StrategyStats,
    /// The query's observability trace (stage timings, storage / index /
    /// cost-model counter deltas); present when the query ran with
    /// [`EvalOptions::trace`] enabled.
    pub trace: Option<QueryTrace>,
    /// The maintenance generation the evaluation read its lists under
    /// (captured while holding the read gate, so it is exact). A repeat
    /// query is answerable from cache iff the current generation still
    /// equals this one — the serving layer's invalidation key.
    pub generation: u64,
    /// The assembled span tree of this evaluation; present when the query
    /// ran under a [`TraceContext`] (request tracing). For partitioned
    /// evaluations the scatter layer grafts each partition's tree under one
    /// root (see `crate::partition`).
    pub trace_tree: Option<TraceNode>,
    /// True when ring wrap-around lost span events inside this query's
    /// window, so `trace_tree` (and the slow-log subtree) is incomplete.
    pub trace_truncated: bool,
}

/// Options for [`QueryEngine::evaluate`], assembled fluently:
///
/// ```
/// use trex_core::{EvalOptions, Strategy};
///
/// let opts = EvalOptions::new().k(10).strategy(Strategy::Auto).trace(true);
/// assert_eq!(opts.k, Some(10));
/// ```
///
/// The struct is `#[non_exhaustive]`: construct it with [`EvalOptions::new`]
/// and the setters, so new knobs (trace today; timeouts, budgets tomorrow)
/// are not breaking changes at every call site. Fields stay `pub` for
/// reading.
#[non_exhaustive]
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Top-k limit; `None` returns all answers.
    pub k: Option<usize>,
    /// Strategy selection.
    pub strategy: Strategy,
    /// Structural interpretation (vague by default).
    pub interpretation: Interpretation,
    /// Measure heap time in TA (for ITA curves).
    pub measure_heap: bool,
    /// Attach a [`QueryTrace`] to the result. The underlying counters are
    /// always maintained; this toggle only controls snapshotting and stage
    /// timing, so leaving it off costs nothing measurable.
    pub trace: bool,
    /// Absolute evaluation deadline. The strategies poll it cooperatively
    /// at their iteration boundaries (every
    /// [`serve::deadline::CHECK_INTERVAL`](crate::serve::deadline::CHECK_INTERVAL)
    /// units of work); an expired query fails with
    /// [`TrexError::DeadlineExceeded`] instead of running to completion.
    pub deadline: Option<Instant>,
    /// Request-tracing identity from the serving layer. When set, the
    /// evaluation assembles its span subtree into
    /// [`QueryResult::trace_tree`] (and feeds the cost-model drift monitor)
    /// even if [`EvalOptions::trace`] is off.
    pub trace_context: Option<TraceContext>,
}

impl EvalOptions {
    /// Defaults: all answers, automatic strategy, vague interpretation, no
    /// heap measurement, no trace.
    pub fn new() -> EvalOptions {
        EvalOptions {
            k: None,
            strategy: Strategy::Auto,
            interpretation: Interpretation::default(),
            measure_heap: false,
            trace: false,
            deadline: None,
            trace_context: None,
        }
    }

    /// Sets the top-k limit. Accepts a bare `usize` or an `Option` (where
    /// `None` means all answers).
    pub fn k(mut self, k: impl Into<Option<usize>>) -> EvalOptions {
        self.k = k.into();
        self
    }

    /// Sets the strategy.
    pub fn strategy(mut self, strategy: Strategy) -> EvalOptions {
        self.strategy = strategy;
        self
    }

    /// Sets the structural interpretation.
    pub fn interpretation(mut self, interpretation: Interpretation) -> EvalOptions {
        self.interpretation = interpretation;
        self
    }

    /// Enables/disables TA heap-time measurement.
    pub fn measure_heap(mut self, on: bool) -> EvalOptions {
        self.measure_heap = on;
        self
    }

    /// Enables/disables the per-query [`QueryTrace`].
    pub fn trace(mut self, on: bool) -> EvalOptions {
        self.trace = on;
        self
    }

    /// Sets an absolute deadline (or clears it with `None`).
    pub fn deadline_at(mut self, at: impl Into<Option<Instant>>) -> EvalOptions {
        self.deadline = at.into();
        self
    }

    /// Sets a deadline `budget` from now.
    pub fn deadline_in(mut self, budget: Duration) -> EvalOptions {
        self.deadline = Instant::now().checked_add(budget);
        self
    }

    /// Attaches (or clears) the request-tracing identity.
    pub fn trace_context(mut self, ctx: impl Into<Option<TraceContext>>) -> EvalOptions {
        self.trace_context = ctx.into();
        self
    }
}

impl Default for EvalOptions {
    fn default() -> EvalOptions {
        EvalOptions::new()
    }
}

/// A query plan description: what translation produced, which redundant
/// indexes exist, and which strategy `Auto` would run.
#[derive(Debug, Clone)]
pub struct Explain {
    /// The translation (sids, terms, clauses, unknown terms).
    pub translation: Translation,
    /// Per-sid extent descriptions as XPath (paper §2.1).
    pub extents: Vec<(trex_summary::Sid, String, u64)>,
    /// Per-term text and collection statistics.
    pub terms: Vec<(trex_text::TermId, String, u64)>,
    /// Whether every (term, sid) RPL is materialised (TA is possible).
    pub rpls_available: bool,
    /// Whether every (term, sid) ERPL is materialised (Merge is possible).
    pub erpls_available: bool,
    /// The strategy `Auto` would choose for the given k.
    pub chosen: Strategy,
}

/// Evaluates NEXI queries against a [`TrexIndex`].
///
/// Cloning is free (two references and a [`Analyzer`] config struct); the
/// executor clones the engine into a per-batch [`QueryService`](crate::QueryService).
#[derive(Clone)]
pub struct QueryEngine<'a> {
    index: &'a TrexIndex,
    analyzer: Analyzer,
    /// Online workload observer; when attached, every top-k evaluation is
    /// recorded (lock-cheap) so the self-manager can derive the live
    /// workload.
    profiler: Option<&'a WorkloadProfiler>,
}

// The batch executor shares one engine across its worker threads, so losing
// either auto-trait (say, by giving the engine an `Rc` or `Cell` field) must
// be a compile error here rather than a surprise in `executor.rs`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryEngine<'static>>();
    assert_send_sync::<EvalOptions>();
};

impl<'a> QueryEngine<'a> {
    /// An engine over `index` using the analyzer the index was built with
    /// (persisted in the catalog).
    pub fn new(index: &'a TrexIndex) -> QueryEngine<'a> {
        QueryEngine {
            index,
            analyzer: index.analyzer(),
            profiler: None,
        }
    }

    /// Overrides the analyzer (for indexes built with a custom one).
    pub fn with_analyzer(index: &'a TrexIndex, analyzer: Analyzer) -> QueryEngine<'a> {
        QueryEngine {
            index,
            analyzer,
            profiler: None,
        }
    }

    /// Attaches a workload profiler: every subsequent [`evaluate`] with a
    /// concrete `k` feeds the profiler's frequency sketch, and `Auto`
    /// strategy resolutions that fall back to ERA for lack of lists are
    /// counted in the profiler's [`SelfManageCounters`].
    ///
    /// [`evaluate`]: QueryEngine::evaluate
    /// [`SelfManageCounters`]: trex_obs::SelfManageCounters
    pub fn with_profiler(mut self, profiler: &'a WorkloadProfiler) -> QueryEngine<'a> {
        self.profiler = Some(profiler);
        self
    }

    /// The index this engine evaluates over.
    pub fn index(&self) -> &'a TrexIndex {
        self.index
    }

    /// Parses and translates `nexi` without evaluating it.
    pub fn translate(&self, nexi: &str, interpretation: Interpretation) -> Result<Translation> {
        let query = parse(nexi).map_err(TrexError::Parse)?;
        let ctx = TranslationContext {
            summary: self.index.summary(),
            alias: self.index.alias(),
            dictionary: self.index.dictionary(),
            analyzer: &self.analyzer,
            interpretation,
        };
        Ok(translate(&query, &ctx))
    }

    /// Describes how `nexi` would be evaluated, without evaluating it.
    pub fn explain(&self, nexi: &str, opts: EvalOptions) -> Result<Explain> {
        let translation = self.translate(nexi, opts.interpretation)?;
        let summary = self.index.summary();
        let extents = translation
            .sids
            .iter()
            .map(|&sid| {
                (
                    sid,
                    summary.extent_xpath(sid),
                    summary.node(sid).extent_size,
                )
            })
            .collect();
        let mut terms = Vec::with_capacity(translation.terms.len());
        for &term in &translation.terms {
            let text = self
                .index
                .dictionary()
                .term(term)
                .unwrap_or("<unknown>")
                .to_string();
            let stats = self.index.term_stats(term)?;
            terms.push((term, text, stats.cf));
        }
        // One gate acquisition across both coverage checks and the strategy
        // resolution, so the explanation reflects a single list generation.
        let gate = self.index.maintenance().enter_read();
        let rpls_available = rpls_cover(self.index, &translation.sids, &translation.terms)?;
        let erpls_available = erpls_cover(self.index, &translation.sids, &translation.terms)?;
        let chosen = self.resolve_strategy(
            opts.strategy(Strategy::Auto),
            &translation.sids,
            &translation.terms,
        )?;
        drop(gate);
        Ok(Explain {
            translation,
            extents,
            terms,
            rpls_available,
            erpls_available,
            chosen,
        })
    }

    /// Evaluates `nexi` with the given options.
    pub fn evaluate(&self, nexi: &str, opts: EvalOptions) -> Result<QueryResult> {
        // The root "query" span opens before translation so the whole query
        // lifetime — translate included — is one span tree; child spans
        // (translate, gate_wait, evaluate:*) nest under it via the journal's
        // thread-local parent link.
        let journal = &self.index.telemetry().journal;
        let query_span = journal.span("query");
        let started = Instant::now();
        let translation = {
            let _translate_span = journal.span("translate");
            self.translate(nexi, opts.interpretation)?
        };
        self.evaluate_staged(Some(nexi), translation, opts, started.elapsed(), query_span)
    }

    /// Evaluates an already-translated query (its trace, if requested,
    /// reports a zero translate stage). Bypasses the workload profiler —
    /// it has no query text to record.
    pub fn evaluate_translated(
        &self,
        translation: Translation,
        opts: EvalOptions,
    ) -> Result<QueryResult> {
        let query_span = self.index.telemetry().journal.span("query");
        self.evaluate_staged(None, translation, opts, Duration::ZERO, query_span)
    }

    /// The shared evaluation path; `translate_time` is the already-spent
    /// translation wall-clock for the trace's stage breakdown, `nexi` the
    /// original query text when known (for workload profiling), and
    /// `query_span` the already-open root span (closed here, before the
    /// slow-query log collects its tree).
    fn evaluate_staged(
        &self,
        nexi: Option<&str>,
        translation: Translation,
        opts: EvalOptions,
        translate_time: Duration,
        query_span: SpanGuard<'_>,
    ) -> Result<QueryResult> {
        if !self.index.summary().is_nesting_free() {
            // "TReX uses only summaries in which there are no two XML
            // elements in the same extent where one encapsulates the other"
            // (§2.1) — ERA's per-extent cursor assumes it, and the redundant
            // lists are built from ERA.
            return Err(TrexError::MissingIndex(
                "the index's summary has nested extents; rebuild with an incoming (or larger-k suffix) summary to evaluate queries"
                    .into(),
            ));
        }
        let sids = &translation.sids;
        let terms = &translation.terms;
        let telemetry = self.index.telemetry();
        let root_span_id = query_span.id();
        // Hold the maintenance gate for the whole evaluation: the coverage
        // checks in `resolve_strategy` and the list reads of the chosen
        // strategy see one consistent generation of redundant lists, even
        // while a reconcile cycle rewrites them on another thread. (The gate
        // itself records the wait into `maint.read_gate_wait`.)
        let _gate = {
            let _gate_span = telemetry.journal.span("gate_wait");
            self.index.maintenance().enter_read()
        };
        // The list-set epoch this evaluation reads under; exact because the
        // gate is held. Doubles as the serving layer's cache key component.
        let generation = self.index.maintenance().generation();
        // One up-front poll catches queries that arrived already
        // over-budget (or spent their budget waiting at the gate) before
        // any list work starts; the strategies poll cooperatively from here.
        let deadline = Deadline::from_opt(opts.deadline);
        deadline.check()?;
        let strategy = self.resolve_strategy(opts, sids, terms)?;

        // Counter snapshots bracket the whole evaluation; the deltas are the
        // storage / index work attributable to this query (exact when the
        // index is otherwise idle). The slow-query log needs a trace too, so
        // snapshots are also taken whenever a query could qualify as slow.
        // The drift monitor piggybacks on the same snapshots: every traced
        // query feeds it, and 1-in-N untraced queries are sampled so the
        // cost model stays continuously checked under plain traffic.
        let slow_armed = telemetry.enabled() && telemetry.slow.threshold_ns() != u64::MAX;
        let explicit_trace = opts.trace || opts.trace_context.is_some();
        let drift_sampled = telemetry.enabled()
            && !explicit_trace
            && matches!(strategy, Strategy::Ta | Strategy::Merge)
            && telemetry.drift.should_sample();
        let journal_dropped0 = telemetry.journal.dropped();
        let want_trace = explicit_trace || slow_armed || drift_sampled;
        let before = if want_trace {
            Some((
                self.index.store().counters().snapshot(),
                self.index.counters().snapshot(),
            ))
        } else {
            None
        };

        let eval_span = telemetry.journal.span(match strategy {
            Strategy::Era => "evaluate:era",
            Strategy::Ta => "evaluate:ta",
            Strategy::Merge => "evaluate:merge",
            Strategy::Race => "evaluate:race",
            Strategy::Auto => unreachable!("resolved above"),
        });
        let mut rank_time = Duration::ZERO;
        let eval_started = Instant::now();
        let (mut answers, mut total, stats) = match strategy {
            Strategy::Era => {
                let (answers, stats) = self.run_era(sids, terms, deadline)?;
                let total = answers.len();
                let rank_started = Instant::now();
                let answers = match opts.k {
                    Some(k) => top_k(answers, k),
                    None => top_k(answers, usize::MAX),
                };
                rank_time = rank_started.elapsed();
                (answers, total, StrategyStats::Era(stats))
            }
            Strategy::Ta => {
                let k = opts.k.unwrap_or(usize::MAX);
                let rpls = self.index.rpls()?;
                let mut ta_opts = TaOptions::new(k);
                ta_opts.measure_heap = opts.measure_heap;
                let (answers, stats) = ta_with_cancel(&rpls, sids, terms, ta_opts, None, deadline)?
                    .expect("uncancelled run completes");
                let total = answers.len();
                (answers, total, StrategyStats::Ta(stats))
            }
            Strategy::Merge => {
                let erpls = self.index.erpls()?;
                let (mut answers, stats) = merge_with_cancel(&erpls, sids, terms, None, deadline)?
                    .expect("uncancelled run completes");
                let total = answers.len();
                let rank_started = Instant::now();
                if let Some(k) = opts.k {
                    answers.truncate(k);
                }
                rank_time = rank_started.elapsed();
                (answers, total, StrategyStats::Merge(stats))
            }
            Strategy::Race => self.run_race(sids, terms, opts, deadline)?,
            Strategy::Auto => unreachable!("resolved above"),
        };

        // Delta∪disk combine: documents ingested since the last fold are
        // invisible to every on-disk strategy, so their matches are folded
        // in here. Scoring goes through the same `TrexIndex::score` path as
        // ERA's (the delta carries exact per-term frequencies), so the
        // combined ranking is what ERA would produce after a fold — the
        // merge is rank-safe for TA too, because any union-top-k element is
        // either a delta match or already inside TA's disk top-k. The read
        // gate is still held, so the delta cannot change mid-combine and
        // `generation` keys the cache correctly.
        let delta = self.index.delta();
        if !delta.is_empty() {
            let rank_started = Instant::now();
            let matches = delta.matches(sids, terms);
            if !matches.is_empty() {
                let added = matches.len();
                for m in matches {
                    let mut score = 0.0f32;
                    for (j, &term) in terms.iter().enumerate() {
                        if m.tf[j] > 0 {
                            score += self.index.score(m.tf[j], term, m.element.length)?;
                        }
                    }
                    answers.push(Answer {
                        element: m.element,
                        sid: m.sid,
                        score,
                    });
                }
                answers = top_k(answers, opts.k.unwrap_or(usize::MAX));
                total = match &stats {
                    // TA (and a race it won) reports only what it returned;
                    // keep that convention for the combined result.
                    StrategyStats::Ta(_)
                    | StrategyStats::Race {
                        won_by: RaceWinner::Ta,
                        ..
                    } => answers.len(),
                    _ => total + added,
                };
            }
            rank_time += rank_started.elapsed();
        }

        let evaluate_time = eval_started.elapsed().saturating_sub(rank_time);
        drop(eval_span);

        let trace = before.map(|(storage0, index0)| QueryTrace {
            strategy: stats.name().to_string(),
            stages: StageTimings {
                translate: translate_time,
                evaluate: evaluate_time,
                rank: rank_time,
            },
            storage: self.index.store().counters().snapshot().delta(&storage0),
            index: self.index.counters().snapshot().delta(&index0),
            cost: stats.cost_units(),
        });

        // Cost-model drift: compare the §4 predictions against this query's
        // actual access counts — the continuous-production version of
        // `validate_costs`. The read gate is still held, so the list stats
        // describe exactly the generation the query evaluated under.
        if (explicit_trace && telemetry.enabled() || drift_sampled)
            && matches!(strategy, Strategy::Ta | Strategy::Merge)
        {
            if let Some(trace) = &trace {
                if let Err(e) = self.observe_drift(strategy, sids, terms, opts.k, trace) {
                    // Drift is observability; a racing list drop must not
                    // fail the query that already produced its answers.
                    let _ = e;
                }
            }
        }

        // Latency histograms: the stage durations were measured above either
        // way, so recording honours the pause switch without extra clocks.
        let total_time = translate_time + evaluate_time + rank_time;
        if telemetry.query.enabled() {
            let timers = &telemetry.query;
            timers.translate.record_duration(translate_time);
            timers.rank.record_duration(rank_time);
            timers.query.record_duration(total_time);
            let per_strategy = match &stats {
                StrategyStats::Era(_) => &timers.era_eval,
                StrategyStats::Ta(_) => &timers.ta_eval,
                StrategyStats::Merge(_) => &timers.merge_eval,
                StrategyStats::Race { .. } => &timers.race_eval,
                // Scatter stats are assembled in `crate::partition` from
                // per-partition results; they never come out of a single
                // engine's evaluation.
                StrategyStats::Scatter { .. } => unreachable!("scatter is built above the engine"),
            };
            per_strategy.record_duration(evaluate_time);
        }

        if let (Some(profiler), Some(nexi)) = (self.profiler, nexi) {
            // Record only after a successful evaluation: failed queries are
            // not workload the self-manager should optimise for.
            profiler.record(nexi, sids, terms, opts.k);
        }

        // Slow-query / trace capture: close the root span first so the
        // collected tree has every End event, then cut this query's subtree
        // out of the journal — once, shared by the slow log and the request
        // trace tree. The trace was built above whenever capture was possible.
        drop(query_span);
        let total_ns = u64::try_from(total_time.as_nanos()).unwrap_or(u64::MAX);
        let slow_hit = slow_armed && telemetry.slow.qualifies(total_ns);
        let want_tree = opts.trace_context.is_some() && root_span_id != 0;
        // Journal wrap-around between arming and collection silently loses
        // events; surface that as `truncated` rather than serving a tree
        // that looks complete.
        let journal_lost = telemetry.journal.dropped() > journal_dropped0;
        let (trace_tree, trace_truncated) = if want_tree || (slow_hit && root_span_id != 0) {
            let events = telemetry.journal.collect_tree(root_span_id);
            let (tree, structural) = tree_from_events(&events, root_span_id);
            let truncated = journal_lost || structural;
            if slow_hit {
                telemetry.slow.record(SlowQuery {
                    query: nexi.unwrap_or("<pre-translated>").to_string(),
                    strategy: stats.name().to_string(),
                    total: total_time,
                    trace: trace.clone().unwrap_or_default(),
                    spans: events,
                    trace_id: opts.trace_context.map(|c| c.trace_id),
                    truncated,
                });
            }
            (if want_tree { tree } else { None }, truncated)
        } else {
            if slow_hit {
                // Spans were paused for this query (root id 0): record the
                // timings without a tree, and say so.
                telemetry.slow.record(SlowQuery {
                    query: nexi.unwrap_or("<pre-translated>").to_string(),
                    strategy: stats.name().to_string(),
                    total: total_time,
                    trace: trace.clone().unwrap_or_default(),
                    spans: Vec::new(),
                    trace_id: opts.trace_context.map(|c| c.trace_id),
                    truncated: true,
                });
            }
            (None, journal_lost)
        };

        Ok(QueryResult {
            answers,
            total_answers: total,
            translation,
            stats,
            trace: if opts.trace { trace } else { None },
            generation,
            trace_tree,
            trace_truncated,
        })
    }

    /// Feeds the cost-model drift monitor from one traced TA or Merge query:
    /// reads each touched list's (entries, blocks) stats under the read gate
    /// already held by the caller and compares the §4 predictions against
    /// the trace's measured access counters.
    fn observe_drift(
        &self,
        strategy: Strategy,
        sids: &[trex_summary::Sid],
        terms: &[trex_text::TermId],
        k: Option<usize>,
        trace: &QueryTrace,
    ) -> Result<()> {
        let telemetry = self.index.telemetry();
        let drift = &telemetry.drift;
        let k = k.unwrap_or(usize::MAX);
        match strategy {
            Strategy::Ta => {
                let rpls = self.index.rpls()?;
                let mut lists = Vec::new();
                for &term in terms {
                    for &sid in sids {
                        if let Some(s) = rpls.list_stats(term, sid)? {
                            lists.push((s.entries, s.blocks));
                        }
                    }
                }
                if lists.is_empty() {
                    return Ok(());
                }
                let entries: Vec<u64> = lists.iter().map(|&(e, _)| e).collect();
                drift.observe(
                    DriftKind::TaEntries,
                    predicted_ta_accesses(&entries, k),
                    trace.cost.sorted_accesses + trace.cost.random_accesses,
                );
                drift.observe(
                    DriftKind::TaBlocks,
                    predicted_ta_block_reads(&lists, k),
                    trace.index.rpl_blocks,
                );
            }
            Strategy::Merge => {
                let erpls = self.index.erpls()?;
                let mut lists = Vec::new();
                for &term in terms {
                    for &sid in sids {
                        if let Some(s) = erpls.list_stats(term, sid)? {
                            lists.push((s.entries, s.blocks));
                        }
                    }
                }
                if lists.is_empty() {
                    return Ok(());
                }
                let entries: Vec<u64> = lists.iter().map(|&(e, _)| e).collect();
                let blocks: Vec<u64> = lists.iter().map(|&(_, b)| b).collect();
                drift.observe(
                    DriftKind::MergeEntries,
                    predicted_merge_accesses(&entries) as f64,
                    trace.cost.sorted_accesses + trace.cost.random_accesses,
                );
                drift.observe(
                    DriftKind::MergeBlocks,
                    predicted_merge_block_reads(&blocks) as f64,
                    trace.index.erpl_blocks,
                );
            }
            _ => {}
        }
        Ok(())
    }

    /// Runs TA and/or Merge (whichever the materialised lists allow) with
    /// tracing on and compares the measured sorted-access counts against the
    /// §4 cost-model predictions. Returns one [`CostValidation`] per
    /// strategy that could run; empty when neither list family covers the
    /// query.
    pub fn validate_costs(&self, nexi: &str, k: usize) -> Result<Vec<CostValidation>> {
        let translation = self.translate(nexi, Interpretation::default())?;
        let (sids, terms) = (translation.sids.clone(), translation.terms.clone());
        let mut validations = Vec::new();

        // Coverage checks and list-stat reads run under one gate
        // acquisition, then the gate is RELEASED before the evaluations —
        // `evaluate_translated` takes its own read guard, and the std lock
        // underneath is not reentrant.
        let gate = self.index.maintenance().enter_read();
        let ta_lists = if rpls_cover(self.index, &sids, &terms)? {
            let rpls = self.index.rpls()?;
            let mut lists = Vec::new();
            for &term in &terms {
                for &sid in &sids {
                    if let Some(s) = rpls.list_stats(term, sid)? {
                        lists.push((s.entries, s.blocks));
                    }
                }
            }
            Some(lists)
        } else {
            None
        };
        let merge_lists = if erpls_cover(self.index, &sids, &terms)? {
            let erpls = self.index.erpls()?;
            let mut lists = Vec::new();
            for &term in &terms {
                for &sid in &sids {
                    if let Some(s) = erpls.list_stats(term, sid)? {
                        lists.push((s.entries, s.blocks));
                    }
                }
            }
            Some(lists)
        } else {
            None
        };
        drop(gate);

        if let Some(lists) = ta_lists {
            let entries: Vec<u64> = lists.iter().map(|&(e, _)| e).collect();
            let result = self.evaluate_translated(
                translation.clone(),
                EvalOptions::new().k(k).strategy(Strategy::Ta).trace(true),
            )?;
            let trace = result.trace.expect("trace was requested");
            validations.push(CostValidation::new(
                "ta",
                trace.cost.sorted_accesses + trace.cost.random_accesses,
                predicted_ta_accesses(&entries, k),
            ));
            // Block-layer validation: the same Fagin depth, converted to
            // block fetches by each list's entries-per-block density.
            validations.push(CostValidation::new(
                "ta-blocks",
                trace.index.rpl_blocks,
                predicted_ta_block_reads(&lists, k),
            ));
        }

        if let Some(lists) = merge_lists {
            let entries: Vec<u64> = lists.iter().map(|&(e, _)| e).collect();
            let blocks: Vec<u64> = lists.iter().map(|&(_, b)| b).collect();
            let result = self.evaluate_translated(
                translation.clone(),
                EvalOptions::new()
                    .k(k)
                    .strategy(Strategy::Merge)
                    .trace(true),
            )?;
            let trace = result.trace.expect("trace was requested");
            validations.push(CostValidation::new(
                "merge",
                trace.cost.sorted_accesses + trace.cost.random_accesses,
                predicted_merge_accesses(&entries) as f64,
            ));
            // Merge fetches every block of every list exactly once, so this
            // prediction is exact like the entry-level one.
            validations.push(CostValidation::new(
                "merge-blocks",
                trace.index.erpl_blocks,
                predicted_merge_block_reads(&blocks) as f64,
            ));
        }

        Ok(validations)
    }

    /// ERA plus scoring of the matches (ERA itself returns tf vectors).
    fn run_era(
        &self,
        sids: &[trex_summary::Sid],
        terms: &[trex_text::TermId],
        deadline: Deadline,
    ) -> Result<(Vec<Answer>, EraStats)> {
        let started = std::time::Instant::now();
        let elements = self.index.elements()?;
        let postings = self.index.postings()?;
        let (matches, mut stats) = era_with_deadline(&elements, &postings, sids, terms, deadline)?;
        let mut answers = Vec::with_capacity(matches.len());
        for m in matches {
            let mut score = 0.0f32;
            for (j, &term) in terms.iter().enumerate() {
                if m.tf[j] > 0 {
                    score += self.index.score(m.tf[j], term, m.element.length)?;
                }
            }
            answers.push(Answer {
                element: m.element,
                sid: m.sid,
                score,
            });
        }
        stats.wall = started.elapsed();
        Ok((answers, stats))
    }

    /// TA vs Merge, in parallel, first finisher wins and cancels the other.
    fn run_race(
        &self,
        sids: &[trex_summary::Sid],
        terms: &[trex_text::TermId],
        opts: EvalOptions,
        deadline: Deadline,
    ) -> Result<(Vec<Answer>, usize, StrategyStats)> {
        use std::sync::atomic::{AtomicBool, Ordering};

        let started = std::time::Instant::now();
        let cancel = AtomicBool::new(false);
        let k = opts.k.unwrap_or(usize::MAX);
        let mut ta_opts = TaOptions::new(k);
        ta_opts.measure_heap = opts.measure_heap;

        type RaceResult = (Vec<Answer>, usize, StrategyStats);
        type RaceOutcome = Result<Option<RaceResult>>;
        let (tx, rx) = crossbeam::channel::bounded::<(RaceWinner, RaceOutcome)>(2);

        let outcome = crossbeam::thread::scope(|scope| {
            let cancel = &cancel;
            let index = self.index;
            {
                let tx = tx.clone();
                scope.spawn(move |_| {
                    let run = || -> RaceOutcome {
                        let rpls = index.rpls()?;
                        Ok(
                            ta_with_cancel(&rpls, sids, terms, ta_opts, Some(cancel), deadline)?
                                .map(|(answers, stats)| {
                                    let total = answers.len();
                                    (answers, total, StrategyStats::Ta(stats))
                                }),
                        )
                    };
                    let _ = tx.send((RaceWinner::Ta, run()));
                });
            }
            let merge_tx = tx.clone();
            scope.spawn(move |_| {
                let run = || -> RaceOutcome {
                    let erpls = index.erpls()?;
                    Ok(
                        merge_with_cancel(&erpls, sids, terms, Some(cancel), deadline)?.map(
                            |(mut answers, stats)| {
                                let total = answers.len();
                                if let Some(k) = opts.k {
                                    answers.truncate(k);
                                }
                                (answers, total, StrategyStats::Merge(stats))
                            },
                        ),
                    )
                };
                let _ = merge_tx.send((RaceWinner::Merge, run()));
            });
            drop(tx);

            // Take the first completed (non-cancelled) run; cancel the other.
            let mut first: Option<(RaceWinner, RaceResult)> = None;
            let mut first_error: Option<TrexError> = None;
            for (who, outcome) in rx.iter() {
                match outcome {
                    Ok(Some(result)) => {
                        if first.is_none() {
                            cancel.store(true, Ordering::Relaxed);
                            first = Some((who, result));
                        }
                    }
                    Ok(None) => {} // cancelled loser
                    Err(e) => {
                        cancel.store(true, Ordering::Relaxed);
                        if first_error.is_none() {
                            first_error = Some(e);
                        }
                    }
                }
            }
            match (first, first_error) {
                (Some(win), _) => Ok(win),
                (None, Some(e)) => Err(e),
                (None, None) => Err(TrexError::MissingIndex("race produced no result".into())),
            }
        })
        .expect("scoped race threads");

        let (won_by, (answers, total, winner_stats)) = outcome?;
        Ok((
            answers,
            total,
            StrategyStats::Race {
                won_by,
                winner: Box::new(winner_stats),
                wall: started.elapsed(),
            },
        ))
    }

    fn resolve_strategy(
        &self,
        opts: EvalOptions,
        sids: &[trex_summary::Sid],
        terms: &[trex_text::TermId],
    ) -> Result<Strategy> {
        match opts.strategy {
            Strategy::Auto => {
                let has_rpls = rpls_cover(self.index, sids, terms)?;
                let has_erpls = erpls_cover(self.index, sids, terms)?;
                // Paper §5.2: TA wins only for very small k; Merge dominates
                // otherwise. ERA is the universal fallback. TA is off the
                // table entirely beyond its 64-term bitmask — Auto must
                // degrade, not error.
                let ta_possible = has_rpls && terms.len() <= TA_MAX_TERMS;
                let small_k = matches!(opts.k, Some(k) if k <= 10);
                let chosen = if small_k && ta_possible {
                    Strategy::Ta
                } else if has_erpls {
                    Strategy::Merge
                } else if ta_possible {
                    Strategy::Ta
                } else {
                    Strategy::Era
                };
                if chosen == Strategy::Era && !sids.is_empty() && !terms.is_empty() {
                    // Redundant lists could have served this query but were
                    // absent (e.g. mid-reconcile, or not yet selected).
                    if let Some(profiler) = self.profiler {
                        profiler.counters().era_fallbacks.incr();
                    }
                }
                Ok(chosen)
            }
            Strategy::Ta => {
                if !rpls_cover(self.index, sids, terms)? {
                    return Err(TrexError::MissingIndex(
                        "TA requires the query's RPL lists; materialise them first".into(),
                    ));
                }
                Ok(Strategy::Ta)
            }
            Strategy::Merge => {
                if !erpls_cover(self.index, sids, terms)? {
                    return Err(TrexError::MissingIndex(
                        "Merge requires the query's ERPL lists; materialise them first".into(),
                    ));
                }
                Ok(Strategy::Merge)
            }
            Strategy::Race => {
                if !rpls_cover(self.index, sids, terms)? {
                    return Err(TrexError::MissingIndex(
                        "Race requires the query's RPL lists; materialise them first".into(),
                    ));
                }
                if !erpls_cover(self.index, sids, terms)? {
                    return Err(TrexError::MissingIndex(
                        "Race requires the query's ERPL lists; materialise them first".into(),
                    ));
                }
                Ok(Strategy::Race)
            }
            Strategy::Era => Ok(Strategy::Era),
        }
    }
}
