//! Materialisation of redundant (term, sid) lists.
//!
//! "TReX also uses ERA for generating or extending the RPLs and ERPLs
//! tables" (paper §3.2): one ERA pass over the query's (sids × terms) yields
//! every (element, term) pair with its tf, which is scored and split into
//! the per-(term, sid) lists that TA and Merge consume.

use std::collections::HashMap;

use trex_index::{ElementRef, TrexIndex};
use trex_summary::Sid;
use trex_text::TermId;

use crate::era::era;
use crate::Result;

/// Which redundant index to materialise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListKind {
    /// Relevance posting lists (descending score) — used by TA.
    Rpl,
    /// Element-relevance posting lists (position order) — used by Merge.
    Erpl,
    /// Both tables.
    Both,
}

/// Materialises the lists needed to evaluate `(sids, terms)` with TA
/// (`Rpl`), Merge (`Erpl`) or either (`Both`). Existing lists for the same
/// (term, sid) pairs are replaced. Returns the number of lists written.
pub fn materialize(
    index: &TrexIndex,
    sids: &[Sid],
    terms: &[TermId],
    kind: ListKind,
) -> Result<usize> {
    let elements = index.elements()?;
    let postings = index.postings()?;
    let (matches, _) = era(&elements, &postings, sids, terms)?;

    // Split matches into per-(term, sid) scored entry lists. ERA emits
    // elements in position order, so each list is already position-sorted —
    // exactly what ERPLs need; the RPL writer orders by score via its key.
    let mut lists: HashMap<(TermId, Sid), Vec<(ElementRef, f32)>> = HashMap::new();
    for (j, &term) in terms.iter().enumerate() {
        for m in &matches {
            let tf = m.tf[j];
            if tf == 0 {
                continue;
            }
            let score = index.score(tf, term, m.element.length)?;
            lists
                .entry((term, m.sid))
                .or_default()
                .push((m.element, score));
        }
    }

    let mut written = 0usize;
    let mut rpls = index.rpls()?;
    let mut erpls = index.erpls()?;
    // Every (term, sid) pair of the query gets a list — possibly empty, so
    // the registry records that the pair is covered (an empty list is still
    // complete knowledge: no element of that extent contains the term).
    for &term in terms {
        for &sid in sids {
            let entries = lists.remove(&(term, sid)).unwrap_or_default();
            match kind {
                ListKind::Rpl => {
                    rpls.put_list(term, sid, &entries)?;
                    written += 1;
                }
                ListKind::Erpl => {
                    erpls.put_list(term, sid, &entries)?;
                    written += 1;
                }
                ListKind::Both => {
                    rpls.put_list(term, sid, &entries)?;
                    erpls.put_list(term, sid, &entries)?;
                    written += 2;
                }
            }
        }
    }
    index.store().flush()?;
    Ok(written)
}

/// Whether every (term, sid) RPL needed by the query is materialised
/// (precondition for TA).
pub fn rpls_cover(index: &TrexIndex, sids: &[Sid], terms: &[TermId]) -> Result<bool> {
    let rpls = index.rpls()?;
    for &term in terms {
        for &sid in sids {
            if !rpls.has_list(term, sid)? {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Whether every (term, sid) ERPL needed by the query is materialised
/// (precondition for Merge).
pub fn erpls_cover(index: &TrexIndex, sids: &[Sid], terms: &[TermId]) -> Result<bool> {
    let erpls = index.erpls()?;
    for &term in terms {
        for &sid in sids {
            if !erpls.has_list(term, sid)? {
                return Ok(false);
            }
        }
    }
    Ok(true)
}
