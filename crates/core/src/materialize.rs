//! Materialisation of redundant (term, sid) lists.
//!
//! "TReX also uses ERA for generating or extending the RPLs and ERPLs
//! tables" (paper §3.2): one ERA pass over the query's (sids × terms) yields
//! every (element, term) pair with its tf, which is scored and split into
//! the per-(term, sid) lists that TA and Merge consume.
//!
//! The write path is split in two layers so callers control checkpointing:
//! [`materialize_batch`] writes lists (each under the index's maintenance
//! write gate) without flushing, and [`materialize`] adds the durability
//! flush — one WAL checkpoint — for direct callers. Reconcile cycles call
//! the batch form repeatedly and checkpoint once at the end of the cycle
//! instead of once per query.

use std::collections::HashMap;

use trex_index::blocks;
use trex_index::{ElementRef, TrexIndex};
use trex_summary::Sid;
use trex_text::TermId;

use crate::era::era;
use crate::Result;

/// Which redundant index to materialise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListKind {
    /// Relevance posting lists (descending score) — used by TA.
    Rpl,
    /// Element-relevance posting lists (position order) — used by Merge.
    Erpl,
    /// Both tables.
    Both,
}

/// The scored entry lists of one query, keyed by (term, sid). Every
/// (term, sid) pair of the query is present — possibly with an empty entry
/// vector, which is still complete knowledge: no element of that extent
/// contains the term.
pub type ScoredLists = HashMap<(TermId, Sid), Vec<(ElementRef, f32)>>;

/// Computes, without writing anything, the per-(term, sid) scored entry
/// lists an RPL/ERPL materialisation of `(sids, terms)` would contain.
/// ERA emits elements in position order, so each list is already
/// position-sorted — exactly what ERPLs need; the RPL writer orders by
/// score via its key.
pub fn collect_lists(index: &TrexIndex, sids: &[Sid], terms: &[TermId]) -> Result<ScoredLists> {
    let elements = index.elements()?;
    let postings = index.postings()?;
    let (matches, _) = era(&elements, &postings, sids, terms)?;

    let mut lists: ScoredLists = HashMap::new();
    for &term in terms {
        for &sid in sids {
            lists.insert((term, sid), Vec::new());
        }
    }
    for (j, &term) in terms.iter().enumerate() {
        for m in &matches {
            let tf = m.tf[j];
            if tf == 0 {
                continue;
            }
            let score = index.score(tf, term, m.element.length)?;
            lists
                .entry((term, m.sid))
                .or_default()
                .push((m.element, score));
        }
    }
    Ok(lists)
}

/// Exact on-disk footprint `RplTable::put_list` would record for this list —
/// shares the block encoder with the write path, so the advisor's budget
/// arithmetic (estimates vs the registry's actuals) balances to the byte.
pub fn rpl_list_bytes(term: TermId, sid: Sid, entries: &[(ElementRef, f32)]) -> u64 {
    let _ = (term, sid); // block keys are fixed-width; size is list-shape only
    blocks::rpl_list_size(entries).1
}

/// Exact on-disk footprint `ErplTable::put_list` would record for this list.
pub fn erpl_list_bytes(term: TermId, sid: Sid, entries: &[(ElementRef, f32)]) -> u64 {
    let _ = (term, sid);
    blocks::erpl_list_size(entries).1
}

/// Materialises the lists needed to evaluate `(sids, terms)` with TA
/// (`Rpl`), Merge (`Erpl`) or either (`Both`), **without flushing**:
/// durability is the caller's call (one [`Store::flush`] per batch of
/// materialisations, not one per query). Each list write holds the
/// maintenance write gate, so it is safe to run concurrently with query
/// serving. Existing lists for the same (term, sid) pairs are replaced.
/// Returns the number of lists written.
///
/// [`Store::flush`]: trex_storage::Store::flush
pub fn materialize_batch(
    index: &TrexIndex,
    sids: &[Sid],
    terms: &[TermId],
    kind: ListKind,
) -> Result<usize> {
    let mut lists = collect_lists(index, sids, terms)?;

    let mut written = 0usize;
    let mut rpls = index.rpls()?;
    let mut erpls = index.erpls()?;
    // Every (term, sid) pair of the query gets a list — possibly empty, so
    // the registry records that the pair is covered. One write-gate
    // acquisition per list keeps the exclusive windows short: queries
    // interleave between lists and fall back to ERA on partial coverage.
    for &term in terms {
        for &sid in sids {
            let entries = lists.remove(&(term, sid)).unwrap_or_default();
            if matches!(kind, ListKind::Rpl | ListKind::Both) {
                let _gate = index.maintenance().enter_write();
                rpls.put_list(term, sid, &entries)?;
                written += 1;
            }
            if matches!(kind, ListKind::Erpl | ListKind::Both) {
                let _gate = index.maintenance().enter_write();
                erpls.put_list(term, sid, &entries)?;
                written += 1;
            }
        }
    }
    Ok(written)
}

/// [`materialize_batch`] plus a durability flush (one WAL checkpoint) —
/// the behaviour direct callers (CLI `materialize`, tests) expect.
pub fn materialize(
    index: &TrexIndex,
    sids: &[Sid],
    terms: &[TermId],
    kind: ListKind,
) -> Result<usize> {
    let written = materialize_batch(index, sids, terms, kind)?;
    index.store().flush()?;
    Ok(written)
}

/// Whether every (term, sid) RPL needed by the query is materialised
/// (precondition for TA).
pub fn rpls_cover(index: &TrexIndex, sids: &[Sid], terms: &[TermId]) -> Result<bool> {
    let rpls = index.rpls()?;
    for &term in terms {
        for &sid in sids {
            if !rpls.has_list(term, sid)? {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Whether every (term, sid) ERPL needed by the query is materialised
/// (precondition for Merge).
pub fn erpls_cover(index: &TrexIndex, sids: &[Sid], terms: &[TermId]) -> Result<bool> {
    let erpls = index.erpls()?;
    for &term in terms {
        for &sid in sids {
            if !erpls.has_list(term, sid)? {
                return Ok(false);
            }
        }
    }
    Ok(true)
}
