//! ERA — the Exhaustive Retrieval Algorithm (paper Fig. 2).
//!
//! ERA zig-zags a set of extent iterators (one per sid) against a set of
//! posting-list iterators (one per term), accumulating a term-frequency
//! matrix `C[m][n]` for the elements currently "open" in each extent. When a
//! term position passes an element's end, the element is emitted with its tf
//! vector and the extent iterator jumps forward. The stored `m-pos` sentinel
//! at the end of every posting list flushes the final pending rows, exactly
//! as in the paper.
//!
//! ERA needs only the `Elements` and `PostingLists` tables; it is the
//! fallback strategy that can always run, and it is also how the
//! self-managing layer generates RPL/ERPL entries (§3.2).

use std::time::{Duration, Instant};

use trex_index::{ElementRef, ElementsTable, Position, PostingsTable};
use trex_summary::Sid;
use trex_text::TermId;

use crate::serve::deadline::{Deadline, CHECK_INTERVAL};
use crate::Result;

/// One ERA match: an element that contains at least one query term, with
/// its per-term frequencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EraMatch {
    /// The extent (summary node) the element came from.
    pub sid: Sid,
    /// The matched element.
    pub element: ElementRef,
    /// `tf[j]` = occurrences of `terms[j]` inside the element.
    pub tf: Vec<u32>,
}

/// Execution statistics for one ERA run.
#[derive(Debug, Clone, Copy, Default)]
pub struct EraStats {
    /// Wall-clock time of the run.
    pub wall: Duration,
    /// Posting positions consumed (including the m-pos sentinels).
    pub positions_read: u64,
    /// Extent-iterator seeks performed.
    pub element_seeks: u64,
    /// Matches emitted.
    pub matches: u64,
}

/// Per-sid iterator state: the current element, or `None` once exhausted
/// (the paper's dummy element at `m-pos` with length zero).
struct ExtentState {
    sid: Sid,
    current: Option<ElementRef>,
    /// Accumulated tf row for `current`.
    row: Vec<u32>,
    dirty: bool,
}

/// Runs ERA over `sids` × `terms`, returning every element (from the given
/// extents) containing at least one term, with term frequencies.
pub fn era(
    elements: &ElementsTable,
    postings: &PostingsTable,
    sids: &[Sid],
    terms: &[TermId],
) -> Result<(Vec<EraMatch>, EraStats)> {
    era_with_deadline(elements, postings, sids, terms, Deadline::none())
}

/// Like [`era`], with a cooperative [`Deadline`] polled every
/// [`CHECK_INTERVAL`] consumed positions; an expired run fails with
/// [`TrexError::DeadlineExceeded`](crate::TrexError::DeadlineExceeded).
pub fn era_with_deadline(
    elements: &ElementsTable,
    postings: &PostingsTable,
    sids: &[Sid],
    terms: &[TermId],
    deadline: Deadline,
) -> Result<(Vec<EraMatch>, EraStats)> {
    let start = Instant::now();
    let mut stats = EraStats::default();
    let n = terms.len();

    // Lines 3–6: extent iterators positioned at their first element.
    let mut extents: Vec<ExtentState> = Vec::with_capacity(sids.len());
    for &sid in sids {
        let mut iter = elements.extent(sid)?;
        let current = iter.next_element()?;
        stats.element_seeks += 1;
        extents.push(ExtentState {
            sid,
            current,
            row: vec![0; n],
            dirty: false,
        });
    }

    // Lines 7–10: term iterators with their first positions.
    let mut term_iters = Vec::with_capacity(n);
    let mut positions: Vec<Position> = Vec::with_capacity(n);
    for &term in terms {
        let mut it = postings.positions(term)?;
        let p = it.next_position()?;
        stats.positions_read += 1;
        term_iters.push(it);
        positions.push(p);
    }

    let mut out = Vec::new();

    if extents.is_empty() || n == 0 {
        stats.wall = start.elapsed();
        return Ok((out, stats));
    }

    // Lines 11–31: sweep positions in global order.
    loop {
        // Line 12: x = argmin over the current positions.
        let (x, pos_x) = positions
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|&(_, p)| p)
            .expect("at least one term");

        // Lines 13–29.
        for state in extents.iter_mut() {
            let Some(e) = state.current else {
                continue; // dummy element: nothing can match
            };
            let e_pos = e.end_position();
            let e_start = Position {
                doc: e.doc,
                offset: e.start(),
            };
            if pos_x < e_start {
                // Line 14–15: position before the element — nothing to do.
            } else if e.contains(pos_x) {
                // Lines 16–17.
                if !pos_x.is_max() {
                    state.row[x] += 1;
                    state.dirty = true;
                }
            } else if e_pos < pos_x {
                // Lines 18–28: the element is finished.
                if state.dirty {
                    out.push(EraMatch {
                        sid: state.sid,
                        element: e,
                        tf: std::mem::replace(&mut state.row, vec![0; n]),
                    });
                    stats.matches += 1;
                    state.dirty = false;
                }
                // Line 24: jump to the first element that could contain pos_x.
                state.current = if pos_x.is_max() {
                    None
                } else {
                    stats.element_seeks += 1;
                    elements.next_element_at_or_after(state.sid, pos_x)?
                };
                // Lines 25–27: the new element may already contain pos_x.
                if let Some(e2) = state.current {
                    if e2.contains(pos_x) && !pos_x.is_max() {
                        state.row[x] += 1;
                        state.dirty = true;
                    }
                }
            }
        }

        // Line 30–31: advance term x; stop once every term has reached m-pos.
        if pos_x.is_max() {
            // Processing m-pos flushed all pending rows above; every other
            // term already sits at m-pos (it was the minimum), so we're done.
            break;
        }
        positions[x] = term_iters[x].next_position()?;
        stats.positions_read += 1;
        if stats.positions_read % CHECK_INTERVAL == 0 {
            deadline.check()?;
        }
    }

    stats.wall = start.elapsed();
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use trex_index::{IndexBuilder, TrexIndex};
    use trex_storage::Store;
    use trex_summary::{AliasMap, SummaryKind};
    use trex_text::Analyzer;

    fn build(name: &str, docs: &[&str]) -> (TrexIndex, std::path::PathBuf) {
        let mut path = std::env::temp_dir();
        path.push(format!("trex-era-{name}-{}", std::process::id()));
        let store = Store::create(&path, 128).unwrap();
        let mut b = IndexBuilder::new(
            &store,
            SummaryKind::Incoming,
            AliasMap::identity(),
            Analyzer::verbatim(),
        )
        .unwrap();
        for d in docs {
            b.add_document(d).unwrap();
        }
        b.finish().unwrap();
        (TrexIndex::open(Arc::new(store)).unwrap(), path)
    }

    #[test]
    fn finds_elements_containing_terms_with_tf() {
        let docs = [
            "<a><s>cat dog</s><s>cat cat</s><s>bird</s></a>",
            "<a><s>dog dog cat</s></a>",
        ];
        let (index, path) = build("basic", &docs);
        let s_sid = index.summary().sids_with_label("s")[0];
        let cat = index.dictionary().lookup("cat").unwrap();
        let dog = index.dictionary().lookup("dog").unwrap();

        let elements = index.elements().unwrap();
        let postings = index.postings().unwrap();
        let (matches, stats) = era(&elements, &postings, &[s_sid], &[cat, dog]).unwrap();

        // s1: cat=1 dog=1; s2: cat=2; s4(doc1): cat=1 dog=2. s3 (bird) absent.
        assert_eq!(matches.len(), 3);
        assert_eq!(stats.matches, 3);
        let tfs: Vec<(u32, Vec<u32>)> = matches
            .iter()
            .map(|m| (m.element.doc, m.tf.clone()))
            .collect();
        assert_eq!(tfs, vec![(0, vec![1, 1]), (0, vec![2, 0]), (1, vec![1, 2])]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn nested_extents_both_match() {
        let docs = ["<a><outer>x <inner>x y</inner></outer></a>"];
        let (index, path) = build("nested", &docs);
        let outer = index.summary().sids_with_label("outer")[0];
        let inner = index.summary().sids_with_label("inner")[0];
        let x = index.dictionary().lookup("x").unwrap();

        let elements = index.elements().unwrap();
        let postings = index.postings().unwrap();
        let (matches, _) = era(&elements, &postings, &[outer, inner], &[x]).unwrap();
        assert_eq!(matches.len(), 2);
        let by_sid: Vec<(Sid, u32)> = matches.iter().map(|m| (m.sid, m.tf[0])).collect();
        assert!(by_sid.contains(&(outer, 2)));
        assert!(by_sid.contains(&(inner, 1)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn term_outside_extents_is_ignored() {
        let docs = ["<a><s>inside</s><t>outside</t></a>"];
        let (index, path) = build("outside", &docs);
        let s_sid = index.summary().sids_with_label("s")[0];
        let outside = index.dictionary().lookup("outside").unwrap();
        let elements = index.elements().unwrap();
        let postings = index.postings().unwrap();
        let (matches, _) = era(&elements, &postings, &[s_sid], &[outside]).unwrap();
        assert!(matches.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_inputs_are_fine() {
        let docs = ["<a><s>word</s></a>"];
        let (index, path) = build("empty", &docs);
        let s_sid = index.summary().sids_with_label("s")[0];
        let word = index.dictionary().lookup("word").unwrap();
        let elements = index.elements().unwrap();
        let postings = index.postings().unwrap();
        let (m, _) = era(&elements, &postings, &[], &[word]).unwrap();
        assert!(m.is_empty());
        let (m, _) = era(&elements, &postings, &[s_sid], &[]).unwrap();
        assert!(m.is_empty());
        // Unknown sid / exhausted extents.
        let (m, _) = era(&elements, &postings, &[9999], &[word]).unwrap();
        assert!(m.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn element_ending_exactly_at_position_is_counted_after_jump() {
        // Force a jump: extent elements are far apart; a term position lands
        // exactly on the end of a later element.
        let docs = ["<a><s>m</s><q>filler words here</q><s>x y target</s></a>"];
        let (index, path) = build("jump", &docs);
        let s_sid = index.summary().sids_with_label("s")[0];
        let target = index.dictionary().lookup("target").unwrap();
        let elements = index.elements().unwrap();
        let postings = index.postings().unwrap();
        let (matches, _) = era(&elements, &postings, &[s_sid], &[target]).unwrap();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].tf, vec![1]);
        // "target" is the last token of the second s element.
        assert_eq!(matches[0].element.end, matches[0].element.start() + 2);
        std::fs::remove_file(&path).ok();
    }
}
