//! Partitioned serving: N independent stores behind one rank-safe façade.
//!
//! A [`PartitionedSystem`] owns N complete single-store systems (each with
//! its own pager, buffer pool, WAL, delta index and profiler) and makes
//! them answer as one. Documents are routed to partitions by a pure hash of
//! their **global** doc id ([`trex_index::partition_of`]) at build time and
//! at live-ingest time, so a document's home partition never moves. Every
//! partition store carries the **same** catalog — global dictionary,
//! summary, alias map, collection statistics and per-term df/cf — written
//! by the partitioned [`trex_index::IndexBuilder`], so a given element
//! scores identically no matter which partition holds it.
//!
//! # Rank safety
//!
//! With shared scoring inputs and disjoint documents, the global top-k is a
//! subset of the union of per-partition top-k lists: any answer ranked
//! above an answer in partition p's top-k would itself be in p's top-k.
//! [`merge_topk`] therefore performs a plain k-way merge of the
//! rank-sorted per-partition streams under [`Answer::rank_cmp`] — score
//! descending, then global document order — and reproduces the
//! single-store answer byte-identically. No answer can tie *across*
//! partitions on the tiebreak key, because the key ends in the (globally
//! unique) document id.
//!
//! # Self-management
//!
//! [`PartitionedSelfManager`] runs the §4 advisor per partition under a
//! **global** byte budget, re-split every cycle proportionally to
//! per-partition workload heat: the profiler's decayed shape weights,
//! scaled by the partition-local extent sizes those shapes touch (the
//! profiled weights themselves are identical across partitions — every
//! partition sees every query — so locality lives entirely in the extent
//! term).

use std::collections::BinaryHeap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use trex_index::TrexIndex;
use trex_obs::TraceNode;

use crate::answer::Answer;
use crate::engine::{EvalOptions, QueryEngine, QueryResult, StrategyStats};
use crate::executor::run_scoped;
use crate::ingest::{fold_once, FoldReport};
use crate::selfmanage::{
    cycle_record, reconcile_once, CostCache, ManagerHooks, ReconcileReport, SelfManageOptions,
    WorkloadProfiler,
};
use crate::{RaceWinner, Result, TrexError};
use trex_obs::{CycleRecord, InFlight, SplitRecord};

/// The store path of partition `i` for a system whose single-store path
/// would be `base`: `base` with `.p{i}` appended (`corpus.trex` →
/// `corpus.trex.p0`, `corpus.trex.p1`, …). Appending (rather than
/// replacing an extension) keeps sibling systems with different base names
/// from colliding, and lets openers probe partition counts by existence.
pub fn partition_store_path(base: &Path, partition: usize) -> PathBuf {
    let mut os = base.as_os_str().to_os_string();
    os.push(format!(".p{partition}"));
    PathBuf::from(os)
}

/// One partition: a complete single-store index plus its own workload
/// profiler (each partition profiles independently so the self-manager can
/// weigh budgets by partition-local heat).
pub struct Partition {
    index: Arc<TrexIndex>,
    profiler: Arc<WorkloadProfiler>,
}

impl Partition {
    /// Wraps an opened index and its profiler as one partition.
    pub fn new(index: Arc<TrexIndex>, profiler: Arc<WorkloadProfiler>) -> Partition {
        Partition { index, profiler }
    }

    /// The partition's index.
    pub fn index(&self) -> &Arc<TrexIndex> {
        &self.index
    }

    /// The partition's workload profiler.
    pub fn profiler(&self) -> &Arc<WorkloadProfiler> {
        &self.profiler
    }
}

/// N partitions serving as one system: scatter-gather evaluation, routed
/// ingest, per-partition folds.
pub struct PartitionedSystem {
    parts: Vec<Partition>,
    /// Next **global** doc id to hand out; advanced only after a successful
    /// ingest so failed documents (unknown path, WAL error) do not burn
    /// ids — same semantics as the single-store allocator.
    next_doc_id: AtomicU32,
    /// Serialises id allocation + routed ingest so two concurrent ingests
    /// cannot race the watermark (each partition additionally serialises
    /// its own WAL appends, but the global id decision must be atomic with
    /// the routed write).
    ingest_lock: Mutex<()>,
}

impl PartitionedSystem {
    /// Assembles a system from opened partitions. The global doc-id
    /// watermark resumes from the highest next-id any partition persisted
    /// or recovered — ids are global, so the maximum over partitions is
    /// exactly the single-store watermark.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn from_parts(parts: Vec<Partition>) -> PartitionedSystem {
        assert!(!parts.is_empty(), "a partitioned system needs >= 1 store");
        let next = parts
            .iter()
            .map(|p| p.index.delta().peek_next_doc_id().unwrap_or(u32::MAX))
            .max()
            .expect("non-empty parts");
        PartitionedSystem {
            parts,
            next_doc_id: AtomicU32::new(next),
            ingest_lock: Mutex::new(()),
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// Partition `i`.
    pub fn part(&self, i: usize) -> &Partition {
        &self.parts[i]
    }

    /// All partitions, in routing order.
    pub fn parts(&self) -> &[Partition] {
        &self.parts
    }

    /// The system's maintenance generation: the maximum over partitions.
    /// Any partition committing a reconcile or an ingest bumps the
    /// maximum, so a result cache keyed by this value invalidates exactly
    /// when any partition's answer could change.
    pub fn generation(&self) -> u64 {
        self.parts
            .iter()
            .map(|p| p.index.maintenance().generation())
            .max()
            .unwrap_or(0)
    }

    /// Evaluates `nexi` on every partition in parallel and merges the
    /// rank-sorted per-partition streams into the global answer (see the
    /// module docs for why the merge is exact). Single-partition systems
    /// evaluate directly — no scatter overhead, and the result's stats are
    /// the strategy's own rather than a one-element scatter.
    pub fn evaluate(&self, nexi: &str, opts: EvalOptions) -> Result<QueryResult> {
        if self.parts.len() == 1 {
            let part = &self.parts[0];
            return QueryEngine::new(&part.index)
                .with_profiler(&part.profiler)
                .evaluate(nexi, opts);
        }
        let started = Instant::now();
        let n = self.parts.len();
        let results = run_scoped(n, n, |i| {
            let part = &self.parts[i];
            QueryEngine::new(&part.index)
                .with_profiler(&part.profiler)
                .evaluate(nexi, opts)
        });
        let mut per_part = Vec::with_capacity(n);
        for result in results {
            per_part.push(result?);
        }
        Ok(merge_results(per_part, opts, started.elapsed()))
    }

    /// Evaluates a batch of NEXI queries on `threads` worker threads (the
    /// executor's scoped pool), returning per-query results in input order.
    /// Each query still scatters to every partition; the scoped pools
    /// compose, so total parallelism is `threads × partitions`.
    pub fn evaluate_batch<Q: AsRef<str> + Sync>(
        &self,
        queries: &[Q],
        opts: EvalOptions,
        threads: usize,
    ) -> Vec<Result<QueryResult>> {
        run_scoped(queries.len(), threads.max(1), |i| {
            self.evaluate(queries[i].as_ref(), opts)
        })
    }
}

/// Routed live ingestion and folding. These return the index crate's error
/// type directly: no query machinery is involved, and callers (the serving
/// layer's ingest endpoint) map id exhaustion to their own vocabulary.
impl PartitionedSystem {
    /// Ingests one document: allocates the next global id, routes it to
    /// its home partition by [`trex_index::partition_of`], and ingests
    /// there under the explicit id. Returns the global id.
    pub fn ingest_document(&self, xml: &str) -> std::result::Result<u32, trex_index::IndexError> {
        let _serial = self.ingest_lock.lock();
        let doc_id = self.next_doc_id.load(Ordering::Acquire);
        if doc_id == u32::MAX {
            return Err(trex_index::IndexError::DocIdsExhausted);
        }
        let p = trex_index::partition_of(doc_id, self.parts.len());
        self.parts[p].index.ingest_document_with_id(doc_id, xml)?;
        self.next_doc_id.store(doc_id + 1, Ordering::Release);
        Ok(doc_id)
    }

    /// Folds every partition's delta into its tables (partitions with an
    /// empty delta report `None`). Folds are independent — each partition's
    /// fold sees only documents routed to it, and scoring inputs are
    /// frozen (see `crate::ingest` docs) — so per-partition folds preserve
    /// cross-partition byte identity for all searchable terms.
    pub fn fold_once(&self) -> Result<Vec<Option<FoldReport>>> {
        self.parts.iter().map(|p| fold_once(&p.index)).collect()
    }
}

/// K-way merges rank-sorted answer streams into one rank-sorted stream,
/// truncated to `k` (`None` keeps everything). Exact for streams with
/// disjoint documents and a shared scoring catalog (module docs); the
/// public contract is merely "stable merge under [`Answer::rank_cmp`],
/// ties broken by stream index".
pub fn merge_topk(streams: &[Vec<Answer>], k: Option<usize>) -> Vec<Answer> {
    struct Head {
        answer: Answer,
        stream: usize,
        pos: usize,
    }
    // BinaryHeap is a max-heap; invert rank_cmp so the best-ranked head
    // (least under rank_cmp) surfaces first.
    impl Ord for Head {
        fn cmp(&self, other: &Head) -> std::cmp::Ordering {
            self.answer
                .rank_cmp(&other.answer)
                .then(self.stream.cmp(&other.stream))
                .reverse()
        }
    }
    impl PartialOrd for Head {
        fn partial_cmp(&self, other: &Head) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl PartialEq for Head {
        fn eq(&self, other: &Head) -> bool {
            self.cmp(other) == std::cmp::Ordering::Equal
        }
    }
    impl Eq for Head {}

    let limit = k.unwrap_or(usize::MAX);
    let mut heap = BinaryHeap::with_capacity(streams.len());
    for (s, stream) in streams.iter().enumerate() {
        if let Some(&answer) = stream.first() {
            heap.push(Head {
                answer,
                stream: s,
                pos: 0,
            });
        }
    }
    let mut merged = Vec::with_capacity(limit.min(streams.iter().map(Vec::len).sum()));
    while let Some(head) = heap.pop() {
        merged.push(head.answer);
        if merged.len() >= limit {
            break;
        }
        if let Some(&answer) = streams[head.stream].get(head.pos + 1) {
            heap.push(Head {
                answer,
                stream: head.stream,
                pos: head.pos + 1,
            });
        }
    }
    merged
}

/// Combines per-partition results into the system answer.
///
/// * `answers`: [`merge_topk`] under the global `k`.
/// * `total_answers`: exact when every partition reported an exact total
///   (ERA/Merge — sum them); once any partition ran TA (whose total is
///   just its returned count), only the merged count is honest.
/// * `translation`: every partition translated against the identical
///   shared catalog, so the first result's translation is *the*
///   translation.
/// * `generation`: the maximum per-partition generation, matching
///   [`PartitionedSystem::generation`]'s cache key.
/// * `trace`: the slowest partition's trace, if tracing was on — the one
///   that determined the scatter's wall time.
/// * `trace_tree`: when the request carried a trace context, a synthetic
///   `scatter` root with exactly one `partition:{i}` child per partition,
///   each wrapping that partition's own span tree — one tree for the whole
///   fan-out, truncated if any partition's capture was.
fn merge_results(per_part: Vec<QueryResult>, opts: EvalOptions, wall: Duration) -> QueryResult {
    let streams: Vec<Vec<Answer>> = per_part.iter().map(|r| r.answers.clone()).collect();
    let answers = merge_topk(&streams, opts.k);
    let any_ta = per_part.iter().any(|r| {
        matches!(
            r.stats,
            StrategyStats::Ta(_)
                | StrategyStats::Race {
                    won_by: RaceWinner::Ta,
                    ..
                }
        )
    });
    let total_answers = if any_ta {
        answers.len()
    } else {
        per_part.iter().map(|r| r.total_answers).sum()
    };
    let generation = per_part.iter().map(|r| r.generation).max().unwrap_or(0);
    let slowest = per_part
        .iter()
        .enumerate()
        .max_by_key(|(_, r)| r.stats.wall())
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut per_part = per_part;
    let trace = per_part[slowest].trace.take();
    let translation = per_part[0].translation.clone();
    let trace_truncated = per_part.iter().any(|r| r.trace_truncated);
    let trace_tree = if opts.trace_context.is_some() {
        let wall_us = u64::try_from(wall.as_micros()).unwrap_or(u64::MAX);
        let children = per_part
            .iter_mut()
            .enumerate()
            .map(|(i, r)| {
                let mut child = TraceNode {
                    name: format!("partition:{i}"),
                    start_us: 0,
                    duration_us: 0,
                    children: Vec::new(),
                };
                if let Some(tree) = r.trace_tree.take() {
                    child.duration_us = tree.duration_us;
                    child.children.push(tree);
                }
                child
            })
            .collect();
        Some(TraceNode {
            name: "scatter".to_string(),
            start_us: 0,
            duration_us: wall_us,
            children,
        })
    } else {
        None
    };
    let stats = StrategyStats::Scatter {
        partitions: per_part.len(),
        per_part: per_part.into_iter().map(|r| r.stats).collect(),
        wall,
    };
    QueryResult {
        answers,
        total_answers,
        translation,
        stats,
        trace,
        generation,
        trace_tree,
        trace_truncated,
    }
}

/// One partition's share of a budget split, for observability.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionBudget {
    /// Partition index.
    pub partition: usize,
    /// The heat the split was computed from (unnormalised).
    pub heat: f64,
    /// The byte budget this partition's advisor ran under.
    pub budget_bytes: u64,
}

/// One completed partitioned reconcile cycle.
#[derive(Debug, Clone)]
pub struct PartitionedCycle {
    /// Cycle ordinal (1-based).
    pub cycle: u64,
    /// The budget split the cycle used.
    pub budgets: Vec<PartitionBudget>,
    /// Per-partition reconcile reports, in partition order.
    pub reports: Vec<ReconcileReport>,
    /// Wall-clock time of the whole cycle (all partitions).
    pub wall: Duration,
}

/// Splits `total_bytes` across partitions proportionally to workload heat.
///
/// A partition's heat is Σ over its profiled shapes of `weight ×
/// Σ_sid extent_size(sid)`: the decayed observation weight times how many
/// *partition-local* elements the shape's extents actually hold. Profiled
/// weights are identical across partitions (every partition evaluates every
/// query), so the extent term is what differentiates — a partition holding
/// more of the hot extents gets more budget to materialise them. Falls back
/// to an equal split when no heat is measurable (cold start, empty
/// profiles, unresolvable shapes).
pub fn split_budget(
    system: &PartitionedSystem,
    total_bytes: u64,
    max_queries: usize,
) -> Vec<PartitionBudget> {
    let n = system.partitions();
    let heats: Vec<f64> = system
        .parts()
        .iter()
        .map(|p| partition_heat(p, max_queries))
        .collect();
    let sum: f64 = heats.iter().sum();
    let mut budgets: Vec<PartitionBudget> = Vec::with_capacity(n);
    if sum <= 0.0 || !sum.is_finite() {
        let share = total_bytes / n as u64;
        for (i, &heat) in heats.iter().enumerate() {
            budgets.push(PartitionBudget {
                partition: i,
                heat,
                budget_bytes: share,
            });
        }
        return budgets;
    }
    for (i, &heat) in heats.iter().enumerate() {
        let share = (total_bytes as f64 * (heat / sum)).floor() as u64;
        budgets.push(PartitionBudget {
            partition: i,
            heat,
            budget_bytes: share,
        });
    }
    budgets
}

/// The workload heat of one partition (see [`split_budget`]). Shapes whose
/// translation or extent scan fails contribute zero rather than failing the
/// cycle — the advisor must keep running on whatever is measurable.
fn partition_heat(part: &Partition, max_queries: usize) -> f64 {
    let engine = QueryEngine::new(&part.index);
    let elements = match part.index.elements() {
        Ok(t) => t,
        Err(_) => return 0.0,
    };
    let mut heat = 0.0;
    for shape in part.profiler.profile(max_queries) {
        let Ok(translation) = engine.translate(&shape.nexi, Default::default()) else {
            continue;
        };
        let mut extent_elems = 0u64;
        for &sid in &translation.sids {
            extent_elems += elements.extent_size(sid).unwrap_or(0);
        }
        heat += shape.weight * extent_elems as f64;
    }
    heat
}

/// Runs one reconcile cycle across every partition: split the global
/// budget by heat, then [`reconcile_once`] per partition under its share.
/// `caches` must have one [`CostCache`] per partition and persists across
/// cycles (measured ERA timings are expensive; the per-partition cache
/// invalidates itself on ingest epoch changes).
pub fn reconcile_partitioned(
    system: &PartitionedSystem,
    opts: &SelfManageOptions,
    caches: &mut [CostCache],
    cycle: u64,
) -> Result<PartitionedCycle> {
    assert_eq!(
        caches.len(),
        system.partitions(),
        "one cost cache per partition"
    );
    let started = Instant::now();
    let budgets = split_budget(system, opts.budget_bytes, opts.max_queries);
    let mut reports = Vec::with_capacity(system.partitions());
    for (part, (budget, cache)) in system
        .parts()
        .iter()
        .zip(budgets.iter().zip(caches.iter_mut()))
    {
        let part_opts = SelfManageOptions {
            budget_bytes: budget.budget_bytes,
            ..*opts
        };
        reports.push(reconcile_once(
            &part.index,
            &part.profiler,
            &part_opts,
            cache,
        )?);
    }
    Ok(PartitionedCycle {
        cycle,
        budgets,
        reports,
        wall: started.elapsed(),
    })
}

/// Converts a completed partitioned cycle into one journal entry: the
/// per-partition budget splits become [`SplitRecord`]s, and each
/// partition's shapes/deltas are concatenated with the delta records'
/// `partition` field rewritten to the owning partition.
pub fn partitioned_cycle_record(cycle: &PartitionedCycle, budget_bytes: u64) -> CycleRecord {
    let mut record = CycleRecord {
        cycle: cycle.cycle,
        unix_ms: trex_obs::unix_ms(),
        budget_bytes,
        wall_us: u64::try_from(cycle.wall.as_micros()).unwrap_or(u64::MAX),
        ..CycleRecord::default()
    };
    record.splits = cycle
        .budgets
        .iter()
        .map(|b| SplitRecord {
            partition: b.partition as u64,
            heat: b.heat,
            budget_bytes: b.budget_bytes,
        })
        .collect();
    for (i, (report, budget)) in cycle.reports.iter().zip(&cycle.budgets).enumerate() {
        let part = cycle_record(report, budget.budget_bytes, cycle.cycle);
        record.generation = record.generation.max(part.generation);
        record.bytes_used += part.bytes_used;
        record.lists_materialized += part.lists_materialized;
        record.lists_dropped += part.lists_dropped;
        record.gate_pause_us += part.gate_pause_us;
        record.shapes.extend(part.shapes);
        record.deltas.extend(part.deltas.into_iter().map(|mut d| {
            d.partition = i as u64;
            d
        }));
    }
    record
}

#[derive(Debug, Default)]
struct PartitionedManagerStatus {
    last: Option<PartitionedCycle>,
    last_error: Option<String>,
}

/// Background self-management for a partitioned system: every
/// `opts.interval`, one [`reconcile_partitioned`] cycle — re-splitting the
/// global `opts.budget_bytes` by current heat each time, so budget follows
/// the workload as it shifts between partitions. Stops (and joins) on
/// [`stop`](PartitionedSelfManager::stop) or drop.
pub struct PartitionedSelfManager {
    stop: Arc<AtomicBool>,
    status: Arc<Mutex<PartitionedManagerStatus>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl PartitionedSelfManager {
    /// Starts the background loop. Touches every partition's RPL/ERPL
    /// tables up front so table creation (a structural store write) never
    /// races concurrent serving.
    pub fn start(
        system: Arc<PartitionedSystem>,
        opts: SelfManageOptions,
    ) -> Result<PartitionedSelfManager> {
        PartitionedSelfManager::start_with(system, opts, ManagerHooks::none())
    }

    /// [`PartitionedSelfManager::start`] with observability hooks: each
    /// completed cycle records one aggregated [`CycleRecord`] (budget
    /// splits included) into `hooks.journal`, and `hooks.health`'s
    /// `reconciles_in_flight` gauge brackets every cycle.
    pub fn start_with(
        system: Arc<PartitionedSystem>,
        opts: SelfManageOptions,
        hooks: ManagerHooks,
    ) -> Result<PartitionedSelfManager> {
        for part in system.parts() {
            part.index.rpls()?;
            part.index.erpls()?;
        }
        let stop = Arc::new(AtomicBool::new(false));
        let status = Arc::new(Mutex::new(PartitionedManagerStatus::default()));
        let handle = {
            let stop = stop.clone();
            let status = status.clone();
            std::thread::Builder::new()
                .name("trex-selfmanage-part".into())
                .spawn(move || {
                    let mut caches: Vec<CostCache> =
                        (0..system.partitions()).map(|_| CostCache::new()).collect();
                    let mut cycle = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        // Sleep in slices so stop() returns promptly even
                        // with long intervals.
                        let wake = Instant::now() + opts.interval;
                        while Instant::now() < wake {
                            if stop.load(Ordering::Relaxed) {
                                return;
                            }
                            std::thread::sleep(Duration::from_millis(10).min(opts.interval));
                        }
                        cycle += 1;
                        let _busy = hooks
                            .health
                            .as_ref()
                            .map(|h| InFlight::enter(&h.reconciles_in_flight));
                        match reconcile_partitioned(&system, &opts, &mut caches, cycle) {
                            Ok(report) => {
                                if let Some(journal) = &hooks.journal {
                                    journal.record(partitioned_cycle_record(
                                        &report,
                                        opts.budget_bytes,
                                    ));
                                }
                                let mut s = status.lock();
                                s.last = Some(report);
                                s.last_error = None;
                            }
                            Err(e) => status.lock().last_error = Some(e.to_string()),
                        }
                    }
                })
                .map_err(|e| {
                    TrexError::Unsupported(format!("cannot spawn self-manage thread: {e}"))
                })?
        };
        Ok(PartitionedSelfManager {
            stop,
            status,
            handle: Some(handle),
        })
    }

    /// The most recent completed cycle, if any.
    pub fn last_cycle(&self) -> Option<PartitionedCycle> {
        self.status.lock().last.clone()
    }

    /// The most recent cycle error, if the last cycle failed.
    pub fn last_error(&self) -> Option<String> {
        self.status.lock().last_error.clone()
    }

    /// Stops the background thread and waits for it to finish.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for PartitionedSelfManager {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_index::ElementRef;

    fn answer(score: f32, doc: u32, end: u32, sid: u32) -> Answer {
        Answer {
            element: ElementRef {
                doc,
                end,
                length: 1,
            },
            sid,
            score,
        }
    }

    #[test]
    fn merge_reproduces_global_sort_with_ties_at_the_boundary() {
        // Two streams with a three-way score tie straddling the k boundary;
        // the tiebreak must be global doc order, not stream arrival order.
        let a = vec![
            answer(0.9, 2, 5, 1),
            answer(0.5, 8, 3, 1),
            answer(0.5, 12, 3, 1),
        ];
        let b = vec![answer(0.7, 1, 4, 1), answer(0.5, 3, 2, 1)];
        let merged = merge_topk(&[a.clone(), b.clone()], Some(3));
        assert_eq!(
            merged,
            vec![
                answer(0.9, 2, 5, 1),
                answer(0.7, 1, 4, 1),
                answer(0.5, 3, 2, 1)
            ]
        );
        // Unlimited merge equals the fully sorted union.
        let mut union: Vec<Answer> = a.iter().chain(b.iter()).copied().collect();
        union.sort_unstable_by(|x, y| x.rank_cmp(y));
        assert_eq!(merge_topk(&[a, b], None), union);
    }

    #[test]
    fn merge_handles_empty_and_single_streams() {
        assert!(merge_topk(&[], Some(5)).is_empty());
        assert!(merge_topk(&[vec![], vec![]], None).is_empty());
        let only = vec![answer(0.4, 1, 1, 2), answer(0.2, 2, 1, 2)];
        assert_eq!(merge_topk(&[vec![], only.clone()], Some(10)), only);
    }

    #[test]
    fn partition_store_paths_are_distinct_and_deterministic() {
        let base = Path::new("/tmp/corpus.trex");
        assert_eq!(
            partition_store_path(base, 0),
            PathBuf::from("/tmp/corpus.trex.p0")
        );
        assert_eq!(
            partition_store_path(base, 3),
            PathBuf::from("/tmp/corpus.trex.p3")
        );
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for parts in [1usize, 2, 3, 4, 8] {
            for doc in 0u32..256 {
                let p = trex_index::partition_of(doc, parts);
                assert!(p < parts);
                assert_eq!(p, trex_index::partition_of(doc, parts));
            }
        }
        // Sequential ids actually spread (no degenerate all-to-one hash).
        let hits: std::collections::HashSet<usize> =
            (0u32..64).map(|d| trex_index::partition_of(d, 4)).collect();
        assert_eq!(hits.len(), 4);
    }
}
