//! The top-k heap used by TA, with instrumented timing for the ITA variant.
//!
//! The paper's ITA curves measure "a TA with an ideal heap management": heap
//! insertions and removals are treated "as being done in zero time (i.e., we
//! pause our time measure during these operations)" (§5.2). [`HeapClock`]
//! implements that pause-the-stopwatch protocol: every heap operation is
//! bracketed by clock reads, and the accumulated heap time can be subtracted
//! from a strategy's wall time to obtain its ITA time.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Accumulates time spent inside heap operations.
#[derive(Debug, Default)]
pub struct HeapClock {
    enabled: bool,
    total: Duration,
}

impl HeapClock {
    /// A clock that measures (for ITA derivation).
    pub fn measuring() -> HeapClock {
        HeapClock {
            enabled: true,
            total: Duration::ZERO,
        }
    }

    /// A disabled clock (no timing overhead; used in correctness tests).
    pub fn disabled() -> HeapClock {
        HeapClock::default()
    }

    /// Runs `f`, attributing its duration to heap management.
    #[inline]
    pub fn measure<R>(&mut self, f: impl FnOnce() -> R) -> R {
        if !self.enabled {
            return f();
        }
        let start = Instant::now();
        let r = f();
        self.total += start.elapsed();
        r
    }

    /// Total accumulated heap time.
    pub fn total(&self) -> Duration {
        self.total
    }
}

/// A candidate in the top-k heap: ordered by score ascending so the heap
/// root is the *worst* of the current top-k (a min-heap via `BinaryHeap`'s
/// max-heap on reversed ordering).
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapItem<T> {
    score: f32,
    item: T,
}

impl<T: PartialEq> Eq for HeapItem<T> {}

impl<T: PartialEq> PartialOrd for HeapItem<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: PartialEq> Ord for HeapItem<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need the minimum on top.
        // `total_cmp` keeps the order total even if a non-finite score were
        // ever smuggled past `offer`'s guard — a NaN comparison must not be
        // able to corrupt the heap invariant.
        other.score.total_cmp(&self.score)
    }
}

/// How the top-k structure is maintained.
///
/// The paper's §5.2 shows TA's heap management dominating its runtime and
/// studies ITA, a TA with zero-cost heap operations. The `Binary` policy is
/// an efficient array heap (heap cost small); `SortedVec` maintains a fully
/// sorted array with O(k) shifting per displacement — the kind of costly
/// "heap" management whose removal the paper's ITA curves quantify. The
/// heap-policy ablation bench contrasts the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HeapPolicy {
    /// `std::collections::BinaryHeap`: O(log k) per displacement.
    #[default]
    Binary,
    /// Fully sorted vector: O(k) per displacement.
    SortedVec,
}

enum HeapImpl<T> {
    Binary(BinaryHeap<HeapItem<T>>),
    /// Ascending by score: index 0 is the current k-th best.
    Sorted(Vec<HeapItem<T>>),
}

/// A bounded min-heap keeping the k highest-scored items seen.
pub struct TopKHeap<T> {
    k: usize,
    heap: HeapImpl<T>,
    /// Lifetime operation counters (pushes, pops) — reported by benchmarks
    /// to explain TA's heap-management costs.
    pushes: u64,
    pops: u64,
}

impl<T: PartialEq> TopKHeap<T> {
    /// A heap retaining the `k` best items (binary-heap policy).
    pub fn new(k: usize) -> TopKHeap<T> {
        TopKHeap::with_policy(k, HeapPolicy::Binary)
    }

    /// A heap retaining the `k` best items under the given policy.
    pub fn with_policy(k: usize, policy: HeapPolicy) -> TopKHeap<T> {
        // Capacity is only a hint; clamp it so `k = usize::MAX` (the "all
        // answers" top-k) neither overflows nor pre-allocates the world.
        let capacity = k.saturating_add(1).min(4096);
        TopKHeap {
            k,
            heap: match policy {
                HeapPolicy::Binary => HeapImpl::Binary(BinaryHeap::with_capacity(capacity)),
                HeapPolicy::SortedVec => HeapImpl::Sorted(Vec::with_capacity(capacity)),
            },
            pushes: 0,
            pops: 0,
        }
    }

    /// The capacity k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of items currently held (≤ k).
    pub fn len(&self) -> usize {
        match &self.heap {
            HeapImpl::Binary(h) => h.len(),
            HeapImpl::Sorted(v) => v.len(),
        }
    }

    /// Whether the heap holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the heap holds k items.
    pub fn is_full(&self) -> bool {
        self.len() >= self.k
    }

    fn min_score(&self) -> Option<f32> {
        match &self.heap {
            HeapImpl::Binary(h) => h.peek().map(|it| it.score),
            HeapImpl::Sorted(v) => v.first().map(|it| it.score),
        }
    }

    /// The k-th best score so far — the bar an outside candidate must clear.
    /// `None` while fewer than k items are held (every candidate qualifies).
    pub fn threshold(&self) -> Option<f32> {
        if self.is_full() {
            self.min_score()
        } else {
            None
        }
    }

    /// Offers an item; keeps it only if it belongs to the current top-k.
    /// Heap mutations run under `clock`. Returns whether the item was kept.
    ///
    /// Scores must be finite. A NaN score is rejected outright (it ranks
    /// against nothing, and before this guard it could corrupt both the
    /// heap invariant and the TA stopping threshold); ±∞ are clamped to the
    /// finite `f32` range so the threshold arithmetic stays meaningful.
    pub fn offer(&mut self, score: f32, item: T, clock: &mut HeapClock) -> bool {
        if score.is_nan() {
            return false;
        }
        let score = score.clamp(f32::MIN, f32::MAX);
        if self.k == 0 {
            return false;
        }
        if !self.is_full() {
            self.pushes += 1;
            clock.measure(|| self.push(HeapItem { score, item }));
            return true;
        }
        let bar = self.min_score().expect("non-empty");
        if score <= bar {
            return false;
        }
        self.pushes += 1;
        self.pops += 1;
        clock.measure(|| {
            self.pop_min();
            self.push(HeapItem { score, item });
        });
        true
    }

    fn push(&mut self, item: HeapItem<T>) {
        match &mut self.heap {
            HeapImpl::Binary(h) => h.push(item),
            HeapImpl::Sorted(v) => {
                // Insert keeping ascending score order: O(k) shifting.
                let pos = v.partition_point(|it| it.score < item.score);
                v.insert(pos, item);
            }
        }
    }

    fn pop_min(&mut self) {
        match &mut self.heap {
            HeapImpl::Binary(h) => {
                h.pop();
            }
            HeapImpl::Sorted(v) => {
                if !v.is_empty() {
                    v.remove(0); // O(k) shifting — deliberately naive
                }
            }
        }
    }

    /// Drains the heap into a descending-score list.
    pub fn into_sorted_desc(self) -> Vec<(f32, T)> {
        let mut items: Vec<(f32, T)> = match self.heap {
            HeapImpl::Binary(h) => h.into_iter().map(|it| (it.score, it.item)).collect(),
            HeapImpl::Sorted(v) => v.into_iter().map(|it| (it.score, it.item)).collect(),
        };
        items.sort_unstable_by(|a, b| b.0.total_cmp(&a.0));
        items
    }

    /// Lifetime (pushes, pops).
    pub fn op_counts(&self) -> (u64, u64) {
        (self.pushes, self.pops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_k_best() {
        let mut clock = HeapClock::disabled();
        let mut heap = TopKHeap::new(3);
        for (score, item) in [(1.0, "a"), (5.0, "b"), (3.0, "c"), (2.0, "d"), (9.0, "e")] {
            heap.offer(score, item, &mut clock);
        }
        let out = heap.into_sorted_desc();
        let items: Vec<&str> = out.iter().map(|(_, i)| *i).collect();
        assert_eq!(items, vec!["e", "b", "c"]);
    }

    #[test]
    fn threshold_is_the_kth_score() {
        let mut clock = HeapClock::disabled();
        let mut heap = TopKHeap::new(2);
        assert_eq!(heap.threshold(), None);
        heap.offer(4.0, 1, &mut clock);
        assert_eq!(heap.threshold(), None, "not yet full");
        heap.offer(7.0, 2, &mut clock);
        assert_eq!(heap.threshold(), Some(4.0));
        heap.offer(5.0, 3, &mut clock);
        assert_eq!(heap.threshold(), Some(5.0));
    }

    #[test]
    fn equal_scores_do_not_evict() {
        let mut clock = HeapClock::disabled();
        let mut heap = TopKHeap::new(1);
        heap.offer(2.0, "first", &mut clock);
        assert!(!heap.offer(2.0, "second", &mut clock));
        assert_eq!(heap.into_sorted_desc()[0].1, "first");
    }

    #[test]
    fn zero_k_accepts_nothing() {
        let mut clock = HeapClock::disabled();
        let mut heap = TopKHeap::new(0);
        assert!(!heap.offer(10.0, 1, &mut clock));
        assert!(heap.is_empty());
    }

    #[test]
    fn op_counts_track_churn() {
        let mut clock = HeapClock::disabled();
        let mut heap = TopKHeap::new(1);
        heap.offer(1.0, 1, &mut clock);
        heap.offer(2.0, 2, &mut clock); // evict
        heap.offer(0.5, 3, &mut clock); // rejected
        assert_eq!(heap.op_counts(), (2, 1));
    }

    #[test]
    fn measuring_clock_accumulates() {
        let mut clock = HeapClock::measuring();
        let mut heap = TopKHeap::new(64);
        for i in 0..10_000 {
            heap.offer((i % 97) as f32, i, &mut clock);
        }
        assert!(clock.total() > Duration::ZERO);
        // A disabled clock stays at zero.
        let disabled = HeapClock::disabled();
        assert_eq!(disabled.total(), Duration::ZERO);
    }
}

#[cfg(test)]
mod non_finite_tests {
    use super::*;

    #[test]
    fn nan_scores_are_rejected() {
        let mut clock = HeapClock::disabled();
        let mut heap = TopKHeap::new(2);
        assert!(!heap.offer(f32::NAN, "nan", &mut clock), "NaN never kept");
        assert!(heap.is_empty());
        heap.offer(1.0, "a", &mut clock);
        heap.offer(2.0, "b", &mut clock);
        // A NaN against a full heap must not displace anything either.
        assert!(!heap.offer(f32::NAN, "nan", &mut clock));
        assert_eq!(heap.threshold(), Some(1.0), "threshold unaffected by NaN");
        let out = heap.into_sorted_desc();
        let items: Vec<&str> = out.iter().map(|(_, i)| *i).collect();
        assert_eq!(items, vec!["b", "a"]);
    }

    #[test]
    fn nan_does_not_count_as_a_heap_op() {
        let mut clock = HeapClock::disabled();
        let mut heap = TopKHeap::new(4);
        heap.offer(f32::NAN, 0, &mut clock);
        assert_eq!(heap.op_counts(), (0, 0));
    }

    #[test]
    fn infinities_are_clamped_to_finite_range() {
        let mut clock = HeapClock::disabled();
        let mut heap = TopKHeap::new(2);
        assert!(heap.offer(f32::INFINITY, "hi", &mut clock));
        assert!(heap.offer(f32::NEG_INFINITY, "lo", &mut clock));
        let t = heap.threshold().expect("full");
        assert!(t.is_finite(), "threshold must stay finite, got {t}");
        assert_eq!(t, f32::MIN);
        // An ordinary finite score displaces the clamped -inf entry.
        assert!(heap.offer(1.0e30, "big", &mut clock));
        assert_eq!(heap.threshold(), Some(1.0e30));
        let out = heap.into_sorted_desc();
        assert_eq!(out[0].0, f32::MAX);
        assert!(out.iter().all(|(s, _)| s.is_finite()));
    }

    #[test]
    fn mixed_finite_and_infinite_ranking_stays_total() {
        let mut clock = HeapClock::disabled();
        let mut heap = TopKHeap::new(3);
        for (s, i) in [
            (f32::INFINITY, 1),
            (5.0, 2),
            (f32::NEG_INFINITY, 3),
            (7.0, 4),
        ] {
            heap.offer(s, i, &mut clock);
        }
        let out = heap.into_sorted_desc();
        let items: Vec<i32> = out.iter().map(|(_, i)| *i).collect();
        assert_eq!(items, vec![1, 4, 2], "clamped +inf first, then 7, then 5");
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;

    #[test]
    fn both_policies_keep_the_same_top_k() {
        let scores: Vec<f32> = (0..5000)
            .map(|i| (i * 2654435761u64 % 9973) as f32)
            .collect();
        let mut clock = HeapClock::disabled();
        let mut binary = TopKHeap::with_policy(37, HeapPolicy::Binary);
        let mut sorted = TopKHeap::with_policy(37, HeapPolicy::SortedVec);
        for (i, &s) in scores.iter().enumerate() {
            binary.offer(s, i, &mut clock);
            sorted.offer(s, i, &mut clock);
        }
        assert_eq!(binary.threshold(), sorted.threshold());
        let b = binary.into_sorted_desc();
        let v = sorted.into_sorted_desc();
        assert_eq!(b.len(), 37);
        // Same score multiset; item ties may differ between policies.
        let bs: Vec<u32> = b.iter().map(|(s, _)| s.to_bits()).collect();
        let vs: Vec<u32> = v.iter().map(|(s, _)| s.to_bits()).collect();
        assert_eq!(bs, vs);
    }

    #[test]
    fn sorted_vec_policy_maintains_invariants() {
        let mut clock = HeapClock::disabled();
        let mut heap = TopKHeap::with_policy(3, HeapPolicy::SortedVec);
        for s in [5.0, 1.0, 3.0, 4.0, 2.0, 6.0] {
            heap.offer(s, s as i32, &mut clock);
        }
        assert_eq!(heap.threshold(), Some(4.0));
        let out = heap.into_sorted_desc();
        let scores: Vec<f32> = out.iter().map(|(s, _)| *s).collect();
        assert_eq!(scores, vec![6.0, 5.0, 4.0]);
    }
}

#[cfg(test)]
mod capacity_tests {
    use super::*;

    #[test]
    fn unbounded_k_does_not_overflow() {
        // "All answers" TA uses k = usize::MAX; construction must not
        // overflow or allocate absurdly.
        let mut clock = HeapClock::disabled();
        let mut heap: TopKHeap<u32> = TopKHeap::new(usize::MAX);
        for i in 0..10_000u32 {
            heap.offer(i as f32, i, &mut clock);
        }
        assert_eq!(heap.len(), 10_000);
        assert_eq!(heap.threshold(), None, "never full");
    }
}
