//! A uniform view over the per-strategy statistics structs.
//!
//! Each strategy reports its own stats type ([`EraStats`], [`TaStats`],
//! [`MergeStats`]) with fields in that strategy's natural vocabulary. The
//! [`StrategyMetrics`] trait maps all of them onto the §4 cost-model axes —
//! wall-clock, sorted/random accesses, candidate-set size — so the engine,
//! the advisor and the benches can compare strategies without matching on
//! the concrete stats enum.

use std::time::Duration;

use trex_obs::CostUnits;

use crate::engine::StrategyStats;
use crate::era::EraStats;
use crate::merge::MergeStats;
use crate::ta::TaStats;

/// Cost-model units common to every strategy's statistics.
pub trait StrategyMetrics {
    /// Wall-clock time of the evaluation.
    fn wall(&self) -> Duration;

    /// `(sorted, random)` accesses in the §4 sense: sequential reads of
    /// sorted lists versus point lookups outside those scans.
    fn accesses(&self) -> (u64, u64);

    /// Peak size of the candidate set (or answers produced, for strategies
    /// that never hold a partial candidate pool).
    fn candidates(&self) -> u64;

    /// The full [`CostUnits`] record; strategies with heap instrumentation
    /// override this to fill the heap fields too.
    fn cost_units(&self) -> CostUnits {
        let (sorted_accesses, random_accesses) = self.accesses();
        CostUnits {
            sorted_accesses,
            random_accesses,
            heap_pushes: 0,
            heap_pops: 0,
            candidates_peak: self.candidates(),
        }
    }
}

impl StrategyMetrics for EraStats {
    fn wall(&self) -> Duration {
        self.wall
    }

    /// ERA reads posting positions sequentially; the extent-iterator seeks
    /// are its random component.
    fn accesses(&self) -> (u64, u64) {
        (self.positions_read, self.element_seeks)
    }

    fn candidates(&self) -> u64 {
        self.matches
    }
}

impl StrategyMetrics for TaStats {
    fn wall(&self) -> Duration {
        self.wall
    }

    /// TA is sorted-access-only by design (the paper's variant performs no
    /// random accesses).
    fn accesses(&self) -> (u64, u64) {
        (self.sorted_accesses, 0)
    }

    fn candidates(&self) -> u64 {
        self.candidates_peak as u64
    }

    fn cost_units(&self) -> CostUnits {
        CostUnits {
            sorted_accesses: self.sorted_accesses,
            random_accesses: 0,
            heap_pushes: self.heap_ops.0,
            heap_pops: self.heap_ops.1,
            candidates_peak: self.candidates_peak as u64,
        }
    }
}

impl StrategyMetrics for MergeStats {
    fn wall(&self) -> Duration {
        self.wall
    }

    /// Merge scans every required ERPL front to back: all accesses sorted.
    fn accesses(&self) -> (u64, u64) {
        (self.entries_read, 0)
    }

    fn candidates(&self) -> u64 {
        self.merged_elements
    }
}

impl StrategyMetrics for StrategyStats {
    /// For a race this is the race wall (first finish), not the winner's own.
    fn wall(&self) -> Duration {
        StrategyStats::wall(self)
    }

    /// A scatter's accesses are the sum over partitions — the work really
    /// done, no matter which strategy each partition chose.
    fn accesses(&self) -> (u64, u64) {
        match self {
            StrategyStats::Era(s) => s.accesses(),
            StrategyStats::Ta(s) => s.accesses(),
            StrategyStats::Merge(s) => s.accesses(),
            StrategyStats::Race { winner, .. } => winner.accesses(),
            StrategyStats::Scatter { per_part, .. } => per_part
                .iter()
                .map(StrategyMetrics::accesses)
                .fold((0, 0), |(s, r), (ps, pr)| (s + ps, r + pr)),
        }
    }

    fn candidates(&self) -> u64 {
        match self {
            StrategyStats::Era(s) => s.candidates(),
            StrategyStats::Ta(s) => s.candidates(),
            StrategyStats::Merge(s) => s.candidates(),
            StrategyStats::Race { winner, .. } => winner.candidates(),
            StrategyStats::Scatter { per_part, .. } => {
                per_part.iter().map(StrategyMetrics::candidates).sum()
            }
        }
    }

    fn cost_units(&self) -> CostUnits {
        match self {
            StrategyStats::Era(s) => s.cost_units(),
            StrategyStats::Ta(s) => s.cost_units(),
            StrategyStats::Merge(s) => s.cost_units(),
            StrategyStats::Race { winner, .. } => winner.cost_units(),
            StrategyStats::Scatter { per_part, .. } => per_part
                .iter()
                .map(StrategyMetrics::cost_units)
                .fold(CostUnits::default(), |acc, u| CostUnits {
                    sorted_accesses: acc.sorted_accesses + u.sorted_accesses,
                    random_accesses: acc.random_accesses + u.random_accesses,
                    heap_pushes: acc.heap_pushes + u.heap_pushes,
                    heap_pops: acc.heap_pops + u.heap_pops,
                    candidates_peak: acc.candidates_peak + u.candidates_peak,
                }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ta_stats() -> TaStats {
        TaStats {
            wall: Duration::from_millis(5),
            heap_time: Duration::from_millis(1),
            depth: vec![40, 60],
            sorted_accesses: 100,
            heap_ops: (30, 20),
            candidates_peak: 12,
            read_entire_lists: false,
        }
    }

    #[test]
    fn ta_metrics_map_to_cost_units() {
        let s = ta_stats();
        assert_eq!(s.accesses(), (100, 0));
        assert_eq!(s.candidates(), 12);
        let units = s.cost_units();
        assert_eq!(units.heap_pushes, 30);
        assert_eq!(units.heap_pops, 20);
        assert_eq!(units.sorted_accesses, 100);
    }

    #[test]
    fn era_reports_seeks_as_random() {
        let s = EraStats {
            wall: Duration::from_millis(2),
            positions_read: 500,
            element_seeks: 7,
            matches: 50,
        };
        assert_eq!(s.accesses(), (500, 7));
        assert_eq!(s.cost_units().random_accesses, 7);
    }

    #[test]
    fn race_delegates_to_winner() {
        let race = StrategyStats::Race {
            won_by: crate::engine::RaceWinner::Ta,
            winner: Box::new(StrategyStats::Ta(ta_stats())),
            wall: Duration::from_millis(3),
        };
        assert_eq!(StrategyMetrics::wall(&race), Duration::from_millis(3));
        assert_eq!(race.accesses(), (100, 0));
        assert_eq!(race.cost_units().candidates_peak, 12);
    }
}
