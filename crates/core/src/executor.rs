//! Batch query evaluation on a scoped thread pool.
//!
//! The read path — translation, strategy selection, and the ERA/TA/Merge
//! evaluations — only needs `&TrexIndex`, and the storage layer underneath
//! is a sharded buffer pool built for concurrent readers. [`QueryExecutor`]
//! exploits that: it fans a batch of NEXI queries out over `threads` scoped
//! worker threads sharing one [`QueryEngine`], and returns the per-query
//! results in input order. With [`EvalOptions::trace`] enabled every result
//! carries its own [`trex_obs::QueryTrace`], so batch throughput can be
//! attributed query by query.
//!
//! Work distribution is a single atomic cursor (workers claim the next
//! unclaimed query), so skewed batches — one expensive query among many
//! cheap ones — never idle a thread before the batch is done.
//!
//! A panic inside one query's evaluation is caught at the work-item
//! boundary and surfaced as that query's own [`TrexError::Internal`]; it
//! never unwinds into the scope join, so the other N−1 queries of the
//! batch still complete and return their results.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use trex_index::TrexIndex;
use trex_obs::ServeMetrics;

use crate::engine::{EvalOptions, QueryEngine, QueryResult};
use crate::selfmanage::profiler::WorkloadProfiler;
use crate::serve::{QueryRequest, QueryResponse, QueryService, ResultCache};
use crate::{Result, TrexError};

/// Fans `n` work items out over `workers` scoped threads (single-threaded
/// inline when `workers <= 1`) and returns the per-item results in input
/// order. Items are claimed through one atomic cursor, so each runs exactly
/// once. A panicking item is caught here and converted into its own
/// [`TrexError::Internal`] — the scope join below therefore never sees a
/// panicked child, and one poisoned item cannot tear down its batchmates.
///
/// Shared by the two batch entry points and by the partitioned system's
/// scatter phase ([`crate::partition`]).
pub(crate) fn run_scoped<T, F>(n: usize, workers: usize, work: F) -> Vec<Result<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    let run_caught = |i: usize| -> Result<T> {
        catch_unwind(AssertUnwindSafe(|| work(i))).unwrap_or_else(|payload| {
            Err(TrexError::Internal(format!(
                "query worker panicked: {}",
                panic_message(payload.as_ref())
            )))
        })
    };
    let workers = workers.max(1).min(n);
    if workers <= 1 {
        return (0..n).map(run_caught).collect();
    }

    let cursor = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::bounded::<(usize, Result<T>)>(n);
    let results = crossbeam::thread::scope(|scope| {
        let cursor = &cursor;
        let run_caught = &run_caught;
        for _ in 0..workers {
            let tx = tx.clone();
            scope.spawn(move |_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if tx.send((i, run_caught(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        let mut slots: Vec<Option<Result<T>>> = (0..n).map(|_| None).collect();
        for (i, result) in rx.iter() {
            slots[i] = Some(result);
        }
        slots
    })
    .expect("scoped batch threads");

    results
        .into_iter()
        .map(|slot| slot.expect("every item claimed exactly once"))
        .collect()
}

/// Best-effort extraction of a panic payload's message (`panic!` with a
/// string literal or a formatted `String` covers practically every panic in
/// this workspace).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// Evaluates batches of NEXI queries concurrently over one shared
/// [`QueryEngine`].
///
/// ```no_run
/// use trex_core::{EvalOptions, QueryExecutor};
/// # fn demo(index: &trex_index::TrexIndex) {
/// let executor = QueryExecutor::new(index).threads(4);
/// let queries = ["//article//sec[about(., xml)]", "//article[about(., index)]"];
/// let results = executor.evaluate_batch(&queries, EvalOptions::new().k(10));
/// assert_eq!(results.len(), queries.len());
/// # }
/// ```
pub struct QueryExecutor<'a> {
    engine: QueryEngine<'a>,
    threads: usize,
    cache: Option<Arc<ResultCache>>,
    metrics: Option<Arc<ServeMetrics>>,
}

impl<'a> QueryExecutor<'a> {
    /// An executor over `index`, defaulting to one worker per available
    /// hardware thread.
    pub fn new(index: &'a TrexIndex) -> QueryExecutor<'a> {
        QueryExecutor {
            engine: QueryEngine::new(index),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            cache: None,
            metrics: None,
        }
    }

    /// An executor wrapping an existing engine (e.g. one built with a
    /// custom analyzer).
    pub fn with_engine(engine: QueryEngine<'a>) -> QueryExecutor<'a> {
        QueryExecutor {
            engine,
            threads: 1,
            cache: None,
            metrics: None,
        }
    }

    /// Attaches a result cache: [`execute_batch`](QueryExecutor::execute_batch)
    /// requests then hit/populate it exactly like the HTTP front end.
    pub fn with_cache(mut self, cache: Arc<ResultCache>) -> QueryExecutor<'a> {
        self.cache = Some(cache);
        self
    }

    /// Attaches serve metrics to batch execution.
    pub fn with_metrics(mut self, metrics: Arc<ServeMetrics>) -> QueryExecutor<'a> {
        self.metrics = Some(metrics);
        self
    }

    /// Sets the worker-thread count (clamped to ≥ 1).
    pub fn threads(mut self, threads: usize) -> QueryExecutor<'a> {
        self.threads = threads.max(1);
        self
    }

    /// Attaches a workload profiler to the shared engine: every query of
    /// every batch feeds the self-manager's frequency sketch (see
    /// [`QueryEngine::with_profiler`]).
    pub fn with_profiler(mut self, profiler: &'a WorkloadProfiler) -> QueryExecutor<'a> {
        self.engine = self.engine.with_profiler(profiler);
        self
    }

    /// The configured worker-thread count.
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// The shared engine (for translation or single-query evaluation).
    pub fn engine(&self) -> &QueryEngine<'a> {
        &self.engine
    }

    /// Evaluates every query of the batch, returning one result per query
    /// in input order. Each query is evaluated exactly once; a query that
    /// fails yields its own `Err` without affecting its neighbours.
    pub fn evaluate_batch<Q>(&self, queries: &[Q], opts: EvalOptions) -> Vec<Result<QueryResult>>
    where
        Q: AsRef<str> + Sync,
    {
        let n = queries.len();
        if n == 0 {
            return Vec::new();
        }
        // The batch span lives on the calling thread; per-query spans are
        // emitted by the workers and carry their own parent chains.
        let _batch_span = self.engine.index().telemetry().journal.span("batch");
        run_scoped(n, self.threads, |i| {
            self.engine.evaluate(queries[i].as_ref(), opts)
        })
    }

    /// Evaluates a batch of [`QueryRequest`]s through the shared
    /// [`QueryService`] handler — the same path the HTTP front end and the
    /// REPL use, so batch queries hit (and populate) the result cache and
    /// honour per-request deadlines. Results come back in input order; a
    /// failing request yields its own `Err` without affecting neighbours.
    pub fn execute_batch(&self, requests: &[QueryRequest]) -> Vec<Result<QueryResponse>> {
        let n = requests.len();
        if n == 0 {
            return Vec::new();
        }
        let mut service = QueryService::new(self.engine.clone());
        if let Some(cache) = &self.cache {
            service = service.with_cache(Arc::clone(cache));
        }
        if let Some(metrics) = &self.metrics {
            service = service.with_metrics(Arc::clone(metrics));
        }
        let _batch_span = self.engine.index().telemetry().journal.span("batch");
        run_scoped(n, self.threads, |i| service.execute(&requests[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use trex_index::IndexBuilder;
    use trex_storage::Store;
    use trex_summary::{AliasMap, SummaryKind};
    use trex_text::Analyzer;

    fn build(name: &str, docs: &[String]) -> (TrexIndex, std::path::PathBuf) {
        let mut path = std::env::temp_dir();
        path.push(format!("trex-executor-{name}-{}", std::process::id()));
        let store = Store::create(&path, 128).unwrap();
        let mut b = IndexBuilder::new(
            &store,
            SummaryKind::Incoming,
            AliasMap::identity(),
            Analyzer::verbatim(),
        )
        .unwrap();
        for d in docs {
            b.add_document(d).unwrap();
        }
        b.finish().unwrap();
        (TrexIndex::open(Arc::new(store)).unwrap(), path)
    }

    fn corpus() -> Vec<String> {
        (0..24)
            .map(|i| {
                let noise = ["xml", "query", "index", "summary"][i % 4];
                format!("<a><s>cat dog {noise}</s><s>bird {noise} w{i}</s></a>")
            })
            .collect()
    }

    #[test]
    fn batch_matches_serial_in_input_order() {
        let (index, path) = build("order", &corpus());
        let queries = [
            "//a//s[about(., cat)]",
            "//a//s[about(., bird xml)]",
            "//a//s[about(., query)]",
            "//a//s[about(., dog summary)]",
            "//a//s[about(., w3)]",
        ];
        let opts = EvalOptions::new().k(Some(5));
        let engine = QueryEngine::new(&index);
        let serial: Vec<_> = queries
            .iter()
            .map(|q| engine.evaluate(q, opts).unwrap().answers)
            .collect();

        let executor = QueryExecutor::new(&index).threads(4);
        let batch = executor.evaluate_batch(&queries, opts);
        assert_eq!(batch.len(), queries.len());
        for (got, want) in batch.into_iter().zip(&serial) {
            assert_eq!(&got.unwrap().answers, want);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn one_failing_query_does_not_poison_the_batch() {
        let (index, path) = build("err", &corpus());
        let queries = [
            "//a//s[about(., cat)]",
            "//a//s[about(., )]]]", // malformed NEXI
            "//a//s[about(., bird)]",
        ];
        let executor = QueryExecutor::new(&index).threads(3);
        let results = executor.evaluate_batch(&queries, EvalOptions::new().k(Some(3)));
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_batch_and_single_thread_paths() {
        let (index, path) = build("edges", &corpus());
        let executor = QueryExecutor::new(&index).threads(1);
        let none: Vec<&str> = Vec::new();
        assert!(executor
            .evaluate_batch(&none, EvalOptions::new())
            .is_empty());
        let one = executor.evaluate_batch(&["//a//s[about(., cat)]"], EvalOptions::new());
        assert_eq!(one.len(), 1);
        assert!(one[0].is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn request_batch_routes_through_the_service_and_cache() {
        use crate::serve::CacheStatus;

        let (index, path) = build("requests", &corpus());
        let cache = Arc::new(ResultCache::new(32));
        let executor = QueryExecutor::new(&index)
            .threads(4)
            .with_cache(Arc::clone(&cache));
        let requests: Vec<QueryRequest> = [
            "//a//s[about(., cat)]",
            "//a//s[about(., bird xml)]",
            "//a//s[about(., cat)]", // duplicate of the first
        ]
        .iter()
        .map(|q| QueryRequest::new(*q).k(Some(5)))
        .collect();

        let first = executor.execute_batch(&requests);
        assert_eq!(first.len(), 3);
        for r in &first {
            assert!(r.is_ok());
        }
        assert!(!cache.is_empty());

        // Re-running the batch is all hits, answer-identical.
        let second = executor.execute_batch(&requests);
        for (a, b) in first.iter().zip(&second) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(b.cache, CacheStatus::Hit);
            assert_eq!(a.answers, b.answers);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn panicking_query_fails_alone_without_poisoning_the_batch() {
        // Drive the shared scatter loop directly with an injected panic:
        // item 1 panics mid-evaluation, its batchmates must still complete
        // and the panic must surface as that item's own error.
        let results = run_scoped(4, 2, |i| {
            if i == 1 {
                panic!("injected panic in query {i}");
            }
            Ok(i * 10)
        });
        assert_eq!(results.len(), 4);
        assert_eq!(*results[0].as_ref().unwrap(), 0);
        assert_eq!(*results[2].as_ref().unwrap(), 20);
        assert_eq!(*results[3].as_ref().unwrap(), 30);
        match &results[1] {
            Err(crate::TrexError::Internal(msg)) => {
                assert!(msg.contains("injected panic in query 1"), "got: {msg}");
            }
            other => panic!("expected Internal error, got {other:?}"),
        }

        // The single-threaded fast path catches too.
        let serial = run_scoped(2, 1, |i| {
            if i == 0 {
                panic!("serial boom");
            }
            Ok(i)
        });
        assert!(matches!(&serial[0], Err(crate::TrexError::Internal(_))));
        assert_eq!(*serial[1].as_ref().unwrap(), 1);
    }

    #[test]
    fn traced_batch_attaches_per_query_traces() {
        let (index, path) = build("trace", &corpus());
        let queries = ["//a//s[about(., cat)]", "//a//s[about(., bird)]"];
        let executor = QueryExecutor::new(&index).threads(2);
        let results = executor.evaluate_batch(&queries, EvalOptions::new().k(Some(4)).trace(true));
        for r in results {
            let r = r.unwrap();
            let trace = r.trace.expect("trace requested");
            assert!(!trace.strategy.is_empty());
        }
        std::fs::remove_file(&path).ok();
    }
}
