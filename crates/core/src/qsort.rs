//! From-scratch quicksort.
//!
//! The Merge algorithm's final step is "sort V using QuickSort" (paper
//! Fig. 3, line 22). We implement the sort rather than delegating to the
//! standard library so the measured Merge cost includes a faithful
//! QuickSort, and expose it generically for reuse.
//!
//! Median-of-three pivot selection with an insertion-sort cutoff for small
//! partitions; the larger partition is recursed last (tail-call shaped) so
//! stack depth stays logarithmic on adversarial inputs.

/// Insertion-sort threshold.
const CUTOFF: usize = 16;

/// Sorts `v` according to `less` (strict weak ordering: `less(a, b)` means
/// `a` must precede `b`).
pub fn quicksort<T, F: Fn(&T, &T) -> bool>(v: &mut [T], less: F) {
    quicksort_range(v, &less);
}

fn quicksort_range<T, F: Fn(&T, &T) -> bool>(mut v: &mut [T], less: &F) {
    loop {
        let n = v.len();
        if n <= CUTOFF {
            insertion_sort(v, less);
            return;
        }
        let pivot_idx = median_of_three(v, less);
        let p = partition(v, pivot_idx, less);
        // Recurse into the smaller side; loop on the larger.
        let (left, right) = v.split_at_mut(p);
        let right = &mut right[1..];
        if left.len() < right.len() {
            quicksort_range(left, less);
            v = right;
        } else {
            quicksort_range(right, less);
            v = left;
        }
    }
}

fn insertion_sort<T, F: Fn(&T, &T) -> bool>(v: &mut [T], less: &F) {
    for i in 1..v.len() {
        let mut j = i;
        while j > 0 && less(&v[j], &v[j - 1]) {
            v.swap(j, j - 1);
            j -= 1;
        }
    }
}

fn median_of_three<T, F: Fn(&T, &T) -> bool>(v: &[T], less: &F) -> usize {
    let (a, b, c) = (0, v.len() / 2, v.len() - 1);
    // Order the three probes by hand.
    let (lo, hi) = if less(&v[a], &v[b]) { (a, b) } else { (b, a) };
    if less(&v[c], &v[lo]) {
        lo
    } else if less(&v[c], &v[hi]) {
        c
    } else {
        hi
    }
}

/// Hoare-style partition around `v[pivot_idx]`; returns the pivot's final
/// index, with everything `less` than the pivot strictly to its left.
fn partition<T, F: Fn(&T, &T) -> bool>(v: &mut [T], pivot_idx: usize, less: &F) -> usize {
    let last = v.len() - 1;
    v.swap(pivot_idx, last);
    let mut store = 0;
    for i in 0..last {
        if less(&v[i], &v[last]) {
            v.swap(i, store);
            store += 1;
        }
    }
    v.swap(store, last);
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sorts_small_and_edge_cases() {
        let mut empty: Vec<i32> = vec![];
        quicksort(&mut empty, |a, b| a < b);
        let mut one = vec![5];
        quicksort(&mut one, |a, b| a < b);
        assert_eq!(one, vec![5]);
        let mut two = vec![9, 1];
        quicksort(&mut two, |a, b| a < b);
        assert_eq!(two, vec![1, 9]);
    }

    #[test]
    fn sorts_descending_with_inverted_comparator() {
        let mut v = vec![3, 1, 4, 1, 5, 9, 2, 6];
        quicksort(&mut v, |a, b| a > b);
        assert_eq!(v, vec![9, 6, 5, 4, 3, 2, 1, 1]);
    }

    #[test]
    fn sorts_adversarial_patterns() {
        // Already sorted, reverse sorted, all equal, organ pipe.
        let mut sorted: Vec<u32> = (0..10_000).collect();
        let want = sorted.clone();
        quicksort(&mut sorted, |a, b| a < b);
        assert_eq!(sorted, want);

        let mut rev: Vec<u32> = (0..10_000).rev().collect();
        quicksort(&mut rev, |a, b| a < b);
        assert_eq!(rev, want);

        let mut eq = vec![7u32; 10_000];
        quicksort(&mut eq, |a, b| a < b);
        assert!(eq.iter().all(|&x| x == 7));

        let mut pipe: Vec<u32> = (0..5000).chain((0..5000).rev()).collect();
        quicksort(&mut pipe, |a, b| a < b);
        assert!(pipe.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sorts_floats_by_score_descending() {
        let mut v = vec![0.5f32, 3.25, 1.0, 3.25, 0.0];
        quicksort(&mut v, |a, b| a > b);
        assert_eq!(v, vec![3.25, 3.25, 1.0, 0.5, 0.0]);
    }

    proptest! {
        #[test]
        fn prop_agrees_with_std_sort(mut v in proptest::collection::vec(any::<i64>(), 0..2000)) {
            let mut expected = v.clone();
            expected.sort_unstable();
            quicksort(&mut v, |a, b| a < b);
            prop_assert_eq!(v, expected);
        }

        #[test]
        fn prop_is_a_permutation(v in proptest::collection::vec(any::<u8>(), 0..500)) {
            let mut sorted = v.clone();
            quicksort(&mut sorted, |a, b| a < b);
            let mut counts_in = [0usize; 256];
            let mut counts_out = [0usize; 256];
            for &x in &v { counts_in[x as usize] += 1; }
            for &x in &sorted { counts_out[x as usize] += 1; }
            prop_assert_eq!(counts_in.to_vec(), counts_out.to_vec());
        }
    }
}
