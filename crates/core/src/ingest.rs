//! The background *fold*: merging the live-ingestion delta into the
//! on-disk tables.
//!
//! The delta ([`trex_index::DeltaIndex`]) absorbs ingested documents in
//! memory, WAL-backed. When it crosses a size threshold the [`FoldManager`]
//! (a sibling of [`SelfManager`](crate::SelfManager)) runs [`fold_once`]:
//! one maintenance-write-gate critical section that appends the staged
//! postings, element rows and documents to the B+tree tables, persists any
//! dictionary growth, refreshes every affected redundant list, and drains
//! the delta — then one checkpoint that consumes the folded WAL ingest
//! records via the doc-id watermark.
//!
//! **Byte-identity across the fold.** Scoring inputs are frozen: the fold
//! never touches `CollectionStats` or the term statistics of terms the
//! collection was built with, and the delta scores through the same
//! `TrexIndex::score` path queries use on disk matches. An element's score
//! — and therefore the ranked answer list — is byte-identical before and
//! after a fold.
//!
//! **Crash safety.** The WAL ingest records stay pending until the fold's
//! checkpoint commits with the consumed watermark. A crash anywhere before
//! that point rolls the tables back and replays the records into the delta
//! at reopen; a crash after replays nothing (the fold is on disk). An I/O
//! error mid-fold leaves the in-process view degraded (the drained
//! documents are no longer delta-visible) but durability is unaffected —
//! reopening the store recovers every acknowledged document.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use trex_index::catalog::{self, blob_names, TermStats};
use trex_index::{DocStoreWriter, Position, TrexIndex};
use trex_summary::Sid;
use trex_text::{Dictionary, TermId};

use crate::materialize::collect_lists;
use crate::{Result, TrexError};

/// Options for the background fold thread.
#[derive(Debug, Clone, Copy)]
pub struct FoldOptions {
    /// Fold when the delta holds at least this many documents.
    pub max_docs: usize,
    /// Fold when the delta's approximate resident bytes reach this.
    pub max_bytes: u64,
    /// How often the thread checks the thresholds.
    pub interval: Duration,
    /// Print one status line per completed fold to stderr.
    pub log_folds: bool,
}

impl FoldOptions {
    /// Defaults: fold at 1000 documents or 8 MiB, checking every 100 ms.
    pub fn new() -> FoldOptions {
        FoldOptions {
            max_docs: 1000,
            max_bytes: 8 << 20,
            interval: Duration::from_millis(100),
            log_folds: false,
        }
    }

    /// Sets the document-count threshold.
    pub fn max_docs(mut self, n: usize) -> FoldOptions {
        self.max_docs = n.max(1);
        self
    }

    /// Sets the byte threshold.
    pub fn max_bytes(mut self, bytes: u64) -> FoldOptions {
        self.max_bytes = bytes;
        self
    }

    /// Sets the threshold-check interval.
    pub fn interval(mut self, interval: Duration) -> FoldOptions {
        self.interval = interval;
        self
    }

    /// Enables/disables the per-fold stderr status line.
    pub fn log_folds(mut self, on: bool) -> FoldOptions {
        self.log_folds = on;
        self
    }
}

impl Default for FoldOptions {
    fn default() -> FoldOptions {
        FoldOptions::new()
    }
}

/// What one fold did.
#[derive(Debug, Clone)]
pub struct FoldReport {
    /// Documents merged into the tables.
    pub docs_folded: usize,
    /// Terms appended to the persisted dictionary (unknown to the frozen
    /// in-memory one; searchable after the next reopen).
    pub new_terms: usize,
    /// Redundant lists recomputed because a folded term touched them.
    pub lists_refreshed: usize,
    /// Wall-clock time the maintenance write gate was held — the pause
    /// concurrent queries can observe.
    pub pause: Duration,
    /// Total fold wall-clock including the checkpoint.
    pub wall: Duration,
    /// The maintenance generation after the fold.
    pub generation: u64,
}

/// Folds the delta into the on-disk tables. Returns `Ok(None)` when the
/// delta is empty. Safe to run concurrently with query serving and with
/// reconcile cycles (every table mutation is under the write gate); do not
/// run two folds concurrently (the [`FoldManager`] never does).
pub fn fold_once(index: &TrexIndex) -> Result<Option<FoldReport>> {
    if index.delta().is_empty() {
        return Ok(None);
    }
    let started = Instant::now();
    let store = index.store();
    let telemetry = index.telemetry().clone();
    let fold_span = telemetry.journal.span("fold");

    let gate_started;
    let docs_folded;
    let new_term_count;
    let lists_refreshed;
    let max_doc_id;
    {
        let _gate = index.maintenance().enter_write();
        gate_started = Instant::now();
        let docs = index.delta().take_docs();
        if docs.is_empty() {
            return Ok(None); // raced with another fold
        }
        docs_folded = docs.len();
        max_doc_id = docs.last().expect("non-empty").doc_id;

        // Resolve overlay terms against the *persisted* dictionary, which
        // may already contain terms added by earlier folds since the last
        // reopen — re-interning there keeps ids stable across folds.
        let blobs = store.open_table(catalog::BLOBS_TABLE).map_err(storage)?;
        let dict_bytes = catalog::load_blob(&blobs, blob_names::DICTIONARY)
            .map_err(storage)?
            .ok_or_else(|| {
                TrexError::MissingIndex("dictionary blob missing; index not built".into())
            })?;
        let mut disk_dict = Dictionary::decode(&dict_bytes)
            .ok_or_else(|| TrexError::MissingIndex("dictionary blob corrupt".into()))?;
        let base_len = disk_dict.len();

        // Per-term staged positions, in (doc, offset) order: documents come
        // out of the delta in ascending id order and each document's
        // per-term positions ascend, so appending keeps lists sorted.
        // BTreeMap for deterministic fold order.
        let mut staged: BTreeMap<TermId, Vec<Position>> = BTreeMap::new();
        // Overlay (non-frozen-dictionary) terms get additive statistics;
        // frozen terms' statistics stay untouched (scoring invariant).
        let mut overlay_stats: HashMap<TermId, (Option<u32>, u32, u64)> = HashMap::new();
        for doc in &docs {
            for (&term, positions) in &doc.postings {
                staged.entry(term).or_default().extend(positions);
            }
            let mut texts: Vec<&String> = doc.new_terms.keys().collect();
            texts.sort(); // deterministic intern order for brand-new terms
            for text in texts {
                let positions = &doc.new_terms[text];
                let term = match disk_dict.lookup(text) {
                    Some(t) => t,
                    None => disk_dict.intern(text),
                };
                staged.entry(term).or_default().extend(positions);
                let entry = overlay_stats.entry(term).or_insert((None, 0, 0));
                if entry.0 != Some(doc.doc_id) {
                    entry.0 = Some(doc.doc_id);
                    entry.1 += 1;
                }
                entry.2 += positions.len() as u64;
            }
        }
        // Staged vectors built per doc in id order are sorted; terms seen
        // in several docs appended in id order stay sorted too.
        debug_assert!(staged.values().all(|v| v.windows(2).all(|w| w[0] < w[1])));

        // 1. Postings: merge each staged list after the on-disk one (delta
        //    doc ids sort strictly above every folded id).
        let mut postings = index.postings()?;
        for (&term, positions) in &staged {
            let mut merged = postings.all_positions(term)?;
            merged.extend_from_slice(positions);
            postings.replace_term(term, &merged)?;
        }

        // 2. Element rows and the docstore overlay.
        let mut elements = index.elements()?;
        let has_docstore = store.has_table(trex_index::docstore::DOCUMENTS_TABLE);
        let mut doc_writer = if has_docstore {
            Some(DocStoreWriter::open(store)?)
        } else {
            None
        };
        for doc in &docs {
            for &(sid, element) in &doc.elements {
                elements.insert(sid, element)?;
            }
            if let Some(w) = &mut doc_writer {
                w.put(doc.doc_id, &doc.xml)?;
            }
        }

        // 3. Overlay term statistics (additive: a term may accumulate over
        //    several folds) and catalog blobs.
        let mut stats_table = store
            .open_table(catalog::TERM_STATS_TABLE)
            .map_err(storage)?;
        for (&term, &(_, df, cf)) in &overlay_stats {
            let prior = catalog::get_term_stats(&stats_table, term).map_err(storage)?;
            catalog::put_term_stats(
                &mut stats_table,
                term,
                TermStats {
                    df: prior.df + df,
                    cf: prior.cf + cf,
                },
            )
            .map_err(storage)?;
        }
        new_term_count = disk_dict.len() - base_len;
        let mut blobs = store.open_table(catalog::BLOBS_TABLE).map_err(storage)?;
        if disk_dict.len() > base_len {
            catalog::store_blob(&mut blobs, blob_names::DICTIONARY, &disk_dict.encode())
                .map_err(storage)?;
        }
        catalog::store_next_doc_id(&mut blobs, max_doc_id.saturating_add(1)).map_err(storage)?;

        // 4. Refresh every redundant list a folded term touches, so TA and
        //    Merge see the folded documents. One ERA pass per affected
        //    term, grouped over that term's registered sids.
        let folded_terms: BTreeSet<TermId> = staged.keys().copied().collect();
        let mut rpls = index.rpls()?;
        let mut erpls = index.erpls()?;
        let mut affected: BTreeMap<TermId, (BTreeSet<Sid>, BTreeSet<Sid>)> = BTreeMap::new();
        for (term, sid, _) in rpls.lists()? {
            if folded_terms.contains(&term) {
                affected.entry(term).or_default().0.insert(sid);
            }
        }
        for (term, sid, _) in erpls.lists()? {
            if folded_terms.contains(&term) {
                affected.entry(term).or_default().1.insert(sid);
            }
        }
        let mut refreshed = 0usize;
        for (term, (rpl_sids, erpl_sids)) in &affected {
            let all_sids: Vec<Sid> = rpl_sids.union(erpl_sids).copied().collect();
            // The tables already contain the folded documents, so this ERA
            // pass produces the post-fold lists.
            let lists = collect_lists(index, &all_sids, &[*term])?;
            for &sid in rpl_sids {
                let entries = lists.get(&(*term, sid)).map(Vec::as_slice).unwrap_or(&[]);
                rpls.put_list(*term, sid, entries)?;
                refreshed += 1;
            }
            for &sid in erpl_sids {
                let entries = lists.get(&(*term, sid)).map(Vec::as_slice).unwrap_or(&[]);
                erpls.put_list(*term, sid, entries)?;
                refreshed += 1;
            }
        }
        lists_refreshed = refreshed;
    } // gate drops here: generation bumps, caches invalidate, queries resume
    let pause = gate_started.elapsed();

    // One checkpoint per fold. The commit record carries the doc-id
    // watermark, so recovery knows these ingest records are now in the
    // tables and must not be replayed; records at or above the watermark
    // (ingests that landed while we folded) stay pending.
    store
        .flush_consuming_ingests(u64::from(max_doc_id) + 1)
        .map_err(storage)?;

    drop(fold_span);
    Ok(Some(FoldReport {
        docs_folded,
        new_terms: new_term_count,
        lists_refreshed,
        pause,
        wall: started.elapsed(),
        generation: index.maintenance().generation(),
    }))
}

fn storage(e: trex_storage::StorageError) -> TrexError {
    TrexError::from(e)
}

#[derive(Debug, Default)]
struct FoldStatus {
    last: Option<FoldReport>,
    last_error: Option<String>,
    folds: u64,
}

/// A handle to the background fold thread. Stops (and joins) on
/// [`FoldManager::stop`] or drop.
pub struct FoldManager {
    stop: Arc<AtomicBool>,
    status: Arc<Mutex<FoldStatus>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl FoldManager {
    /// Starts the background fold loop: every `opts.interval`, fold if the
    /// delta crossed either threshold. A final fold on shutdown is *not*
    /// attempted — the WAL already holds every unfolded document.
    pub fn start(index: Arc<TrexIndex>, opts: FoldOptions) -> Result<FoldManager> {
        FoldManager::start_with(index, opts, None)
    }

    /// [`FoldManager::start`] with an optional health surface whose
    /// `folds_in_flight` gauge brackets every fold attempt (so `/readyz`
    /// can report folds in progress).
    pub fn start_with(
        index: Arc<TrexIndex>,
        opts: FoldOptions,
        health: Option<Arc<trex_obs::Health>>,
    ) -> Result<FoldManager> {
        let stop = Arc::new(AtomicBool::new(false));
        let status = Arc::new(Mutex::new(FoldStatus::default()));
        let handle = {
            let stop = stop.clone();
            let status = status.clone();
            std::thread::Builder::new()
                .name("trex-fold".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let wake = Instant::now() + opts.interval;
                        while Instant::now() < wake {
                            if stop.load(Ordering::Relaxed) {
                                return;
                            }
                            std::thread::sleep(Duration::from_millis(10).min(opts.interval));
                        }
                        let delta = index.delta();
                        if delta.doc_count() < opts.max_docs
                            && delta.approx_bytes() < opts.max_bytes
                        {
                            continue;
                        }
                        let _busy = health
                            .as_ref()
                            .map(|h| trex_obs::InFlight::enter(&h.folds_in_flight));
                        match fold_once(&index) {
                            Ok(Some(report)) => {
                                if opts.log_folds {
                                    eprintln!(
                                        "fold: {} docs, {} new terms, {} lists refreshed, \
                                         pause {:.3} ms, total {:.3} ms",
                                        report.docs_folded,
                                        report.new_terms,
                                        report.lists_refreshed,
                                        report.pause.as_secs_f64() * 1e3,
                                        report.wall.as_secs_f64() * 1e3,
                                    );
                                }
                                let mut s = status.lock();
                                s.last = Some(report);
                                s.last_error = None;
                                s.folds += 1;
                            }
                            Ok(None) => {}
                            Err(e) => status.lock().last_error = Some(e.to_string()),
                        }
                    }
                })
                .map_err(|e| TrexError::Unsupported(format!("cannot spawn fold thread: {e}")))?
        };
        Ok(FoldManager {
            stop,
            status,
            handle: Some(handle),
        })
    }

    /// The most recent fold's report, if any fold has completed.
    pub fn last_report(&self) -> Option<FoldReport> {
        self.status.lock().last.clone()
    }

    /// The most recent fold error, if the last attempt failed.
    pub fn last_error(&self) -> Option<String> {
        self.status.lock().last_error.clone()
    }

    /// Number of completed folds.
    pub fn folds(&self) -> u64 {
        self.status.lock().folds
    }

    /// Stops the background thread and waits for it to finish.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FoldManager {
    fn drop(&mut self) {
        self.shutdown();
    }
}
