//! The single public query API: [`QueryRequest`] in, [`QueryResponse`] out.
//!
//! Every front door — the HTTP endpoint, the stdin REPL, and the batch
//! executor — routes through this one pair, so "what does a query accept
//! and return" has exactly one answer. [`QueryRequest`] subsumes the older
//! `(nexi, EvalOptions)` call shape (k, strategy, interpretation, trace)
//! and adds the serving-only knobs (deadline budget); [`QueryResponse`] is
//! the versioned result envelope, with a stable JSON rendering
//! ([`trex_obs::ToJson`]) that the wire schema round-trips.

use std::time::{Duration, Instant};

use trex_nexi::Interpretation;
use trex_obs::{json_escape, json_field, QueryTrace, ToJson, TraceContext};

use crate::answer::Answer;
use crate::engine::{EvalOptions, Strategy};

/// Version tag stamped into every [`QueryResponse`] JSON envelope.
pub const WIRE_VERSION: u32 = 1;

/// Default top-k when a request does not name one — the paper's canonical
/// small-k working point.
pub const DEFAULT_K: usize = 10;

/// One query, fully described: text plus every evaluation knob.
///
/// `#[non_exhaustive]` with builder setters, like [`EvalOptions`]: new
/// knobs must not break call sites. Construct with [`QueryRequest::new`].
///
/// ```
/// use trex_core::{QueryRequest, Strategy};
///
/// let req = QueryRequest::new("//a//s[about(., xml)]")
///     .k(5)
///     .strategy(Strategy::Auto)
///     .deadline_ms(250);
/// assert_eq!(req.k, Some(5));
/// ```
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// The NEXI query text.
    pub nexi: String,
    /// Top-k limit; `None` returns all answers. Defaults to [`DEFAULT_K`].
    pub k: Option<usize>,
    /// Strategy selection.
    pub strategy: Strategy,
    /// Structural interpretation.
    pub interpretation: Interpretation,
    /// Attach a per-query trace (bypasses the result cache — a replayed
    /// trace would describe work that never happened).
    pub trace: bool,
    /// Evaluation budget in milliseconds from execution start; `None`
    /// means no deadline.
    pub deadline_ms: Option<u64>,
    /// Distributed-trace identity for the request (from an inbound
    /// `traceparent` header, or freshly minted at ingress). When set, the
    /// engine assembles a span tree for `/v1/trace/<id>` and the response
    /// bypasses the result cache, like [`trace`](QueryRequest::trace).
    pub trace_context: Option<TraceContext>,
}

impl QueryRequest {
    /// A request for `nexi` with the defaults: top-[`DEFAULT_K`], automatic
    /// strategy, vague interpretation, no trace, no deadline.
    pub fn new(nexi: impl Into<String>) -> QueryRequest {
        QueryRequest {
            nexi: nexi.into(),
            k: Some(DEFAULT_K),
            strategy: Strategy::Auto,
            interpretation: Interpretation::default(),
            trace: false,
            deadline_ms: None,
            trace_context: None,
        }
    }

    /// Sets the top-k limit (`None` = all answers).
    pub fn k(mut self, k: impl Into<Option<usize>>) -> QueryRequest {
        self.k = k.into();
        self
    }

    /// Sets the strategy.
    pub fn strategy(mut self, strategy: Strategy) -> QueryRequest {
        self.strategy = strategy;
        self
    }

    /// Sets the structural interpretation.
    pub fn interpretation(mut self, interpretation: Interpretation) -> QueryRequest {
        self.interpretation = interpretation;
        self
    }

    /// Enables/disables the per-query trace.
    pub fn trace(mut self, on: bool) -> QueryRequest {
        self.trace = on;
        self
    }

    /// Sets the evaluation budget in milliseconds (`None` = no deadline).
    pub fn deadline_ms(mut self, ms: impl Into<Option<u64>>) -> QueryRequest {
        self.deadline_ms = ms.into();
        self
    }

    /// Sets the distributed-trace identity.
    pub fn trace_context(mut self, ctx: impl Into<Option<TraceContext>>) -> QueryRequest {
        self.trace_context = ctx.into();
        self
    }

    /// The [`EvalOptions`] this request resolves to, with the deadline
    /// anchored at `start` (the moment the serving layer began handling the
    /// request, so queue time does not silently extend the budget).
    pub fn eval_options_from(&self, start: Instant) -> EvalOptions {
        let opts = EvalOptions::new()
            .k(self.k)
            .strategy(self.strategy)
            .interpretation(self.interpretation)
            .trace(self.trace)
            .trace_context(self.trace_context);
        match self.deadline_ms {
            Some(ms) => opts.deadline_at(start.checked_add(Duration::from_millis(ms))),
            None => opts,
        }
    }

    /// [`eval_options_from`](QueryRequest::eval_options_from) anchored now.
    pub fn eval_options(&self) -> EvalOptions {
        self.eval_options_from(Instant::now())
    }
}

/// Where a response's answers came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from the result cache at the current generation.
    Hit,
    /// Evaluated, and the result is now cached.
    Miss,
    /// Evaluated without consulting the cache (trace requested, or caching
    /// disabled).
    Bypass,
}

impl CacheStatus {
    /// The wire label (`"hit"`, `"miss"`, `"bypass"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Bypass => "bypass",
        }
    }
}

/// The result envelope every front door returns.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// Ranked answers.
    pub answers: Vec<Answer>,
    /// Total answers the query has (see
    /// [`QueryResult::total_answers`](crate::QueryResult::total_answers)).
    pub total_answers: usize,
    /// The strategy that produced the answers (trace label, e.g.
    /// `"merge"`, `"race(ta)"`; `"cache"` never appears — cached responses
    /// report the strategy that originally computed them).
    pub strategy: String,
    /// The maintenance generation the answers are valid for.
    pub generation: u64,
    /// Whether the answers came from the result cache.
    pub cache: CacheStatus,
    /// Server-side handling time (cache lookup + evaluation; excludes
    /// network and HTTP parsing).
    pub server_time: Duration,
    /// The per-query trace, when requested.
    pub trace: Option<QueryTrace>,
}

impl ToJson for QueryResponse {
    /// The versioned wire envelope:
    ///
    /// ```json
    /// {"v":1,"answers":[{"doc":0,"start":1,"end":3,"sid":2,"score":1.25}],
    ///  "total_answers":1,"strategy":"merge","generation":4,"cache":"miss",
    ///  "server_time_us":180,"trace":{...}}
    /// ```
    ///
    /// `trace` is present only when it was requested.
    fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        out.push('{');
        json_field(out, "v", WIRE_VERSION);
        out.push_str(",\"answers\":[");
        for (i, a) in self.answers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"doc\":{},\"start\":{},\"end\":{},\"sid\":{},\"score\":{}}}",
                a.element.doc,
                a.element.start(),
                a.element.end,
                a.sid,
                a.score
            );
        }
        out.push_str("],");
        json_field(out, "total_answers", self.total_answers);
        out.push_str(",\"strategy\":\"");
        out.push_str(&json_escape(&self.strategy));
        out.push_str("\",");
        json_field(out, "generation", self.generation);
        out.push_str(",\"cache\":\"");
        out.push_str(self.cache.as_str());
        out.push_str("\",");
        json_field(out, "server_time_us", self.server_time.as_micros());
        if let Some(trace) = &self.trace {
            out.push_str(",\"trace\":");
            trace.write_json(out);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_index::ElementRef;

    #[test]
    fn builder_defaults_and_setters() {
        let req = QueryRequest::new("//a[about(., x)]");
        assert_eq!(req.k, Some(DEFAULT_K));
        assert_eq!(req.strategy, Strategy::Auto);
        assert!(!req.trace);
        assert_eq!(req.deadline_ms, None);

        let req = req
            .k(None)
            .strategy(Strategy::Merge)
            .trace(true)
            .deadline_ms(50);
        assert_eq!(req.k, None);
        assert_eq!(req.strategy, Strategy::Merge);
        assert!(req.trace);
        assert_eq!(req.deadline_ms, Some(50));
    }

    #[test]
    fn eval_options_anchor_the_deadline_at_start() {
        let start = Instant::now();
        let opts = QueryRequest::new("//a[about(., x)]")
            .deadline_ms(5_000)
            .eval_options_from(start);
        let at = opts.deadline.expect("deadline set");
        assert_eq!(at, start + Duration::from_millis(5_000));
        let opts = QueryRequest::new("//a[about(., x)]").eval_options_from(start);
        assert!(opts.deadline.is_none());
    }

    #[test]
    fn response_envelope_renders_versioned_json() {
        let response = QueryResponse {
            answers: vec![Answer {
                element: ElementRef {
                    doc: 3,
                    end: 9,
                    length: 4,
                },
                sid: 7,
                score: 1.5,
            }],
            total_answers: 12,
            strategy: "race(ta)".into(),
            generation: 42,
            cache: CacheStatus::Hit,
            server_time: Duration::from_micros(250),
            trace: None,
        };
        let json = response.to_json();
        assert!(json.starts_with("{\"v\":1,"));
        assert!(json
            .contains("\"answers\":[{\"doc\":3,\"start\":6,\"end\":9,\"sid\":7,\"score\":1.5}]"));
        assert!(json.contains("\"total_answers\":12"));
        assert!(json.contains("\"strategy\":\"race(ta)\""));
        assert!(json.contains("\"generation\":42"));
        assert!(json.contains("\"cache\":\"hit\""));
        assert!(json.contains("\"server_time_us\":250"));
        assert!(!json.contains("\"trace\""));

        // And it parses back as JSON.
        let v = trex_obs::parse_json(&json).unwrap();
        assert_eq!(v.get("v").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(v.get("cache").and_then(|x| x.as_str()), Some("hit"));
    }
}
