//! [`QueryService`] — the one `QueryRequest → QueryResponse` handler.
//!
//! Every front door (HTTP endpoint, stdin REPL, batch executor) routes
//! through this type, so caching policy, deadline anchoring, and serve
//! metrics are decided in exactly one place.
//!
//! The cache is keyed by `(normalized query, k, strategy, interpretation,
//! maintenance generation)`. Lookups use the *current* generation; inserts
//! use the generation the evaluation actually read its lists under
//! ([`QueryResult::generation`](crate::QueryResult::generation), captured
//! while holding the maintenance read gate). The two differ only when a
//! reconcile commits between lookup and evaluation — the insert then lands
//! on the old generation, where it is correctly unreachable for new
//! lookups. No explicit invalidation exists or is needed: a generation bump
//! makes every older entry unreachable, and LRU ages them out.

use std::sync::Arc;
use std::time::Instant;

use trex_obs::{unix_ms, ServeMetrics, TraceRecord};

use crate::engine::{QueryEngine, QueryResult};
use crate::partition::PartitionedSystem;
use crate::serve::cache::{normalize_nexi, CacheKey, CachedResult, ResultCache};
use crate::serve::request::{CacheStatus, QueryRequest, QueryResponse};
use crate::{Result, TrexError};

/// What the service evaluates against: one engine, or a partitioned
/// system whose scatter-gather merge already reproduces single-store
/// answers. The cache and metrics layers above are identical either way —
/// the only partition-aware decisions are which `evaluate` to call and
/// which generation keys the cache.
enum Target<'a> {
    Engine(QueryEngine<'a>),
    Partitioned(&'a PartitionedSystem),
}

/// Executes [`QueryRequest`]s against a [`QueryEngine`], with an optional
/// generation-keyed [`ResultCache`] and optional [`ServeMetrics`].
///
/// ```no_run
/// use std::sync::Arc;
/// use trex_core::{QueryEngine, QueryRequest, QueryService, ResultCache};
/// # fn demo(index: &trex_index::TrexIndex) -> trex_core::Result<()> {
/// let service = QueryService::new(QueryEngine::new(index))
///     .with_cache(Arc::new(ResultCache::new(1024)));
/// let response = service.execute(&QueryRequest::new("//a//s[about(., xml)]").k(5))?;
/// assert!(response.answers.len() <= 5);
/// # Ok(())
/// # }
/// ```
pub struct QueryService<'a> {
    target: Target<'a>,
    cache: Option<Arc<ResultCache>>,
    metrics: Option<Arc<ServeMetrics>>,
}

impl<'a> QueryService<'a> {
    /// A service over `engine` with no cache and no metrics.
    pub fn new(engine: QueryEngine<'a>) -> QueryService<'a> {
        QueryService {
            target: Target::Engine(engine),
            cache: None,
            metrics: None,
        }
    }

    /// A service over a partitioned system: every request scatters to all
    /// partitions and gathers through the rank-safe merge. Cache keys use
    /// the system generation (maximum over partitions).
    pub fn partitioned(system: &'a PartitionedSystem) -> QueryService<'a> {
        QueryService {
            target: Target::Partitioned(system),
            cache: None,
            metrics: None,
        }
    }

    /// Attaches a result cache (shared — the HTTP workers and the REPL use
    /// one cache).
    pub fn with_cache(mut self, cache: Arc<ResultCache>) -> QueryService<'a> {
        self.cache = Some(cache);
        self
    }

    /// Attaches serve metrics (cache hit/miss counters, request timer).
    pub fn with_metrics(mut self, metrics: Arc<ServeMetrics>) -> QueryService<'a> {
        self.metrics = Some(metrics);
        self
    }

    /// Ingests one raw XML document through whatever the service fronts,
    /// returning the assigned (global) doc id and the generation after the
    /// ingest — the pair the serving layer reports to the client.
    pub fn ingest(&self, xml: &str) -> std::result::Result<(u32, u64), trex_index::IndexError> {
        match &self.target {
            Target::Engine(engine) => {
                let index = engine.index();
                let doc_id = index.ingest_document(xml)?;
                Ok((doc_id, index.maintenance().generation()))
            }
            Target::Partitioned(system) => {
                let doc_id = system.ingest_document(xml)?;
                Ok((doc_id, system.generation()))
            }
        }
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&Arc<ResultCache>> {
        self.cache.as_ref()
    }

    /// Executes one request, anchoring its deadline budget now.
    ///
    /// Traced requests bypass the cache in both directions: a replayed
    /// trace would describe work that never happened, and a traced result
    /// must not shadow an untraced one.
    pub fn execute(&self, req: &QueryRequest) -> Result<QueryResponse> {
        self.execute_from(req, Instant::now())
    }

    /// Like [`execute`](QueryService::execute), with the deadline budget
    /// anchored at `started` — the moment the serving layer first saw the
    /// request, so queue wait counts against the budget.
    pub fn execute_from(&self, req: &QueryRequest, started: Instant) -> Result<QueryResponse> {
        let result = self.run(req, started);
        if let Some(metrics) = &self.metrics {
            if metrics.timers.enabled() {
                metrics.timers.request.record_duration(started.elapsed());
            }
            if let Err(e) = &result {
                match e {
                    TrexError::DeadlineExceeded => metrics.counters.deadline_exceeded.incr(),
                    TrexError::Parse(_)
                    | TrexError::MissingIndex(_)
                    | TrexError::Unsupported(_) => metrics.counters.parse_errors.incr(),
                    TrexError::Index(_)
                    | TrexError::Workload(_)
                    | TrexError::CorpusFull
                    | TrexError::Internal(_) => metrics.counters.internal_errors.incr(),
                }
            }
        }
        result
    }

    fn run(&self, req: &QueryRequest, started: Instant) -> Result<QueryResponse> {
        // Trace-context requests bypass for the same reason traced ones do:
        // the span tree must describe work that actually happened.
        let cache = match (&self.cache, req.trace || req.trace_context.is_some()) {
            (Some(cache), false) => cache,
            _ => {
                if let Some(m) = &self.metrics {
                    m.counters.cache_bypass.incr();
                }
                let result = self.evaluate(req, started)?;
                return Ok(self.respond(result, CacheStatus::Bypass, started));
            }
        };

        let key = CacheKey {
            nexi: normalize_nexi(&req.nexi),
            k: req.k,
            strategy: req.strategy,
            interpretation: req.interpretation,
            generation: self.current_generation(),
        };
        if let Some(cached) = cache.get(&key) {
            if let Some(m) = &self.metrics {
                m.counters.cache_hits.incr();
            }
            return Ok(QueryResponse {
                answers: cached.answers.clone(),
                total_answers: cached.total_answers,
                strategy: cached.strategy.clone(),
                generation: cached.generation,
                cache: CacheStatus::Hit,
                server_time: started.elapsed(),
                trace: None,
            });
        }

        if let Some(m) = &self.metrics {
            m.counters.cache_misses.incr();
        }
        let result = self.evaluate(req, started)?;
        // Key the insert at the generation the evaluation actually read
        // under the gate, not the one looked up above.
        cache.insert(
            CacheKey {
                generation: result.generation,
                ..key
            },
            Arc::new(CachedResult {
                answers: result.answers.clone(),
                total_answers: result.total_answers,
                strategy: result.stats.name().to_string(),
                generation: result.generation,
            }),
        );
        Ok(self.respond(result, CacheStatus::Miss, started))
    }

    fn current_generation(&self) -> u64 {
        match &self.target {
            Target::Engine(engine) => engine.index().maintenance().generation(),
            Target::Partitioned(system) => system.generation(),
        }
    }

    fn evaluate(&self, req: &QueryRequest, started: Instant) -> Result<QueryResult> {
        let opts = req.eval_options_from(started);
        let result = match &self.target {
            Target::Engine(engine) => engine.evaluate(&req.nexi, opts),
            Target::Partitioned(system) => system.evaluate(&req.nexi, opts),
        }?;
        // File the assembled span tree under the request's trace id so
        // `/v1/trace/<id>` can serve it after the response has gone out.
        if let (Some(ctx), Some(metrics)) = (req.trace_context, &self.metrics) {
            if let Some(root) = result.trace_tree.clone() {
                metrics.traces.insert(TraceRecord {
                    trace_id: ctx.trace_id,
                    unix_ms: unix_ms(),
                    truncated: result.trace_truncated,
                    root,
                });
            }
        }
        Ok(result)
    }

    fn respond(&self, result: QueryResult, cache: CacheStatus, started: Instant) -> QueryResponse {
        QueryResponse {
            answers: result.answers,
            total_answers: result.total_answers,
            strategy: result.stats.name().to_string(),
            generation: result.generation,
            cache,
            server_time: started.elapsed(),
            trace: result.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use trex_index::{IndexBuilder, TrexIndex};
    use trex_storage::Store;
    use trex_summary::{AliasMap, SummaryKind};
    use trex_text::Analyzer;

    fn build(name: &str) -> (TrexIndex, std::path::PathBuf) {
        let mut path = std::env::temp_dir();
        path.push(format!("trex-service-{name}-{}", std::process::id()));
        let store = Store::create(&path, 128).unwrap();
        let mut b = IndexBuilder::new(
            &store,
            SummaryKind::Incoming,
            AliasMap::identity(),
            Analyzer::verbatim(),
        )
        .unwrap();
        for i in 0..8 {
            b.add_document(&format!("<a><s>cat dog xml w{i}</s><s>bird w{i}</s></a>"))
                .unwrap();
        }
        b.finish().unwrap();
        (TrexIndex::open(StdArc::new(store)).unwrap(), path)
    }

    #[test]
    fn repeat_query_hits_the_cache_with_identical_answers() {
        let (index, path) = build("hit");
        let metrics = Arc::new(ServeMetrics::new());
        let service = QueryService::new(QueryEngine::new(&index))
            .with_cache(Arc::new(ResultCache::new(16)))
            .with_metrics(Arc::clone(&metrics));

        let req = QueryRequest::new("//a//s[about(., cat)]").k(Some(5));
        let first = service.execute(&req).unwrap();
        assert_eq!(first.cache, CacheStatus::Miss);
        let second = service.execute(&req).unwrap();
        assert_eq!(second.cache, CacheStatus::Hit);
        assert_eq!(second.answers, first.answers);
        assert_eq!(second.strategy, first.strategy);
        assert_eq!(second.generation, first.generation);

        // A whitespace/case variant of the same query also hits.
        let variant = QueryRequest::new("  //a//s[about(.,   CAT)] ").k(Some(5));
        assert_eq!(service.execute(&variant).unwrap().cache, CacheStatus::Hit);

        let snap = metrics.counters.snapshot();
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.cache_hits, 2);
        assert_eq!(snap.cache_bypass, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_and_cacheless_requests_bypass() {
        let (index, path) = build("bypass");
        let metrics = Arc::new(ServeMetrics::new());

        // Traced request, cache attached: bypass (and nothing inserted).
        let cache = Arc::new(ResultCache::new(16));
        let service = QueryService::new(QueryEngine::new(&index))
            .with_cache(Arc::clone(&cache))
            .with_metrics(Arc::clone(&metrics));
        let traced = QueryRequest::new("//a//s[about(., cat)]").trace(true);
        let response = service.execute(&traced).unwrap();
        assert_eq!(response.cache, CacheStatus::Bypass);
        assert!(response.trace.is_some());
        assert!(cache.is_empty());

        // No cache attached: bypass too.
        let service = QueryService::new(QueryEngine::new(&index));
        let plain = QueryRequest::new("//a//s[about(., cat)]");
        assert_eq!(service.execute(&plain).unwrap().cache, CacheStatus::Bypass);

        assert_eq!(metrics.counters.snapshot().cache_bypass, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn different_k_or_strategy_are_distinct_entries() {
        let (index, path) = build("keys");
        let service =
            QueryService::new(QueryEngine::new(&index)).with_cache(Arc::new(ResultCache::new(16)));
        let base = QueryRequest::new("//a//s[about(., cat)]");
        assert_eq!(
            service.execute(&base.clone().k(Some(3))).unwrap().cache,
            CacheStatus::Miss
        );
        assert_eq!(
            service.execute(&base.clone().k(Some(7))).unwrap().cache,
            CacheStatus::Miss
        );
        assert_eq!(
            service.execute(&base.k(Some(3))).unwrap().cache,
            CacheStatus::Hit
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn errors_count_into_the_right_buckets() {
        let (index, path) = build("errors");
        let metrics = Arc::new(ServeMetrics::new());
        let service =
            QueryService::new(QueryEngine::new(&index)).with_metrics(Arc::clone(&metrics));

        let malformed = QueryRequest::new("//a//s[about(., )]]]");
        assert!(service.execute(&malformed).is_err());

        let expired = QueryRequest::new("//a//s[about(., cat)]").deadline_ms(0);
        match service.execute(&expired) {
            Err(TrexError::DeadlineExceeded) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }

        let snap = metrics.counters.snapshot();
        assert_eq!(snap.parse_errors, 1);
        assert_eq!(snap.deadline_exceeded, 1);
        assert_eq!(snap.internal_errors, 0);
        std::fs::remove_file(&path).ok();
    }
}
