//! The serving layer: the single public query API and its supporting
//! machinery — cooperative deadlines, the generation-keyed result cache,
//! and the wire schema.
//!
//! The types here are transport-agnostic: the HTTP front end, the stdin
//! REPL, and the batch executor all sit on [`QueryService`], which is the
//! only place caching and deadline policy live. See `DESIGN.md` ("Serving
//! queries over the wire") for the full picture.

pub mod cache;
pub mod deadline;
pub mod request;
pub mod service;
pub mod wire;

pub use cache::{normalize_nexi, CacheKey, CachedResult, ResultCache, DEFAULT_CACHE_ENTRIES};
pub use deadline::{Deadline, CHECK_INTERVAL};
pub use request::{CacheStatus, QueryRequest, QueryResponse, DEFAULT_K, WIRE_VERSION};
pub use service::QueryService;
pub use wire::{error_body, parse_query_request, render_query_request, WireError};
