//! The generation-keyed result cache.
//!
//! Cache entries are keyed by `(normalized NEXI, k, strategy,
//! interpretation, maintenance generation)`. The generation component is
//! the whole invalidation story: `Maintenance::generation()` is bumped by
//! every reconcile-cycle list mutation, so a reconcile that rewrites the
//! redundant lists silently orphans every cached result of the previous
//! list set — no flush call, no epoch broadcast, zero coordination beyond
//! the counter the maintenance gate already maintains. Orphaned entries age
//! out through ordinary LRU eviction.
//!
//! Lookups key at the *current* generation; inserts key at the generation
//! the query actually read under the maintenance read gate. The two differ
//! only when a reconcile commits while the query runs, in which case the
//! insert lands on the old generation and is correctly unreachable.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use trex_nexi::Interpretation;

use crate::answer::Answer;
use crate::engine::Strategy;

/// Default capacity (entries) of a [`ResultCache`].
pub const DEFAULT_CACHE_ENTRIES: usize = 1024;

/// Canonicalizes NEXI text for cache keying: leading/trailing whitespace
/// trimmed, internal whitespace runs collapsed to one space, and ASCII
/// letters lowercased — so `"//A//S[about(., Cat)]"` and
/// `" //a//s[about(.,  cat)] "` share one cache line. NEXI keywords are
/// matched case-insensitively downstream (the analyzer folds case), so the
/// fold cannot conflate queries with different answers.
pub fn normalize_nexi(nexi: &str) -> String {
    let mut out = String::with_capacity(nexi.len());
    let mut pending_space = false;
    for c in nexi.trim().chars() {
        if c.is_whitespace() {
            pending_space = true;
            continue;
        }
        if pending_space && !out.is_empty() {
            out.push(' ');
        }
        pending_space = false;
        out.push(c.to_ascii_lowercase());
    }
    out
}

/// Full identity of a cacheable evaluation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`normalize_nexi`]'d query text.
    pub nexi: String,
    /// Top-k limit (`None` = all answers).
    pub k: Option<usize>,
    /// Requested strategy (results differ across strategies only in which
    /// answers a TA prefix surfaces, but the caller asked for a specific
    /// execution, so it is part of the identity).
    pub strategy: Strategy,
    /// Structural interpretation.
    pub interpretation: Interpretation,
    /// The maintenance generation the result was (or would be) computed
    /// against.
    pub generation: u64,
}

/// The cached portion of a query's outcome: everything a repeat request
/// needs, minus per-execution artefacts (stats, traces) that would be lies
/// if replayed.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// Ranked answers.
    pub answers: Vec<Answer>,
    /// Total answers of the query.
    pub total_answers: usize,
    /// The strategy label that produced the answers (e.g. `"merge"`).
    pub strategy: String,
    /// The generation the answers were computed at.
    pub generation: u64,
}

struct Entry {
    value: Arc<CachedResult>,
    last_used: u64,
}

struct Inner {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
}

/// A bounded LRU map from [`CacheKey`] to [`CachedResult`].
///
/// One mutex over a `HashMap` with per-entry use stamps; eviction is a
/// linear scan for the stalest entry. Inserts happen only on cache misses —
/// i.e. after a full strategy evaluation, which dwarfs an O(capacity) scan
/// by orders of magnitude — and hits touch one entry under a short critical
/// section, so the simple structure holds up at serving concurrency.
pub struct ResultCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl ResultCache {
    /// A cache bounded to `capacity` entries (min 1).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
        }
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of cached results (stale generations included until
    /// they age out).
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CachedResult>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.get_mut(key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.value)
        })
    }

    /// Inserts (or replaces) `key`, evicting the least-recently-used entry
    /// when the cache is full.
    pub fn insert(&self, key: CacheKey, value: Arc<CachedResult>) {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            if let Some(stalest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&stalest);
            }
        }
        inner.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
    }

    /// Drops every entry (tests and explicit operator resets; generation
    /// bumps make this unnecessary in normal operation).
    pub fn clear(&self) {
        self.inner.lock().map.clear();
    }
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(nexi: &str, generation: u64) -> CacheKey {
        CacheKey {
            nexi: normalize_nexi(nexi),
            k: Some(10),
            strategy: Strategy::Auto,
            interpretation: Interpretation::default(),
            generation,
        }
    }

    fn value(generation: u64) -> Arc<CachedResult> {
        Arc::new(CachedResult {
            answers: Vec::new(),
            total_answers: 0,
            strategy: "merge".into(),
            generation,
        })
    }

    #[test]
    fn normalization_collapses_whitespace_and_case() {
        assert_eq!(
            normalize_nexi("  //A//S[about(.,\t Cat  dog)] \n"),
            "//a//s[about(., cat dog)]"
        );
        assert_eq!(normalize_nexi(""), "");
        assert_eq!(normalize_nexi("   "), "");
        assert_eq!(normalize_nexi("x"), "x");
        // Equivalent spellings share a key; different queries do not.
        assert_eq!(
            normalize_nexi("//a[about(., XML)]"),
            normalize_nexi("  //a[about(.,   xml)]")
        );
        assert_ne!(
            normalize_nexi("//a[about(., xml)]"),
            normalize_nexi("//b[about(., xml)]")
        );
    }

    #[test]
    fn hit_miss_and_generation_isolation() {
        let cache = ResultCache::new(8);
        assert!(cache.get(&key("//a[about(., x)]", 1)).is_none());
        cache.insert(key("//a[about(., x)]", 1), value(1));
        assert!(cache.get(&key("//a[about(., x)]", 1)).is_some());
        // Same query at a later generation is a distinct key: a reconcile
        // bump invalidates without touching the map.
        assert!(cache.get(&key("//a[about(., x)]", 2)).is_none());
        // Normalized spelling variants hit.
        assert!(cache.get(&key("  //A[about(.,   x)] ", 1)).is_some());
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let cache = ResultCache::new(2);
        cache.insert(key("//a[about(., p)]", 1), value(1));
        cache.insert(key("//a[about(., q)]", 1), value(1));
        // Touch p so q becomes the LRU victim.
        assert!(cache.get(&key("//a[about(., p)]", 1)).is_some());
        cache.insert(key("//a[about(., r)]", 1), value(1));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key("//a[about(., p)]", 1)).is_some());
        assert!(cache.get(&key("//a[about(., q)]", 1)).is_none());
        assert!(cache.get(&key("//a[about(., r)]", 1)).is_some());
    }

    #[test]
    fn reinsert_does_not_evict() {
        let cache = ResultCache::new(2);
        cache.insert(key("//a[about(., p)]", 1), value(1));
        cache.insert(key("//a[about(., q)]", 1), value(1));
        cache.insert(key("//a[about(., p)]", 1), value(1));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key("//a[about(., q)]", 1)).is_some());
    }

    #[test]
    fn concurrent_use_is_safe() {
        let cache = Arc::new(ResultCache::new(64));
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..500 {
                        let k = key(&format!("//a[about(., w{})]", (t * 17 + i) % 100), 1);
                        if cache.get(&k).is_none() {
                            cache.insert(k, value(1));
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= 64);
    }
}
