//! The wire schema: JSON request bodies in, structured JSON errors out.
//!
//! Requests (`POST /v1/query` bodies) are parsed with the dependency-free
//! [`trex_obs::json`] parser:
//!
//! ```json
//! {"nexi": "//article//sec[about(., xml)]", "k": 10,
//!  "strategy": "auto", "trace": false, "deadline_ms": 250}
//! ```
//!
//! Only `nexi` is required; unknown fields are ignored (forward
//! compatibility — newer clients may send knobs an older server does not
//! know). Errors render as `{"code", "message", "retryable"}` so clients
//! can branch on `code` without parsing prose.

use std::fmt;

use trex_obs::{json_escape, parse_json, JsonValue};

use crate::serve::request::QueryRequest;

/// A request body that could not be turned into a [`QueryRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The body is not valid JSON.
    BadJson(String),
    /// The body is valid JSON but not an object.
    NotAnObject,
    /// A required field is absent.
    MissingField(&'static str),
    /// A field has the wrong type or an invalid value.
    BadField(&'static str, String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadJson(e) => write!(f, "request body is not valid JSON: {e}"),
            WireError::NotAnObject => write!(f, "request body must be a JSON object"),
            WireError::MissingField(name) => write!(f, "missing required field {name:?}"),
            WireError::BadField(name, why) => write!(f, "invalid field {name:?}: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Parses one `POST /v1/query` body into a [`QueryRequest`].
///
/// Field semantics: `nexi` (string, required); `k` (non-negative integer;
/// absent → [`DEFAULT_K`](crate::serve::request::DEFAULT_K), `null` → all
/// answers); `strategy` (string, one of `era|ta|merge|race|auto`);
/// `interpretation` (string, `strict|vague`); `trace` (bool);
/// `deadline_ms` (non-negative integer). Unknown fields are ignored.
pub fn parse_query_request(body: &str) -> Result<QueryRequest, WireError> {
    let value = parse_json(body).map_err(|e| WireError::BadJson(e.to_string()))?;
    let JsonValue::Object(_) = &value else {
        return Err(WireError::NotAnObject);
    };

    let nexi = value
        .get("nexi")
        .ok_or(WireError::MissingField("nexi"))?
        .as_str()
        .ok_or_else(|| WireError::BadField("nexi", "expected a string".into()))?;
    let mut req = QueryRequest::new(nexi);

    if let Some(k) = value.get("k") {
        req = match k {
            JsonValue::Null => req.k(None),
            _ => req.k(Some(
                usize::try_from(k.as_u64().ok_or_else(|| {
                    WireError::BadField("k", "expected a non-negative integer".into())
                })?)
                .map_err(|_| WireError::BadField("k", "out of range".into()))?,
            )),
        };
    }

    if let Some(strategy) = value.get("strategy") {
        if !strategy.is_null() {
            let name = strategy
                .as_str()
                .ok_or_else(|| WireError::BadField("strategy", "expected a string".into()))?;
            req = req.strategy(
                name.parse()
                    .map_err(|e: String| WireError::BadField("strategy", e))?,
            );
        }
    }

    if let Some(interp) = value.get("interpretation") {
        if !interp.is_null() {
            let name = interp
                .as_str()
                .ok_or_else(|| WireError::BadField("interpretation", "expected a string".into()))?;
            req = req.interpretation(match name.to_ascii_lowercase().as_str() {
                "strict" => trex_nexi::Interpretation::Strict,
                "vague" => trex_nexi::Interpretation::Vague,
                other => {
                    return Err(WireError::BadField(
                        "interpretation",
                        format!("unknown interpretation {other:?}; expected strict or vague"),
                    ))
                }
            });
        }
    }

    if let Some(trace) = value.get("trace") {
        if !trace.is_null() {
            req = req.trace(
                trace
                    .as_bool()
                    .ok_or_else(|| WireError::BadField("trace", "expected a boolean".into()))?,
            );
        }
    }

    if let Some(deadline) = value.get("deadline_ms") {
        if !deadline.is_null() {
            req = req.deadline_ms(Some(deadline.as_u64().ok_or_else(|| {
                WireError::BadField("deadline_ms", "expected a non-negative integer".into())
            })?));
        }
    }

    Ok(req)
}

/// Renders a [`QueryRequest`] as a wire body — the inverse of
/// [`parse_query_request`], used by the load bench, the tests, and clients
/// embedding the crate.
pub fn render_query_request(req: &QueryRequest) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\"nexi\":\"");
    out.push_str(&json_escape(&req.nexi));
    out.push('"');
    match req.k {
        Some(k) => {
            let _ = write!(out, ",\"k\":{k}");
        }
        None => out.push_str(",\"k\":null"),
    }
    let _ = write!(out, ",\"strategy\":\"{}\"", req.strategy.as_str());
    let interp = match req.interpretation {
        trex_nexi::Interpretation::Strict => "strict",
        trex_nexi::Interpretation::Vague => "vague",
    };
    let _ = write!(out, ",\"interpretation\":\"{interp}\"");
    let _ = write!(out, ",\"trace\":{}", req.trace);
    if let Some(ms) = req.deadline_ms {
        let _ = write!(out, ",\"deadline_ms\":{ms}");
    }
    out.push('}');
    out
}

/// The structured error body every non-200 response carries:
/// `{"code":"...","message":"...","retryable":bool}`.
pub fn error_body(code: &str, message: &str, retryable: bool) -> String {
    format!(
        "{{\"code\":\"{}\",\"message\":\"{}\",\"retryable\":{retryable}}}",
        json_escape(code),
        json_escape(message),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Strategy;
    use trex_nexi::Interpretation;

    #[test]
    fn full_body_round_trips() {
        let req = QueryRequest::new("//a//s[about(., \"quoted phrase\")]")
            .k(Some(25))
            .strategy(Strategy::Race)
            .interpretation(Interpretation::Strict)
            .trace(true)
            .deadline_ms(125);
        let body = render_query_request(&req);
        let back = parse_query_request(&body).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn minimal_body_gets_defaults() {
        let req = parse_query_request(r#"{"nexi": "//a[about(., x)]"}"#).unwrap();
        assert_eq!(req.nexi, "//a[about(., x)]");
        assert_eq!(req.k, Some(super::super::request::DEFAULT_K));
        assert_eq!(req.strategy, Strategy::Auto);
        assert!(!req.trace);
        assert_eq!(req.deadline_ms, None);
    }

    #[test]
    fn null_k_means_all_answers_and_unknown_fields_are_ignored() {
        let req =
            parse_query_request(r#"{"nexi": "//a[about(., x)]", "k": null, "future_knob": 7}"#)
                .unwrap();
        assert_eq!(req.k, None);
    }

    #[test]
    fn bad_bodies_name_the_problem() {
        assert!(matches!(
            parse_query_request("not json"),
            Err(WireError::BadJson(_))
        ));
        assert!(matches!(
            parse_query_request("[1,2]"),
            Err(WireError::NotAnObject)
        ));
        assert!(matches!(
            parse_query_request("{\"k\": 5}"),
            Err(WireError::MissingField("nexi"))
        ));
        assert!(matches!(
            parse_query_request(r#"{"nexi": "//a", "k": -3}"#),
            Err(WireError::BadField("k", _))
        ));
        assert!(matches!(
            parse_query_request(r#"{"nexi": "//a", "strategy": "warp"}"#),
            Err(WireError::BadField("strategy", _))
        ));
        assert!(matches!(
            parse_query_request(r#"{"nexi": "//a", "deadline_ms": "soon"}"#),
            Err(WireError::BadField("deadline_ms", _))
        ));
        assert!(matches!(
            parse_query_request(r#"{"nexi": 42}"#),
            Err(WireError::BadField("nexi", _))
        ));
    }

    #[test]
    fn error_body_escapes_and_flags() {
        let body = error_body("parse_error", "bad \"quote\"", false);
        assert_eq!(
            body,
            "{\"code\":\"parse_error\",\"message\":\"bad \\\"quote\\\"\",\"retryable\":false}"
        );
        let v = trex_obs::parse_json(&body).unwrap();
        assert_eq!(v.get("retryable").and_then(|x| x.as_bool()), Some(false));
    }
}
