//! Cooperative per-query deadlines.
//!
//! A [`Deadline`] is a point in time the strategies agree to respect: the
//! ERA sweep, TA's sorted-access loop, and Merge's heap loop each call
//! [`Deadline::check`] at their iteration boundaries (every
//! [`CHECK_INTERVAL`] units of work, alongside the existing race-cancel
//! checks), so an over-budget query stops within one check window and
//! returns [`TrexError::DeadlineExceeded`] instead of holding a worker —
//! and the maintenance read gate — for an unbounded time. There is no
//! preemption: a deadline only fires where a strategy polls it, which is
//! exactly the granularity the race-cancel flags already established.

use std::time::{Duration, Instant};

use crate::{Result, TrexError};

/// Units of work (positions read, sorted accesses, merged elements) between
/// consecutive deadline polls inside a strategy loop. One `Instant::now()`
/// per interval keeps the polling cost far below the work it brackets.
pub const CHECK_INTERVAL: u64 = 1024;

/// A point in time after which a query should stop, or no limit at all.
///
/// `Copy` and two words wide, so threading it through the strategy calls is
/// free. The no-limit variant ([`Deadline::none`]) never reads the clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// No deadline: [`check`](Deadline::check) always succeeds.
    pub fn none() -> Deadline {
        Deadline { at: None }
    }

    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Deadline {
        Deadline {
            at: Instant::now().checked_add(budget),
        }
    }

    /// A deadline at an absolute instant.
    pub fn at(at: Instant) -> Deadline {
        Deadline { at: Some(at) }
    }

    /// From an optional absolute instant (`None` = no deadline) — the shape
    /// [`EvalOptions::deadline`](crate::EvalOptions) carries.
    pub fn from_opt(at: Option<Instant>) -> Deadline {
        Deadline { at }
    }

    /// Whether a limit is set at all.
    pub fn is_set(&self) -> bool {
        self.at.is_some()
    }

    /// Whether the deadline has passed. Reads the clock only when a limit
    /// is set.
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }

    /// Time left before the deadline; `None` when no limit is set, zero
    /// when already expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// `Err(TrexError::DeadlineExceeded)` once the deadline has passed.
    #[inline]
    pub fn check(&self) -> Result<()> {
        if self.expired() {
            Err(TrexError::DeadlineExceeded)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_deadline_never_fires() {
        let d = Deadline::none();
        assert!(!d.is_set());
        assert!(!d.expired());
        assert!(d.check().is_ok());
        assert_eq!(d.remaining(), None);
    }

    #[test]
    fn generous_deadline_passes_then_zero_budget_fires() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(d.is_set());
        assert!(d.check().is_ok());
        assert!(d.remaining().unwrap() > Duration::from_secs(3000));

        let expired = Deadline::after(Duration::ZERO);
        assert!(expired.expired());
        assert!(matches!(expired.check(), Err(TrexError::DeadlineExceeded)));
        assert_eq!(expired.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn absolute_deadline_in_the_past_fires() {
        let d = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(d.expired());
    }
}
