//! TA — the threshold algorithm over RPLs (paper §3.3).
//!
//! TReX implements TA "in a version similar to the implementation that has
//! been used in TopX": per-term iterators over the RPLs table deliver
//! elements in descending score order (sorted access only — the RPL layout
//! offers no random access by element), candidates accumulate partial sums
//! with best/worst score bounds, and the algorithm stops once no candidate
//! outside the current top-k can still enter it *and* the top-k scores are
//! exact. Entries whose sid is not among the query sids are skipped (§3.3).
//!
//! Heap management is instrumented with [`HeapClock`] so the ITA ("ideal
//! heap") time of §5.2 can be derived as `wall - heap_time`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use trex_index::{ElementRef, RplTable};
use trex_summary::Sid;
use trex_text::TermId;

use crate::answer::{top_k, Answer};
use crate::heap::{HeapClock, HeapPolicy, TopKHeap};
use crate::serve::deadline::{Deadline, CHECK_INTERVAL};
use crate::{Result, TrexError};

/// Hard upper bound on the number of query terms: candidate bookkeeping
/// tracks seen terms in a `u64` bitmask (`1 << j`).
pub const TA_MAX_TERMS: usize = 64;

/// Options for a TA run.
#[derive(Debug, Clone, Copy)]
pub struct TaOptions {
    /// How many answers to return.
    pub k: usize,
    /// Measure heap-management time (for ITA derivation). Disable in
    /// correctness tests to avoid timing overhead.
    pub measure_heap: bool,
    /// Sorted accesses between stopping-condition checks.
    pub check_interval: usize,
    /// Top-k heap maintenance policy (heap-cost ablation).
    pub heap_policy: HeapPolicy,
}

impl TaOptions {
    /// Defaults: measure heap time, check every 64 accesses.
    pub fn new(k: usize) -> TaOptions {
        TaOptions {
            k,
            measure_heap: true,
            check_interval: 64,
            heap_policy: HeapPolicy::Binary,
        }
    }
}

/// Execution statistics of one TA run.
#[derive(Debug, Clone, Default)]
pub struct TaStats {
    /// Wall-clock time (includes heap management).
    pub wall: Duration,
    /// Time spent in top-k heap operations; `wall - heap_time` is the ITA
    /// time of the paper's figures.
    pub heap_time: Duration,
    /// Sorted accesses per term (entries read from each RPL, matching or
    /// skipped).
    pub depth: Vec<u64>,
    /// Total sorted accesses.
    pub sorted_accesses: u64,
    /// Top-k heap (pushes, pops).
    pub heap_ops: (u64, u64),
    /// Peak size of the candidate pool.
    pub candidates_peak: usize,
    /// Whether every RPL was read to its end — the §5.2 observation that
    /// explains why Merge often beats TA.
    pub read_entire_lists: bool,
}

impl TaStats {
    /// The derived ITA ("ideal heap management") time.
    pub fn ita_time(&self) -> Duration {
        self.wall.saturating_sub(self.heap_time)
    }
}

#[derive(Debug)]
struct Candidate {
    element: ElementRef,
    sid: Sid,
    /// Sum of scores seen so far (the worst score). Used for bounds only;
    /// the exact final score is recomputed from `contrib` in term order so
    /// that floating-point summation order matches ERA and Merge.
    sum: f32,
    /// Per-term contributions (indexed like `terms`).
    contrib: Vec<f32>,
    /// Bit j set ⇔ term j's contribution has been seen.
    mask: u64,
}

impl Candidate {
    /// The exact score in canonical (term-order) summation.
    fn exact_score(&self) -> f32 {
        self.contrib.iter().sum()
    }
}

/// Runs TA for the translated query `(sids, terms)`.
///
/// Requires the RPL lists of every `(term, sid)` pair to be materialised;
/// the engine checks this before choosing TA. At most 64 terms.
pub fn ta(
    rpls: &RplTable,
    sids: &[Sid],
    terms: &[TermId],
    opts: TaOptions,
) -> Result<(Vec<Answer>, TaStats)> {
    Ok(
        ta_with_cancel(rpls, sids, terms, opts, None, Deadline::none())?
            .expect("uncancelled run completes"),
    )
}

/// Like [`ta`], but aborts (returning `Ok(None)`) as soon as `cancel` is
/// set. Used by the engine's race mode (paper §4: run TA and Merge in
/// parallel and "return the answer from the computation that finishes
/// first") — the loser is cancelled instead of running to completion.
/// The [`Deadline`] is polled every [`CHECK_INTERVAL`] sorted accesses; an
/// expired run fails with
/// [`TrexError::DeadlineExceeded`](crate::TrexError::DeadlineExceeded)
/// (distinct from cancellation's `Ok(None)`).
pub fn ta_with_cancel(
    rpls: &RplTable,
    sids: &[Sid],
    terms: &[TermId],
    opts: TaOptions,
    cancel: Option<&AtomicBool>,
    deadline: Deadline,
) -> Result<Option<(Vec<Answer>, TaStats)>> {
    if terms.len() > TA_MAX_TERMS {
        // `1 << j` on the u64 mask would shift out of range for term 64:
        // a debug panic, or a silently wrapped mask (wrong top-k) in
        // release. Refuse up front with a clear error instead.
        return Err(TrexError::Unsupported(format!(
            "TA supports at most {TA_MAX_TERMS} query terms, got {}",
            terms.len()
        )));
    }
    if opts.k == 0 {
        return Ok(Some((Vec::new(), TaStats::default())));
    }
    let start = Instant::now();
    let n = terms.len();
    let mut stats = TaStats {
        depth: vec![0; n],
        ..TaStats::default()
    };
    let mut clock = if opts.measure_heap {
        HeapClock::measuring()
    } else {
        HeapClock::disabled()
    };

    let sid_set: std::collections::HashSet<Sid> = sids.iter().copied().collect();
    let full_mask: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };

    let mut iters = Vec::with_capacity(n);
    for &term in terms {
        iters.push(rpls.iter_term(term)?);
    }
    // Upper bound on the score of the next unseen entry of each term.
    let mut high: Vec<f32> = vec![f32::INFINITY; n];
    let mut done: Vec<bool> = vec![false; n];

    // Keyed by (sid, ElementRef) — the full element identity: an ancestor
    // and its descendant can share (doc, end) (differing in length), and a
    // parent with a single child can share the whole span (differing in
    // sid). Both are distinct answers.
    let mut candidates: HashMap<(Sid, ElementRef), Candidate> = HashMap::new();
    let mut topk: TopKHeap<(Sid, ElementRef)> = TopKHeap::with_policy(opts.k, opts.heap_policy);
    let mut since_check = 0usize;
    let mut last_deadline_check = 0u64;

    let result = 'outer: loop {
        if let Some(flag) = cancel {
            if flag.load(Ordering::Relaxed) {
                return Ok(None);
            }
        }
        // Deadline poll on its own (coarser) cadence: one clock read per
        // CHECK_INTERVAL sorted accesses, independent of the
        // stopping-condition cadence — a single-term query must not read
        // the clock once per entry.
        if stats.sorted_accesses - last_deadline_check >= CHECK_INTERVAL {
            last_deadline_check = stats.sorted_accesses;
            deadline.check()?;
        }
        let mut progressed = false;
        for j in 0..n {
            if done[j] {
                continue;
            }
            match iters[j].next_entry()? {
                None => {
                    done[j] = true;
                    high[j] = 0.0;
                }
                Some(entry) => {
                    progressed = true;
                    stats.depth[j] += 1;
                    stats.sorted_accesses += 1;
                    since_check += 1;
                    high[j] = entry.score;
                    if !sid_set.contains(&entry.sid) {
                        continue; // skipped: wrong extent (§3.3)
                    }
                    let key = (entry.sid, entry.element);
                    let cand = candidates.entry(key).or_insert_with(|| Candidate {
                        element: entry.element,
                        sid: entry.sid,
                        sum: 0.0,
                        contrib: vec![0.0; n],
                        mask: 0,
                    });
                    debug_assert_eq!(cand.mask & (1 << j), 0, "one entry per (term, element)");
                    cand.sum += entry.score;
                    cand.contrib[j] = entry.score;
                    cand.mask |= 1 << j;
                    let sum = cand.sum;
                    // Offer to the top-k heap (heap management, clocked).
                    topk.offer(sum, key, &mut clock);
                }
            }
        }
        stats.candidates_peak = stats.candidates_peak.max(candidates.len());

        let all_done = done.iter().all(|&d| d);
        if all_done {
            break 'outer finish(&candidates, opts.k);
        }
        if !progressed {
            break 'outer finish(&candidates, opts.k);
        }

        if since_check >= opts.check_interval {
            since_check = 0;
            if check_and_prune(&mut candidates, &high, &done, full_mask, opts.k) {
                break 'outer finish(&candidates, opts.k);
            }
        }
    };

    stats.heap_time = clock.total();
    stats.heap_ops = topk.op_counts();
    stats.read_entire_lists = done.iter().all(|&d| d);
    stats.wall = start.elapsed();
    Ok(Some((result, stats)))
}

fn best_of(c: &Candidate, high: &[f32], full_mask: u64) -> f32 {
    let mut best = c.sum;
    let unseen = full_mask & !c.mask;
    for (j, &h) in high.iter().enumerate() {
        if unseen & (1 << j) != 0 {
            best += h;
        }
    }
    best
}

/// The exact-top-k stopping condition, fused with safe candidate pruning:
/// 1. the threshold `T = Σ high_j` cannot reach the current k-th worst sum
///    (no *new* candidate can enter or tie into the top-k);
/// 2. no existing candidate outside the top-k has a best score reaching the
///    k-th worst sum;
/// 3. every top-k candidate's score is exact (its unseen terms are all
///    exhausted), so the reported scores equal the true scores.
///
/// Candidates whose best possible score is strictly below the k-th worst
/// sum can never reach the top-k and are dropped here. The bound must come
/// from the exact candidate pool — the lazy top-k heap holds stale
/// duplicate entries that can inflate the k-th entry above the true k-th
/// best candidate, so its threshold is never used for pruning.
fn check_and_prune(
    candidates: &mut HashMap<(Sid, ElementRef), Candidate>,
    high: &[f32],
    done: &[bool],
    full_mask: u64,
    k: usize,
) -> bool {
    if candidates.len() < k {
        return false;
    }
    // k-th largest sum. `total_cmp` (the TopKHeap convention): decode
    // rejects non-finite scores, but a sort comparator must never panic on
    // the values it is handed — a corrupt sum would otherwise take down the
    // whole query thread instead of surfacing as an error.
    let mut sums: Vec<f32> = candidates.values().map(|c| c.sum).collect();
    sums.sort_unstable_by(|a, b| b.total_cmp(a));
    let min_k = sums[k - 1];

    candidates.retain(|_, c| best_of(c, high, full_mask) >= min_k);

    // (1) new candidates are out. Strict comparison: a newcomer that could
    // *tie* min_k must still be discovered, so ties at the boundary are
    // resolved deterministically (matching ERA's tiebreak).
    let threshold: f32 = high
        .iter()
        .zip(done)
        .map(|(&h, &d)| if d { 0.0 } else { h })
        .sum();
    if threshold >= min_k {
        return false;
    }

    // (2) + (3).
    let mut in_topk = 0usize;
    for c in candidates.values() {
        let best = best_of(c, high, full_mask);
        if c.sum >= min_k && in_topk < k {
            in_topk += 1;
            // Top-k member: score must be exact.
            let unseen = full_mask & !c.mask;
            let pending: f32 = high
                .iter()
                .enumerate()
                .filter(|&(j, _)| unseen & (1 << j) != 0 && !done[j])
                .map(|(_, &h)| h)
                .sum();
            if pending > 0.0 {
                return false;
            }
        } else if best >= min_k {
            // An outside candidate that could still tie or beat min_k —
            // keep reading (strict, for deterministic tie resolution).
            return false;
        }
    }
    true
}

fn finish(candidates: &HashMap<(Sid, ElementRef), Candidate>, k: usize) -> Vec<Answer> {
    let answers: Vec<Answer> = candidates
        .values()
        .map(|c| Answer {
            element: c.element,
            sid: c.sid,
            score: c.exact_score(),
        })
        .collect();
    top_k(answers, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_storage::Store;

    fn with_rpls<R>(name: &str, f: impl FnOnce(&mut RplTable) -> R) -> R {
        let mut path = std::env::temp_dir();
        path.push(format!("trex-ta-{name}-{}", std::process::id()));
        let store = Store::create(&path, 64).unwrap();
        let mut t = RplTable::open(&store).unwrap();
        let r = f(&mut t);
        drop(t);
        drop(store);
        std::fs::remove_file(&path).ok();
        r
    }

    fn el(doc: u32, end: u32) -> ElementRef {
        ElementRef {
            doc,
            end,
            length: 2,
        }
    }

    fn opts(k: usize) -> TaOptions {
        TaOptions {
            k,
            measure_heap: false,
            check_interval: 2,
            heap_policy: HeapPolicy::Binary,
        }
    }

    #[test]
    fn single_term_top_k() {
        with_rpls("single", |rpls| {
            rpls.put_list(1, 10, &[(el(0, 1), 5.0), (el(0, 3), 3.0), (el(0, 5), 1.0)])
                .unwrap();
            let (answers, stats) = ta(rpls, &[10], &[1], opts(2)).unwrap();
            assert_eq!(answers.len(), 2);
            assert_eq!(answers[0].score, 5.0);
            assert_eq!(answers[1].score, 3.0);
            assert!(stats.sorted_accesses >= 2);
        });
    }

    #[test]
    fn sums_across_terms() {
        with_rpls("sum", |rpls| {
            // Element (0,1) appears in both term lists.
            rpls.put_list(1, 10, &[(el(0, 1), 2.0), (el(0, 3), 1.5)])
                .unwrap();
            rpls.put_list(2, 10, &[(el(0, 1), 1.0), (el(0, 5), 0.5)])
                .unwrap();
            let (answers, _) = ta(rpls, &[10], &[1, 2], opts(3)).unwrap();
            assert_eq!(answers.len(), 3);
            assert_eq!(answers[0].element, el(0, 1));
            assert!((answers[0].score - 3.0).abs() < 1e-6);
            assert_eq!(answers[1].score, 1.5);
        });
    }

    #[test]
    fn skips_entries_of_other_sids() {
        with_rpls("skip", |rpls| {
            rpls.put_list(1, 10, &[(el(0, 1), 5.0)]).unwrap();
            rpls.put_list(1, 99, &[(el(9, 9), 100.0)]).unwrap();
            let (answers, stats) = ta(rpls, &[10], &[1], opts(5)).unwrap();
            assert_eq!(answers.len(), 1);
            assert_eq!(answers[0].element, el(0, 1));
            // The foreign entry was read (sorted access) but skipped.
            assert!(stats.sorted_accesses >= 2);
        });
    }

    #[test]
    fn k_larger_than_result_returns_all() {
        with_rpls("bigk", |rpls| {
            rpls.put_list(1, 10, &[(el(0, 1), 1.0), (el(0, 3), 0.5)])
                .unwrap();
            let (answers, stats) = ta(rpls, &[10], &[1], opts(100)).unwrap();
            assert_eq!(answers.len(), 2);
            assert!(stats.read_entire_lists);
        });
    }

    #[test]
    fn empty_everything() {
        with_rpls("empty", |rpls| {
            let (answers, _) = ta(rpls, &[10], &[1], opts(5)).unwrap();
            assert!(answers.is_empty());
            let (answers, _) = ta(rpls, &[], &[], opts(5)).unwrap();
            assert!(answers.is_empty());
        });
    }

    #[test]
    fn early_stop_with_skewed_scores() {
        with_rpls("earlystop", |rpls| {
            // One dominant element, long tail. k=1 should not need the
            // whole list: after the top entry, threshold = next score < top.
            let mut entries = vec![(el(0, 1), 100.0)];
            for i in 0..500u32 {
                entries.push((el(1, 2 * i + 1), 0.001));
            }
            rpls.put_list(1, 10, &entries).unwrap();
            let (answers, stats) = ta(
                rpls,
                &[10],
                &[1],
                TaOptions {
                    k: 1,
                    measure_heap: false,
                    check_interval: 4,
                    heap_policy: HeapPolicy::Binary,
                },
            )
            .unwrap();
            assert_eq!(answers[0].score, 100.0);
            assert!(
                stats.sorted_accesses < 100,
                "should stop early, read {}",
                stats.sorted_accesses
            );
            assert!(!stats.read_entire_lists);
        });
    }

    #[test]
    fn more_than_64_terms_is_a_clean_error() {
        with_rpls("arity65", |rpls| {
            let terms: Vec<TermId> = (0..65).collect();
            let err = ta(rpls, &[10], &terms, opts(5)).unwrap_err();
            match err {
                TrexError::Unsupported(msg) => {
                    assert!(msg.contains("64"), "mentions the limit: {msg}");
                    assert!(msg.contains("65"), "mentions the arity: {msg}");
                }
                other => panic!("expected Unsupported, got {other:?}"),
            }
        });
    }

    #[test]
    fn exactly_64_terms_is_accepted() {
        with_rpls("arity64", |rpls| {
            // Only term 63 has a list; the other 63 iterators are empty.
            // Exercises the `n == 64` full-mask branch end to end.
            rpls.put_list(63, 10, &[(el(0, 1), 2.0)]).unwrap();
            let terms: Vec<TermId> = (0..64).collect();
            let (answers, _) = ta(rpls, &[10], &terms, opts(5)).unwrap();
            assert_eq!(answers.len(), 1);
            assert_eq!(answers[0].element, el(0, 1));
        });
    }

    #[test]
    fn corrupt_nan_score_is_an_error_not_a_panic() {
        use trex_index::blocks::block_key;
        use trex_index::rpl::RPLS_TABLE;
        use trex_storage::codec::{inverted_score_bits, varint_len};

        let mut path = std::env::temp_dir();
        path.push(format!("trex-ta-nan-{}", std::process::id()));
        let store = Store::create(&path, 64).unwrap();
        let mut rpls = RplTable::open(&store).unwrap();
        rpls.put_list(1, 10, &[(el(0, 1), 5.0), (el(0, 3), 3.0)])
            .unwrap();
        // Hand-corrupt the stored block: overwrite the header's fixed
        // first-score field with bits that decode to NaN. `put_list` can
        // never write this (it debug-asserts finite scores), so go
        // underneath it and flip the bytes on disk.
        let mut table = store.open_table(RPLS_TABLE).unwrap();
        let key = block_key(1, 10, 0);
        let mut value = table.get(&key).unwrap().expect("block 0 exists");
        let off = varint_len(2); // count varint precedes first_inv
        value[off..off + 4].copy_from_slice(&inverted_score_bits(f32::NAN).to_be_bytes());
        table.insert(&key, &value).unwrap();
        let err = ta(&rpls, &[10], &[1], opts(5)).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("non-finite"), "decode-level rejection: {msg}");
        drop(rpls);
        drop(store);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn heap_time_is_measured_when_enabled() {
        with_rpls("heaptime", |rpls| {
            let entries: Vec<(ElementRef, f32)> = (0..2000u32)
                .map(|i| (el(0, 2 * i + 1), (i % 37) as f32))
                .collect();
            rpls.put_list(1, 10, &entries).unwrap();
            let (_, stats) = ta(rpls, &[10], &[1], TaOptions::new(10)).unwrap();
            assert!(stats.heap_time > Duration::ZERO);
            assert!(stats.ita_time() <= stats.wall);
            assert!(stats.heap_ops.0 > 0);
        });
    }
}
