//! Property test: ERA (the zig-zag of paper Fig. 2) is equivalent to the
//! obvious quadratic evaluation — for every element in the requested
//! extents, count the occurrences of every term inside its span.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;
use trex_core::era::era;
use trex_index::{ElementRef, IndexBuilder, TrexIndex};
use trex_storage::Store;
use trex_summary::{AliasMap, Sid, SummaryKind};
use trex_text::Analyzer;

fn build(name: &str, docs: &[String]) -> (TrexIndex, std::path::PathBuf) {
    let mut path = std::env::temp_dir();
    path.push(format!("trex-eravn-{name}-{}", std::process::id()));
    let store = Store::create(&path, 128).unwrap();
    // Verbatim analyzer: no stopwords/stemming, so the naive model below is
    // a straightforward token count.
    let mut builder = IndexBuilder::new(
        &store,
        SummaryKind::Incoming,
        AliasMap::identity(),
        Analyzer::verbatim(),
    )
    .unwrap();
    for d in docs {
        builder.add_document(d).unwrap();
    }
    builder.finish().unwrap();
    (TrexIndex::open(Arc::new(store)).unwrap(), path)
}

/// Naive evaluation: walk every extent element and count term positions in
/// its span via the posting lists.
fn naive(index: &TrexIndex, sids: &[Sid], terms: &[u32]) -> HashMap<(Sid, ElementRef), Vec<u32>> {
    let elements = index.elements().unwrap();
    let postings = index.postings().unwrap();
    // Materialise all positions per term.
    let mut term_positions: Vec<Vec<trex_index::Position>> = Vec::new();
    for &t in terms {
        let mut it = postings.positions(t).unwrap();
        let mut v = Vec::new();
        loop {
            let p = it.next_position().unwrap();
            if p.is_max() {
                break;
            }
            v.push(p);
        }
        term_positions.push(v);
    }
    let mut out = HashMap::new();
    for &sid in sids {
        let mut it = elements.extent(sid).unwrap();
        while let Some(e) = it.next_element().unwrap() {
            let tf: Vec<u32> = term_positions
                .iter()
                .map(|ps| ps.iter().filter(|p| e.contains(**p)).count() as u32)
                .collect();
            if tf.iter().any(|&c| c > 0) {
                out.insert((sid, e), tf);
            }
        }
    }
    out
}

/// Builds a random document from a tiny vocabulary with nested sections so
/// extents overlap heavily.
fn doc_strategy() -> impl Strategy<Value = String> {
    let word = proptest::sample::select(vec!["cat", "dog", "fox", "owl", "ant"]);
    let para = proptest::collection::vec(word, 0..6).prop_map(|ws| ws.join(" "));
    proptest::collection::vec((para.clone(), proptest::collection::vec(para, 0..3)), 1..5).prop_map(
        |sections| {
            let mut xml = String::from("<a>");
            for (lead, subs) in sections {
                xml.push_str("<s>");
                xml.push_str(&lead);
                for sub in subs {
                    xml.push_str("<ss>");
                    xml.push_str(&sub);
                    xml.push_str("</ss>");
                }
                xml.push_str("</s>");
            }
            xml.push_str("</a>");
            xml
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn prop_era_equals_naive(
        docs in proptest::collection::vec(doc_strategy(), 1..5),
        pick_terms in proptest::collection::vec(0usize..5, 1..4),
    ) {
        let hash: u64 = docs.iter().map(|d| d.len() as u64).sum::<u64>()
            ^ (pick_terms.len() as u64) << 32;
        let (index, path) = build(&format!("{hash}"), &docs);

        // Query over every extent (a, s, ss where present) and the chosen terms.
        let sids: Vec<Sid> = (1..=index.summary().node_count() as Sid).collect();
        let vocab = ["cat", "dog", "fox", "owl", "ant"];
        let mut terms: Vec<u32> = pick_terms
            .iter()
            .filter_map(|&i| index.dictionary().lookup(vocab[i]))
            .collect();
        terms.sort_unstable();
        terms.dedup();
        prop_assume!(!terms.is_empty());

        let elements = index.elements().unwrap();
        let postings = index.postings().unwrap();
        let (matches, _) = era(&elements, &postings, &sids, &terms).unwrap();

        let got: HashMap<(Sid, ElementRef), Vec<u32>> = matches
            .into_iter()
            .map(|m| ((m.sid, m.element), m.tf))
            .collect();
        let want = naive(&index, &sids, &terms);
        prop_assert_eq!(got, want);
        std::fs::remove_file(&path).ok();
    }
}
