//! Query-path matching against a summary tree.
//!
//! The translation phase of TReX maps "each path p in the query from the root
//! to an `about()` function … to a set of sids" (paper §3.1): the summary
//! nodes whose extents intersect the result of evaluating `p` over the
//! corpus. Because the incoming summary partitions elements exactly by their
//! root-to-element label path, evaluating the path over the *summary tree*
//! yields precisely those sids — no document access needed.
//!
//! Supported XPath subset (what NEXI allows in its structural part): the
//! child (`/`) and descendant-or-self (`//`) axes and the name test `tag`
//! or `*`.

use std::fmt;

use crate::tree::{Sid, Summary, SummaryKind, ROOT_SID};

/// A location step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// `true` for `//` (descendant), `false` for `/` (child).
    pub descendant: bool,
    /// The name test; `None` means `*`.
    pub label: Option<String>,
}

/// A parsed path pattern such as `//article//sec`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathPattern {
    steps: Vec<Step>,
}

/// Errors from [`PathPattern::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// The path was empty or had an empty step (`a///b`, trailing `/`).
    Malformed(String),
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Malformed(p) => write!(f, "malformed path pattern: {p:?}"),
        }
    }
}

impl std::error::Error for PathError {}

impl PathPattern {
    /// Builds a pattern from pre-split steps.
    pub fn new(steps: Vec<Step>) -> PathPattern {
        PathPattern { steps }
    }

    /// Parses textual form: `//article//sec`, `/books/journal`, `//bdy//*`.
    /// A leading bare name (`article//sec`) is treated as `/article//sec`,
    /// matching NEXI's root-anchored interpretation.
    pub fn parse(input: &str) -> Result<PathPattern, PathError> {
        let input = input.trim();
        if input.is_empty() {
            return Err(PathError::Malformed(input.to_string()));
        }
        let mut steps = Vec::new();
        let mut rest = input;
        // A leading bare name means a child step from the root.
        if !rest.starts_with('/') {
            rest = input;
            let (label, remainder) = split_step(rest);
            steps.push(make_step(false, label, input)?);
            rest = remainder;
        }
        while !rest.is_empty() {
            let descendant = if let Some(r) = rest.strip_prefix("//") {
                rest = r;
                true
            } else if let Some(r) = rest.strip_prefix('/') {
                rest = r;
                false
            } else {
                return Err(PathError::Malformed(input.to_string()));
            };
            let (label, remainder) = split_step(rest);
            steps.push(make_step(descendant, label, input)?);
            rest = remainder;
        }
        if steps.is_empty() {
            return Err(PathError::Malformed(input.to_string()));
        }
        Ok(PathPattern { steps })
    }

    /// The parsed steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Applies `f` to every step label (used to alias-resolve query labels
    /// for vague interpretation).
    pub fn map_labels(&self, f: impl Fn(&str) -> String) -> PathPattern {
        PathPattern {
            steps: self
                .steps
                .iter()
                .map(|s| Step {
                    descendant: s.descendant,
                    label: s.label.as_deref().map(&f),
                })
                .collect(),
        }
    }

    /// All sids of `summary` whose label path matches this pattern.
    ///
    /// Requires a tree-shaped ([`SummaryKind::Incoming`]) summary: a tag
    /// summary does not retain ancestry, so only single-step patterns are
    /// meaningful there (handled as a label lookup).
    pub fn match_summary(&self, summary: &Summary) -> Vec<Sid> {
        if summary.kind() != SummaryKind::Incoming {
            // Tag and k-suffix summaries do not retain full ancestry; only
            // the final name test can be honoured (a conservative superset).
            return self.match_tag_summary(summary);
        }
        let mut out = Vec::new();
        // `states` holds indices i: "steps[..i] matched along the path so far".
        self.walk(summary, ROOT_SID, &[0], &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn match_tag_summary(&self, summary: &Summary) -> Vec<Sid> {
        // Only the last step's name test can be honoured.
        let Some(last) = self.steps.last() else {
            return Vec::new();
        };
        match &last.label {
            Some(label) => summary.sids_with_label(label).to_vec(),
            None => summary.sids().collect(),
        }
    }

    fn walk(&self, summary: &Summary, node: Sid, states: &[usize], out: &mut Vec<Sid>) {
        for &child in &summary.node(node).children {
            let label = &summary.node(child).label;
            let mut next_states: Vec<usize> = Vec::with_capacity(states.len() + 1);
            for &i in states {
                debug_assert!(i < self.steps.len());
                let step = &self.steps[i];
                // A descendant-axis step stays pending below this node.
                if step.descendant {
                    push_state(&mut next_states, i);
                }
                if step_matches(step, label) {
                    if i + 1 == self.steps.len() {
                        out.push(child);
                    } else {
                        push_state(&mut next_states, i + 1);
                    }
                }
            }
            if !next_states.is_empty() {
                self.walk(summary, child, &next_states, out);
            }
        }
    }
}

fn push_state(states: &mut Vec<usize>, s: usize) {
    if !states.contains(&s) {
        states.push(s);
    }
}

fn step_matches(step: &Step, label: &str) -> bool {
    match &step.label {
        Some(want) => want == label,
        None => true,
    }
}

fn split_step(rest: &str) -> (&str, &str) {
    match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, ""),
    }
}

fn make_step(descendant: bool, label: &str, whole: &str) -> Result<Step, PathError> {
    if label.is_empty() {
        return Err(PathError::Malformed(whole.to_string()));
    }
    Ok(Step {
        descendant,
        label: if label == "*" {
            None
        } else {
            Some(label.to_string())
        },
    })
}

impl fmt::Display for PathPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.steps {
            f.write_str(if step.descendant { "//" } else { "/" })?;
            match &step.label {
                Some(l) => f.write_str(l)?,
                None => f.write_str("*")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alias::AliasMap;
    use crate::builder::SummaryBuilder;
    use trex_xml::Document;

    fn sample() -> Summary {
        let docs = [
            "<books><journal><article><fm><atl>t</atl></fm><bdy><sec><ss1>x</ss1></sec><sec>y</sec></bdy><bm><app><sec>z</sec></app></bm></article></journal></books>",
            "<books><conf><article><bdy><sec>w</sec></bdy></article></conf></books>",
        ];
        let mut b = SummaryBuilder::new(SummaryKind::Incoming, AliasMap::identity());
        for d in docs {
            b.add_document(&Document::parse(d).unwrap());
        }
        b.finish().0
    }

    fn labels_of(summary: &Summary, sids: &[Sid]) -> Vec<String> {
        let mut out: Vec<String> = sids
            .iter()
            .map(|&s| summary.label_path(s).join("/"))
            .collect();
        out.sort();
        out
    }

    #[test]
    fn parse_accepts_nexi_forms() {
        let p = PathPattern::parse("//article//sec").unwrap();
        assert_eq!(p.steps().len(), 2);
        assert!(p.steps()[0].descendant);
        assert_eq!(p.to_string(), "//article//sec");

        let p = PathPattern::parse("/books/journal").unwrap();
        assert!(!p.steps()[0].descendant);

        let p = PathPattern::parse("//bdy//*").unwrap();
        assert_eq!(p.steps()[1].label, None);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(PathPattern::parse("").is_err());
        assert!(PathPattern::parse("///a").is_err());
        assert!(PathPattern::parse("//a/").is_err());
    }

    #[test]
    fn descendant_axis_matches_at_any_depth() {
        let s = sample();
        let p = PathPattern::parse("//article//sec").unwrap();
        let matched = labels_of(&s, &p.match_summary(&s));
        assert_eq!(
            matched,
            vec![
                "books/conf/article/bdy/sec",
                "books/journal/article/bdy/sec",
                "books/journal/article/bm/app/sec",
            ]
        );
    }

    #[test]
    fn child_axis_is_exact() {
        let s = sample();
        let p = PathPattern::parse("/books/journal/article/bdy/sec").unwrap();
        let matched = labels_of(&s, &p.match_summary(&s));
        assert_eq!(matched, vec!["books/journal/article/bdy/sec"]);
    }

    #[test]
    fn wildcard_matches_all_labels() {
        let s = sample();
        let p = PathPattern::parse("//bdy//*").unwrap();
        let matched = labels_of(&s, &p.match_summary(&s));
        assert_eq!(
            matched,
            vec![
                "books/conf/article/bdy/sec",
                "books/journal/article/bdy/sec",
                "books/journal/article/bdy/sec/ss1",
            ]
        );
    }

    #[test]
    fn nested_same_label_matches_both() {
        let mut b = SummaryBuilder::new(SummaryKind::Incoming, AliasMap::identity());
        b.add_document(&Document::parse("<a><sec><sec>inner</sec></sec></a>").unwrap());
        let s = b.finish().0;
        let p = PathPattern::parse("//sec").unwrap();
        assert_eq!(p.match_summary(&s).len(), 2);
    }

    #[test]
    fn unmatched_path_is_empty() {
        let s = sample();
        let p = PathPattern::parse("//nonexistent//sec").unwrap();
        assert!(p.match_summary(&s).is_empty());
    }

    #[test]
    fn map_labels_applies_alias() {
        let alias = AliasMap::inex_ieee();
        let p = PathPattern::parse("//article//ss1").unwrap();
        let mapped = p.map_labels(|l| alias.resolve(l).to_string());
        assert_eq!(mapped.to_string(), "//article//sec");
    }

    #[test]
    fn tag_summary_matches_by_final_label_only() {
        let docs = ["<a><sec>x</sec><b><sec>y</sec></b></a>"];
        let mut b = SummaryBuilder::new(SummaryKind::Tag, AliasMap::identity());
        for d in docs {
            b.add_document(&Document::parse(d).unwrap());
        }
        let s = b.finish().0;
        let p = PathPattern::parse("//a//sec").unwrap();
        let sids = p.match_summary(&s);
        assert_eq!(sids.len(), 1);
        assert_eq!(s.node(sids[0]).label, "sec");
    }
}
