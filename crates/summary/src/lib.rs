//! # trex-summary
//!
//! Structural summaries for TReX (paper §2.1): the summary tree with sids
//! and extents ([`tree`]), builders over parsed documents ([`builder`]),
//! tag alias mappings ([`alias`]) and query-path → sid matching ([`path`]).
//!
//! Two partition criteria are provided — the **incoming summary** (by
//! root-to-element label path) and the coarser **tag summary** (by label) —
//! each with and without alias resolution, reproducing the four summaries
//! whose sizes the paper reports in §2.1.
//!
//! ```
//! use trex_summary::{AliasMap, PathPattern, SummaryBuilder, SummaryKind};
//! use trex_xml::Document;
//!
//! let doc = Document::parse("<article><bdy><sec>query evaluation</sec><ss1>more</ss1></bdy></article>").unwrap();
//! let mut builder = SummaryBuilder::new(SummaryKind::Incoming, AliasMap::inex_ieee());
//! builder.add_document(&doc);
//! let (summary, _alias) = builder.finish();
//!
//! // ss1 is an alias of sec, so one summary node covers both elements.
//! let path = PathPattern::parse("//article//sec").unwrap();
//! let sids = path.match_summary(&summary);
//! assert_eq!(sids.len(), 1);
//! assert_eq!(summary.node(sids[0]).extent_size, 2);
//! ```

pub mod alias;
pub mod builder;
pub mod path;
pub mod tree;

pub use alias::AliasMap;
pub use builder::SummaryBuilder;
pub use path::{PathError, PathPattern, Step};
pub use tree::{ExtentStats, Sid, Summary, SummaryCursor, SummaryKind, SummaryNode, ROOT_SID};
