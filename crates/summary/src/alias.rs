//! Tag alias mappings.
//!
//! "Different elements with different tags represent the same type of
//! information. […] we make use of the alias mapping provided by INEX to
//! replace all synonyms by their alias" (paper §2.1). Since the INEX mapping
//! file is not redistributable, this module ships the equivalent built-in
//! mapping for the tag families the synthetic collections generate, and
//! accepts user-defined mappings.

use std::collections::HashMap;

/// A synonym → canonical-tag mapping.
#[derive(Debug, Clone, Default)]
pub struct AliasMap {
    map: HashMap<String, String>,
}

impl AliasMap {
    /// The identity mapping (no aliasing) — the "no aliases" summaries.
    pub fn identity() -> AliasMap {
        AliasMap::default()
    }

    /// The built-in mapping mirroring the INEX IEEE alias groups used in the
    /// paper's example: section synonyms collapse to `sec`, paragraph
    /// synonyms to `p`, item synonyms to `item`, title synonyms to `st`.
    pub fn inex_ieee() -> AliasMap {
        let mut m = AliasMap::default();
        for (from, to) in [
            ("ss1", "sec"),
            ("ss2", "sec"),
            ("ss3", "sec"),
            ("ip1", "p"),
            ("ip2", "p"),
            ("ip3", "p"),
            ("ilrj", "p"),
            ("item-none", "item"),
            ("item-bullet", "item"),
            ("item-numbered", "item"),
            ("st1", "st"),
            ("st2", "st"),
        ] {
            m.insert(from, to);
        }
        m
    }

    /// The built-in mapping for the Wikipedia-like collection.
    pub fn inex_wiki() -> AliasMap {
        let mut m = AliasMap::default();
        for (from, to) in [
            ("section1", "section"),
            ("section2", "section"),
            ("subsection", "section"),
            ("image", "figure"),
            ("picture", "figure"),
        ] {
            m.insert(from, to);
        }
        m
    }

    /// Adds a single synonym rule.
    pub fn insert(&mut self, from: &str, to: &str) {
        self.map.insert(from.to_string(), to.to_string());
    }

    /// Resolves `label` to its canonical form (itself when unmapped).
    pub fn resolve<'a>(&'a self, label: &'a str) -> &'a str {
        self.map.get(label).map(String::as_str).unwrap_or(label)
    }

    /// Number of synonym rules.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether this is the identity mapping.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// All (synonym, canonical) pairs, sorted by synonym — used to persist
    /// the mapping alongside the summary it produced.
    pub fn pairs(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = self
            .map
            .iter()
            .map(|(f, t)| (f.clone(), t.clone()))
            .collect();
        out.sort();
        out
    }

    /// Reconstructs a mapping from pairs produced by [`AliasMap::pairs`].
    pub fn from_pairs(pairs: impl IntoIterator<Item = (String, String)>) -> AliasMap {
        AliasMap {
            map: pairs.into_iter().collect(),
        }
    }

    /// All labels that resolve to `canonical`, including itself.
    pub fn synonyms_of(&self, canonical: &str) -> Vec<String> {
        let mut out: Vec<String> = self
            .map
            .iter()
            .filter(|(_, to)| to.as_str() == canonical)
            .map(|(from, _)| from.clone())
            .collect();
        out.push(canonical.to_string());
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_resolves_to_self() {
        let m = AliasMap::identity();
        assert_eq!(m.resolve("sec"), "sec");
        assert!(m.is_empty());
    }

    #[test]
    fn ieee_mapping_collapses_section_synonyms() {
        let m = AliasMap::inex_ieee();
        assert_eq!(m.resolve("ss1"), "sec");
        assert_eq!(m.resolve("ss2"), "sec");
        assert_eq!(m.resolve("sec"), "sec");
        assert_eq!(m.resolve("article"), "article");
    }

    #[test]
    fn synonyms_of_lists_the_whole_family() {
        let m = AliasMap::inex_ieee();
        assert_eq!(m.synonyms_of("sec"), vec!["sec", "ss1", "ss2", "ss3"]);
    }

    #[test]
    fn custom_rules_apply() {
        let mut m = AliasMap::identity();
        m.insert("paragraph", "p");
        assert_eq!(m.resolve("paragraph"), "p");
        assert_eq!(m.len(), 1);
    }
}
