//! Builds summaries from parsed documents.

use trex_xml::{Document, NodeKind};

use crate::alias::AliasMap;
use crate::tree::{Summary, SummaryCursor, SummaryKind};

/// Accumulates a [`Summary`] over a stream of documents, applying an alias
/// mapping to labels as they are inserted.
pub struct SummaryBuilder {
    summary: Summary,
    alias: AliasMap,
}

impl SummaryBuilder {
    /// Starts a builder for the given kind and alias mapping. Use
    /// [`AliasMap::identity`] for a "no aliases" summary.
    pub fn new(kind: SummaryKind, alias: AliasMap) -> SummaryBuilder {
        SummaryBuilder {
            summary: Summary::new(kind),
            alias,
        }
    }

    /// Adds every element of `doc` to the summary.
    pub fn add_document(&mut self, doc: &Document) {
        let mut cursor = SummaryCursor::new();
        self.walk(doc, doc.root(), &mut cursor);
    }

    fn walk(&mut self, doc: &Document, node: trex_xml::NodeId, cursor: &mut SummaryCursor) {
        match &doc.node(node).kind {
            NodeKind::Text(_) => {}
            NodeKind::Element { name, .. } => {
                let label = self.alias.resolve(name).to_string();
                let sid = cursor.enter(&mut self.summary, &label);
                self.summary.record_element(sid);
                for &child in &doc.node(node).children {
                    self.walk(doc, child, cursor);
                }
                cursor.leave();
            }
        }
    }

    /// The alias mapping in use.
    pub fn alias(&self) -> &AliasMap {
        &self.alias
    }

    /// Finishes the build, returning the summary and the alias map (the
    /// translator needs the same map to resolve query labels).
    pub fn finish(self) -> (Summary, AliasMap) {
        (self.summary, self.alias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Document {
        Document::parse(s).unwrap()
    }

    #[test]
    fn alias_collapses_synonym_paths() {
        let doc = parse("<article><bdy><sec>a</sec><ss1>b</ss1><ss2>c</ss2></bdy></article>");
        // Without aliases: three sibling labels.
        let mut plain = SummaryBuilder::new(SummaryKind::Incoming, AliasMap::identity());
        plain.add_document(&doc);
        let (plain, _) = plain.finish();
        assert_eq!(plain.node_count(), 5); // article, bdy, sec, ss1, ss2

        // With aliases: one collapsed `sec` node with extent 3.
        let mut aliased = SummaryBuilder::new(SummaryKind::Incoming, AliasMap::inex_ieee());
        aliased.add_document(&doc);
        let (aliased, _) = aliased.finish();
        assert_eq!(aliased.node_count(), 3); // article, bdy, sec
        let sec = aliased.sids_with_label("sec")[0];
        assert_eq!(aliased.node(sec).extent_size, 3);
    }

    #[test]
    fn multiple_documents_share_nodes() {
        let mut b = SummaryBuilder::new(SummaryKind::Incoming, AliasMap::identity());
        b.add_document(&parse("<a><b>x</b></a>"));
        b.add_document(&parse("<a><b>y</b><c/></a>"));
        let (s, _) = b.finish();
        assert_eq!(s.node_count(), 3); // a, a/b, a/c
        let b_sid = s.sids_with_label("b")[0];
        assert_eq!(s.node(b_sid).extent_size, 2);
    }

    #[test]
    fn heterogeneous_roots_coexist() {
        let mut b = SummaryBuilder::new(SummaryKind::Incoming, AliasMap::identity());
        b.add_document(&parse("<article><sec>x</sec></article>"));
        b.add_document(&parse("<book><sec>y</sec></book>"));
        let (s, _) = b.finish();
        assert_eq!(s.sids_with_label("sec").len(), 2);
        assert_eq!(s.sids_with_label("article").len(), 1);
    }
}
