//! The summary tree: nodes, extents, incremental cursor, serialisation.
//!
//! A structural summary is "a labeled tree that describes, in a concise way,
//! the labels and edges of the document" (paper §2.1). Each summary node has
//! a *sid* and an extent — the set of XML elements it stands for. TReX keeps
//! only extent *counts* here; element identities live in the `Elements`
//! table keyed by sid.

use std::collections::HashMap;

/// Summary node identifier. Sid 0 is the virtual collection root (its extent
/// is empty); document root elements are its children.
pub type Sid = u32;

/// The virtual root's sid.
pub const ROOT_SID: Sid = 0;

/// Which partition criterion produced a summary.
///
/// `Incoming` and `Tag` are the two summaries of the paper's Figure 1;
/// `KSuffix(k)` is the A(k)-index adapted to trees (Kaushik et al., cited in
/// paper §2.1): elements are equivalent iff the last `k` labels of their
/// incoming paths agree. `KSuffix(1)` induces the same partition as `Tag`;
/// as `k` grows it converges to `Incoming`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaryKind {
    /// Nodes partitioned by incoming label path (a refinement of `Tag`).
    Incoming,
    /// Nodes partitioned by tag only.
    Tag,
    /// Nodes partitioned by the k-suffix of the incoming label path.
    KSuffix(u8),
}

/// One node of a summary tree.
#[derive(Debug, Clone)]
pub struct SummaryNode {
    /// The (possibly alias-resolved) label of this node.
    pub label: String,
    /// Parent sid; `None` only for the virtual root.
    pub parent: Option<Sid>,
    /// Children in creation order.
    pub children: Vec<Sid>,
    /// Number of XML elements in this node's extent.
    pub extent_size: u64,
}

/// A structural summary of a collection.
#[derive(Debug, Clone)]
pub struct Summary {
    kind: SummaryKind,
    nodes: Vec<SummaryNode>,
    /// (parent sid, label) → child sid, for O(1) insertion and descent.
    child_index: HashMap<(Sid, String), Sid>,
    /// label → sids carrying it (for tag summaries and for vague matching).
    label_index: HashMap<String, Vec<Sid>>,
    /// How many ancestor/descendant pairs were observed sharing an extent.
    /// TReX only evaluates retrieval on nesting-free summaries ("no two XML
    /// elements in the same extent where one encapsulates the other", §2.1);
    /// the cursor counts violations so callers can check
    /// [`Summary::is_nesting_free`].
    nesting_violations: u64,
}

impl Summary {
    /// Creates an empty summary of the given kind.
    pub fn new(kind: SummaryKind) -> Summary {
        Summary {
            kind,
            nodes: vec![SummaryNode {
                label: String::new(),
                parent: None,
                children: Vec::new(),
                extent_size: 0,
            }],
            child_index: HashMap::new(),
            label_index: HashMap::new(),
            nesting_violations: 0,
        }
    }

    /// The partition criterion of this summary.
    pub fn kind(&self) -> SummaryKind {
        self.kind
    }

    /// Number of summary nodes, excluding the virtual root — the size figure
    /// the paper reports ("the complete incoming summary … has 11563 nodes").
    pub fn node_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Borrows a node.
    pub fn node(&self, sid: Sid) -> &SummaryNode {
        &self.nodes[sid as usize]
    }

    /// All sids excluding the virtual root.
    pub fn sids(&self) -> impl Iterator<Item = Sid> + '_ {
        1..self.nodes.len() as Sid
    }

    /// Finds or creates the child of `parent` for `label`; bumps nothing.
    ///
    /// For a `Tag` summary, every label lives directly under the root
    /// regardless of `parent`, implementing the coarser partition. For a
    /// `KSuffix` summary, use [`SummaryCursor::enter`], which knows the
    /// label stack the suffix is computed from.
    pub fn enter(&mut self, parent: Sid, label: &str) -> Sid {
        let effective_parent = match self.kind {
            SummaryKind::Incoming => parent,
            SummaryKind::Tag => ROOT_SID,
            SummaryKind::KSuffix(_) => parent, // cursor drives the trie walk
        };
        self.enter_child(effective_parent, label)
    }

    /// Raw find-or-create of a child node (no kind dispatch).
    fn enter_child(&mut self, effective_parent: Sid, label: &str) -> Sid {
        if let Some(&sid) = self.child_index.get(&(effective_parent, label.to_string())) {
            return sid;
        }
        let sid = self.nodes.len() as Sid;
        self.nodes.push(SummaryNode {
            label: label.to_string(),
            parent: Some(effective_parent),
            children: Vec::new(),
            extent_size: 0,
        });
        self.nodes[effective_parent as usize].children.push(sid);
        self.child_index
            .insert((effective_parent, label.to_string()), sid);
        self.label_index
            .entry(label.to_string())
            .or_default()
            .push(sid);
        sid
    }

    /// Records one more element in `sid`'s extent.
    pub fn record_element(&mut self, sid: Sid) {
        self.nodes[sid as usize].extent_size += 1;
    }

    /// Looks up the child of `parent` labelled `label` without creating it.
    pub fn child(&self, parent: Sid, label: &str) -> Option<Sid> {
        let effective_parent = match self.kind {
            SummaryKind::Incoming => parent,
            SummaryKind::Tag => ROOT_SID,
            SummaryKind::KSuffix(_) => parent,
        };
        self.child_index
            .get(&(effective_parent, label.to_string()))
            .copied()
    }

    /// Whether no two elements of any extent nest inside each other — the
    /// precondition TReX places on summaries used for retrieval (§2.1).
    /// `Incoming` summaries are nesting-free by construction; `Tag` and
    /// small-k `KSuffix` summaries may not be.
    pub fn is_nesting_free(&self) -> bool {
        self.nesting_violations == 0
    }

    /// Number of nested same-extent element pairs observed during build.
    pub fn nesting_violations(&self) -> u64 {
        self.nesting_violations
    }

    pub(crate) fn record_nesting_violation(&mut self) {
        self.nesting_violations += 1;
    }

    /// All sids whose label is `label`.
    pub fn sids_with_label(&self, label: &str) -> &[Sid] {
        self.label_index
            .get(label)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All distinct labels in the summary, sorted.
    pub fn labels(&self) -> Vec<&str> {
        let mut labels: Vec<&str> = self.label_index.keys().map(String::as_str).collect();
        labels.sort_unstable();
        labels
    }

    /// The label path from the root to `sid` (e.g. `["books","journal","article"]`).
    pub fn label_path(&self, sid: Sid) -> Vec<&str> {
        let mut path = Vec::new();
        let mut cur = Some(sid);
        while let Some(s) = cur {
            if s == ROOT_SID {
                break;
            }
            let node = self.node(s);
            path.push(node.label.as_str());
            cur = node.parent;
        }
        path.reverse();
        path
    }

    /// The XPath expression describing `sid`'s extent — "TReX uses the
    /// alias incoming summary where the extents are described using XPath
    /// expressions" (paper §2.1). For an incoming summary this is the full
    /// rooted path; for a tag summary a descendant step on the label.
    pub fn extent_xpath(&self, sid: Sid) -> String {
        match self.kind {
            SummaryKind::Incoming => {
                let mut out = String::new();
                for label in self.label_path(sid) {
                    out.push('/');
                    out.push_str(label);
                }
                out
            }
            SummaryKind::Tag => format!("//{}", self.node(sid).label),
            // The trie path of a k-suffix node is the suffix itself.
            SummaryKind::KSuffix(_) => format!("//{}", self.label_path(sid).join("/")),
        }
    }

    /// Total elements across all extents.
    pub fn total_elements(&self) -> u64 {
        self.nodes.iter().map(|n| n.extent_size).sum()
    }

    /// Distribution statistics over the non-empty extents: (count, min,
    /// median, max). Reported by the `summaries` experiment — extent-size
    /// skew is what makes one summary cheaper than another for ERA.
    pub fn extent_stats(&self) -> Option<ExtentStats> {
        let mut sizes: Vec<u64> = self
            .nodes
            .iter()
            .skip(1)
            .map(|n| n.extent_size)
            .filter(|&n| n > 0)
            .collect();
        if sizes.is_empty() {
            return None;
        }
        sizes.sort_unstable();
        Some(ExtentStats {
            extents: sizes.len(),
            min: sizes[0],
            median: sizes[sizes.len() / 2],
            max: *sizes.last().expect("non-empty"),
        })
    }

    /// Serialises to a compact binary blob (persisted in the store catalog).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self.kind {
            SummaryKind::Incoming => out.push(0u8),
            SummaryKind::Tag => out.push(1u8),
            SummaryKind::KSuffix(k) => {
                out.push(2u8);
                out.push(k);
            }
        }
        out.extend_from_slice(&self.nesting_violations.to_le_bytes());
        out.extend_from_slice(&(self.nodes.len() as u32).to_le_bytes());
        for node in &self.nodes {
            out.extend_from_slice(&(node.label.len() as u16).to_le_bytes());
            out.extend_from_slice(node.label.as_bytes());
            out.extend_from_slice(&node.parent.map(|p| p + 1).unwrap_or(0).to_le_bytes());
            out.extend_from_slice(&node.extent_size.to_le_bytes());
        }
        out
    }

    /// Inverse of [`Summary::encode`].
    pub fn decode(bytes: &[u8]) -> Option<Summary> {
        let mut off = 1usize;
        let kind = match *bytes.first()? {
            0 => SummaryKind::Incoming,
            1 => SummaryKind::Tag,
            2 => {
                let k = *bytes.get(off)?;
                off += 1;
                SummaryKind::KSuffix(k)
            }
            _ => return None,
        };
        let nesting_violations = u64::from_le_bytes(bytes.get(off..off + 8)?.try_into().ok()?);
        off += 8;
        let count = u32::from_le_bytes(bytes.get(off..off + 4)?.try_into().ok()?) as usize;
        off += 4;
        let mut summary = Summary::new(kind);
        summary.nesting_violations = nesting_violations;
        summary.nodes.clear();
        for i in 0..count {
            let label_len = u16::from_le_bytes(bytes.get(off..off + 2)?.try_into().ok()?) as usize;
            off += 2;
            let label = std::str::from_utf8(bytes.get(off..off + label_len)?)
                .ok()?
                .to_string();
            off += label_len;
            let parent_raw = u32::from_le_bytes(bytes.get(off..off + 4)?.try_into().ok()?);
            off += 4;
            let extent_size = u64::from_le_bytes(bytes.get(off..off + 8)?.try_into().ok()?);
            off += 8;
            let parent = if parent_raw == 0 {
                None
            } else {
                Some(parent_raw - 1)
            };
            let sid = i as Sid;
            if let Some(p) = parent {
                if p as usize >= summary.nodes.len() {
                    return None; // parents must precede children
                }
                summary.nodes[p as usize].children.push(sid);
                summary.child_index.insert((p, label.clone()), sid);
                summary
                    .label_index
                    .entry(label.clone())
                    .or_default()
                    .push(sid);
            }
            summary.nodes.push(SummaryNode {
                label,
                parent,
                children: Vec::new(),
                extent_size,
            });
        }
        if summary.nodes.is_empty() {
            return None;
        }
        Some(summary)
    }
}

/// Distribution of non-empty extent sizes (see [`Summary::extent_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtentStats {
    /// Number of non-empty extents.
    pub extents: usize,
    /// Smallest extent.
    pub min: u64,
    /// Median extent.
    pub median: u64,
    /// Largest extent.
    pub max: u64,
}

/// Incremental descent through a summary while walking a document: mirrors
/// the element open/close events of a parse, yielding the sid of each
/// element. Used both by the builder and by the index builder.
pub struct SummaryCursor {
    stack: Vec<Sid>,
    /// The (alias-resolved) labels of the open elements — the k-suffix
    /// partitions are computed from this.
    labels: Vec<String>,
}

impl SummaryCursor {
    /// A cursor positioned at the virtual root.
    pub fn new() -> SummaryCursor {
        SummaryCursor {
            stack: vec![ROOT_SID],
            labels: Vec::new(),
        }
    }

    /// Descends into an element with (alias-resolved) `label`, creating the
    /// summary node if needed; returns its sid. Also detects nested
    /// same-extent elements (recorded on the summary).
    pub fn enter(&mut self, summary: &mut Summary, label: &str) -> Sid {
        self.labels.push(label.to_string());
        let sid = match summary.kind() {
            SummaryKind::Incoming | SummaryKind::Tag => {
                let parent = *self.stack.last().expect("stack never empty");
                summary.enter(parent, label)
            }
            SummaryKind::KSuffix(k) => {
                // Walk/create the trie along the k-suffix, oldest label first.
                let start = self.labels.len().saturating_sub(k.max(1) as usize);
                let suffix: Vec<String> = self.labels[start..].to_vec();
                let mut cur = ROOT_SID;
                for step in &suffix {
                    cur = summary.enter_child(cur, step);
                }
                cur
            }
        };
        // Nesting check: an ancestor with the same sid means two elements of
        // one extent encapsulate each other.
        if self.stack.contains(&sid) {
            summary.record_nesting_violation();
        }
        self.stack.push(sid);
        sid
    }

    /// Descends without creating nodes; `None` if the path is unknown.
    pub fn enter_existing(&mut self, summary: &Summary, label: &str) -> Option<Sid> {
        match summary.kind() {
            SummaryKind::Incoming | SummaryKind::Tag => {
                let parent = *self.stack.last().expect("stack never empty");
                let sid = summary.child(parent, label)?;
                self.labels.push(label.to_string());
                self.stack.push(sid);
                Some(sid)
            }
            SummaryKind::KSuffix(k) => {
                let mut probe: Vec<&str> = self.labels.iter().map(String::as_str).collect();
                probe.push(label);
                let start = probe.len().saturating_sub(k.max(1) as usize);
                let mut cur = ROOT_SID;
                for step in &probe[start..] {
                    cur = summary.child(cur, step)?;
                }
                self.labels.push(label.to_string());
                self.stack.push(cur);
                Some(cur)
            }
        }
    }

    /// Ascends one level.
    pub fn leave(&mut self) {
        debug_assert!(self.stack.len() > 1, "leave without matching enter");
        self.stack.pop();
        self.labels.pop();
    }

    /// Current depth (0 at the virtual root).
    pub fn depth(&self) -> usize {
        self.stack.len() - 1
    }
}

impl Default for SummaryCursor {
    fn default() -> Self {
        SummaryCursor::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_sample(kind: SummaryKind) -> Summary {
        // books/journal/article/{fm,bdy/sec,bdy/sec}  x2 documents
        let mut s = Summary::new(kind);
        for _ in 0..2 {
            let mut c = SummaryCursor::new();
            let books = c.enter(&mut s, "books");
            s.record_element(books);
            let journal = c.enter(&mut s, "journal");
            s.record_element(journal);
            let article = c.enter(&mut s, "article");
            s.record_element(article);
            let fm = c.enter(&mut s, "fm");
            s.record_element(fm);
            c.leave();
            let bdy = c.enter(&mut s, "bdy");
            s.record_element(bdy);
            for _ in 0..2 {
                let sec = c.enter(&mut s, "sec");
                s.record_element(sec);
                c.leave();
            }
        }
        s
    }

    #[test]
    fn incoming_summary_partitions_by_path() {
        let s = build_sample(SummaryKind::Incoming);
        // books, journal, article, fm, bdy, sec — one node each.
        assert_eq!(s.node_count(), 6);
        let sec_sids = s.sids_with_label("sec");
        assert_eq!(sec_sids.len(), 1);
        assert_eq!(s.node(sec_sids[0]).extent_size, 4);
        assert_eq!(
            s.label_path(sec_sids[0]),
            vec!["books", "journal", "article", "bdy", "sec"]
        );
    }

    #[test]
    fn tag_summary_is_coarser() {
        let s = build_sample(SummaryKind::Tag);
        assert_eq!(s.node_count(), 6);
        // All tag-summary nodes hang off the root.
        for sid in 1..=6 {
            assert_eq!(s.node(sid).parent, Some(ROOT_SID));
        }
    }

    #[test]
    fn incoming_refines_tag_when_paths_differ() {
        // sec appears under bdy and under app — two incoming nodes, one tag node.
        let mut inc = Summary::new(SummaryKind::Incoming);
        let mut tag = Summary::new(SummaryKind::Tag);
        for s in [&mut inc, &mut tag] {
            let mut c = SummaryCursor::new();
            c.enter(s, "article");
            c.enter(s, "bdy");
            c.enter(s, "sec");
            c.leave();
            c.leave();
            c.enter(s, "app");
            c.enter(s, "sec");
        }
        assert_eq!(inc.sids_with_label("sec").len(), 2);
        assert_eq!(tag.sids_with_label("sec").len(), 1);
        assert!(inc.node_count() > tag.node_count());
    }

    #[test]
    fn cursor_enter_existing_fails_on_unknown_paths() {
        let s = build_sample(SummaryKind::Incoming);
        let mut c = SummaryCursor::new();
        assert!(c.enter_existing(&s, "books").is_some());
        assert!(c.enter_existing(&s, "nonexistent").is_none());
        assert_eq!(c.depth(), 1);
    }

    #[test]
    fn encode_decode_round_trip() {
        let s = build_sample(SummaryKind::Incoming);
        let back = Summary::decode(&s.encode()).unwrap();
        assert_eq!(back.node_count(), s.node_count());
        assert_eq!(back.kind(), s.kind());
        for sid in 1..=s.node_count() as Sid {
            assert_eq!(back.node(sid).label, s.node(sid).label);
            assert_eq!(back.node(sid).parent, s.node(sid).parent);
            assert_eq!(back.node(sid).extent_size, s.node(sid).extent_size);
        }
        assert_eq!(back.sids_with_label("sec"), s.sids_with_label("sec"));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Summary::decode(&[]).is_none());
        assert!(Summary::decode(&[9, 0, 0, 0, 0]).is_none());
        let good = build_sample(SummaryKind::Tag).encode();
        assert!(Summary::decode(&good[..good.len() - 3]).is_none());
    }

    #[test]
    fn total_elements_sums_extents() {
        let s = build_sample(SummaryKind::Incoming);
        // 2 docs × (books, journal, article, fm, bdy, 2×sec) = 14
        assert_eq!(s.total_elements(), 14);
    }
}
// (extent_xpath tests live here to keep them next to the other tree tests)
#[cfg(test)]
mod xpath_tests {
    use super::*;

    #[test]
    fn incoming_extents_are_rooted_paths() {
        let mut s = Summary::new(SummaryKind::Incoming);
        let mut c = SummaryCursor::new();
        let a = c.enter(&mut s, "article");
        let b = c.enter(&mut s, "bdy");
        let sec = c.enter(&mut s, "sec");
        assert_eq!(s.extent_xpath(a), "/article");
        assert_eq!(s.extent_xpath(b), "/article/bdy");
        assert_eq!(s.extent_xpath(sec), "/article/bdy/sec");
    }

    #[test]
    fn tag_extents_are_descendant_steps() {
        let mut s = Summary::new(SummaryKind::Tag);
        let mut c = SummaryCursor::new();
        c.enter(&mut s, "article");
        let sec = c.enter(&mut s, "sec");
        assert_eq!(s.extent_xpath(sec), "//sec");
    }

    #[test]
    fn extent_xpath_reparses_to_the_same_extent() {
        // The printed XPath, parsed as a PathPattern, matches exactly the
        // sid it describes (on incoming summaries).
        let mut s = Summary::new(SummaryKind::Incoming);
        let mut c = SummaryCursor::new();
        c.enter(&mut s, "a");
        c.enter(&mut s, "b");
        c.leave();
        c.enter(&mut s, "c");
        for sid in 1..=s.node_count() as Sid {
            let xpath = s.extent_xpath(sid);
            let pattern = crate::path::PathPattern::parse(&xpath).unwrap();
            assert_eq!(pattern.match_summary(&s), vec![sid], "{xpath}");
        }
    }
}
