//! Tests and properties of the k-suffix (A(k)-style) summary family.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;
use trex_summary::{AliasMap, Summary, SummaryBuilder, SummaryKind};
use trex_xml::{Document, NodeKind};

fn build(kind: SummaryKind, docs: &[&str]) -> Summary {
    let mut b = SummaryBuilder::new(kind, AliasMap::identity());
    for d in docs {
        b.add_document(&Document::parse(d).unwrap());
    }
    b.finish().0
}

/// Naive k-suffix partition: map each element's path suffix to its count.
fn naive_partition(docs: &[&str], k: usize) -> HashMap<Vec<String>, u64> {
    let mut out: HashMap<Vec<String>, u64> = HashMap::new();
    for d in docs {
        let doc = Document::parse(d).unwrap();
        for id in doc.descendants(doc.root()) {
            if let NodeKind::Element { .. } = doc.node(id).kind {
                let mut path: Vec<String> = doc
                    .ancestors(id)
                    .filter_map(|a| doc.name(a).map(str::to_string))
                    .collect();
                path.reverse();
                path.push(doc.name(id).unwrap().to_string());
                let start = path.len().saturating_sub(k);
                *out.entry(path[start..].to_vec()).or_default() += 1;
            }
        }
    }
    out
}

const DOCS: &[&str] = &[
    "<article><bdy><sec><p>x</p></sec><sec><p>y</p><fig><p>z</p></fig></sec></bdy></article>",
    "<article><bm><app><sec><p>w</p></sec></app></bm></article>",
];

#[test]
fn ksuffix_partitions_by_suffix() {
    let s = build(SummaryKind::KSuffix(2), DOCS);
    let naive = naive_partition(DOCS, 2);
    // Every naive class appears with the right extent size.
    for (suffix, count) in &naive {
        let xpath = format!("//{}", suffix.join("/"));
        let found = (1..=s.node_count() as u32)
            .find(|&sid| s.extent_xpath(sid) == xpath)
            .unwrap_or_else(|| panic!("missing class {xpath}"));
        assert_eq!(s.node(found).extent_size, *count, "{xpath}");
    }
    // sec/p appears under bdy/sec and app/sec: with k=2 they collapse.
    let sec_p = (1..=s.node_count() as u32)
        .find(|&sid| s.extent_xpath(sid) == "//sec/p")
        .unwrap();
    assert_eq!(s.node(sec_p).extent_size, 3);
}

#[test]
fn ksuffix_1_matches_the_tag_partition() {
    let tag = build(SummaryKind::Tag, DOCS);
    let k1 = build(SummaryKind::KSuffix(1), DOCS);
    for label in tag.labels() {
        let tag_extent = tag.node(tag.sids_with_label(label)[0]).extent_size;
        let k1_extent: u64 = k1
            .sids_with_label(label)
            .iter()
            .map(|&sid| k1.node(sid).extent_size)
            .sum();
        assert_eq!(tag_extent, k1_extent, "label {label}");
    }
}

#[test]
fn large_k_matches_the_incoming_partition() {
    let incoming = build(SummaryKind::Incoming, DOCS);
    let k_big = build(SummaryKind::KSuffix(50), DOCS);
    // Same multiset of (non-empty) extent sizes.
    let sizes = |s: &Summary| {
        let mut v: Vec<u64> = (1..=s.node_count() as u32)
            .map(|sid| s.node(sid).extent_size)
            .filter(|&n| n > 0)
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(sizes(&incoming), sizes(&k_big));
}

#[test]
fn nesting_violations_are_detected() {
    // sec directly inside sec: the Tag and k=1 partitions nest.
    let docs = &["<a><sec><sec>inner</sec></sec></a>"];
    let tag = build(SummaryKind::Tag, docs);
    assert!(!tag.is_nesting_free());
    assert_eq!(tag.nesting_violations(), 1);
    let k1 = build(SummaryKind::KSuffix(1), docs);
    assert!(!k1.is_nesting_free());
    // With k=2 the inner sec has suffix sec/sec — distinct class, no nesting.
    let k2 = build(SummaryKind::KSuffix(2), docs);
    assert!(k2.is_nesting_free());
    // The incoming summary is always nesting-free.
    let inc = build(SummaryKind::Incoming, docs);
    assert!(inc.is_nesting_free());
}

#[test]
fn nesting_flag_survives_serialisation() {
    let docs = &["<a><sec><sec>inner</sec></sec></a>"];
    let tag = build(SummaryKind::Tag, docs);
    let back = Summary::decode(&tag.encode()).unwrap();
    assert_eq!(back.nesting_violations(), tag.nesting_violations());
    assert_eq!(back.kind(), SummaryKind::Tag);
    let k3 = build(SummaryKind::KSuffix(3), docs);
    let back = Summary::decode(&k3.encode()).unwrap();
    assert_eq!(back.kind(), SummaryKind::KSuffix(3));
}

fn doc_strategy() -> impl Strategy<Value = String> {
    let tag = proptest::sample::select(vec!["a", "b", "sec"]);
    let leaf = tag.clone().prop_map(|t| format!("<{t}>x</{t}>"));
    leaf.prop_recursive(4, 24, 3, move |inner| {
        (
            proptest::sample::select(vec!["a", "b", "sec"]),
            proptest::collection::vec(inner, 0..3),
        )
            .prop_map(|(t, kids)| format!("<{t}>{}</{t}>", kids.concat()))
    })
    .prop_map(|body| format!("<root>{body}</root>"))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The k-suffix partition always matches the naive recomputation, and
    /// the partitions refine monotonically in k.
    #[test]
    fn prop_ksuffix_matches_naive(docs in proptest::collection::vec(doc_strategy(), 1..3), k in 1u8..5) {
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let s = build(SummaryKind::KSuffix(k), &refs);
        let naive = naive_partition(&refs, k as usize);
        let total_naive: u64 = naive.values().sum();
        prop_assert_eq!(s.total_elements(), total_naive);
        // Class count: summary nodes with non-empty extents equal naive classes.
        let nonempty = (1..=s.node_count() as u32)
            .filter(|&sid| s.node(sid).extent_size > 0)
            .count();
        prop_assert_eq!(nonempty, naive.len());
        // Each class's size matches.
        let by_xpath: HashMap<String, u64> = (1..=s.node_count() as u32)
            .map(|sid| (s.extent_xpath(sid), s.node(sid).extent_size))
            .collect();
        for (suffix, count) in naive {
            let xpath = format!("//{}", suffix.join("/"));
            prop_assert_eq!(by_xpath.get(&xpath).copied(), Some(count), "{}", xpath);
        }
    }

    /// More context can only split classes: #classes(k) ≤ #classes(k+1),
    /// bounded by the incoming partition.
    #[test]
    fn prop_ksuffix_refines_in_k(docs in proptest::collection::vec(doc_strategy(), 1..3)) {
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let classes = |kind: SummaryKind| {
            let s = build(kind, &refs);
            (1..=s.node_count() as u32)
                .filter(|&sid| s.node(sid).extent_size > 0)
                .count()
        };
        let incoming = classes(SummaryKind::Incoming);
        let mut prev = 0usize;
        for k in 1..6u8 {
            let n = classes(SummaryKind::KSuffix(k));
            prop_assert!(n >= prev, "k={k}: {n} < {prev}");
            prop_assert!(n <= incoming);
            prev = n;
        }
    }

    /// Distinct naive suffixes never share a sid (injectivity of the trie).
    #[test]
    fn prop_distinct_suffixes_get_distinct_sids(docs in proptest::collection::vec(doc_strategy(), 1..3), k in 1u8..4) {
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let s = build(SummaryKind::KSuffix(k), &refs);
        let xpaths: Vec<String> = (1..=s.node_count() as u32).map(|sid| s.extent_xpath(sid)).collect();
        let distinct: HashSet<&String> = xpaths.iter().collect();
        prop_assert_eq!(distinct.len(), xpaths.len());
    }
}

#[test]
fn extent_stats_reflect_the_partition_granularity() {
    let inc = build(SummaryKind::Incoming, DOCS);
    let tag = build(SummaryKind::Tag, DOCS);
    let inc_stats = inc.extent_stats().unwrap();
    let tag_stats = tag.extent_stats().unwrap();
    // Coarser partitions have fewer but larger extents.
    assert!(tag_stats.extents <= inc_stats.extents);
    assert!(tag_stats.max >= inc_stats.max);
    assert_eq!(
        inc.total_elements(),
        tag.total_elements(),
        "same elements, different partitions"
    );
    assert!(inc_stats.min >= 1);
    assert!(inc_stats.min <= inc_stats.median && inc_stats.median <= inc_stats.max);
    // Empty summary has no stats.
    assert!(Summary::new(SummaryKind::Incoming).extent_stats().is_none());
}
