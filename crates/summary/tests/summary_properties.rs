//! Property tests on structural summaries: the incoming summary partitions
//! elements exactly by root-to-element label path, the tag summary by
//! label, and the incoming summary always refines the tag summary.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;
use trex_summary::{AliasMap, PathPattern, SummaryBuilder, SummaryKind};
use trex_xml::{Document, NodeKind};

/// Random small documents over a fixed tag alphabet.
fn doc_strategy() -> impl Strategy<Value = String> {
    let tag = proptest::sample::select(vec!["a", "b", "c", "sec"]);
    let leaf = tag.clone().prop_map(|t| format!("<{t}>x</{t}>"));
    leaf.prop_recursive(4, 32, 4, move |inner| {
        (
            proptest::sample::select(vec!["a", "b", "c", "sec"]),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(t, kids)| format!("<{t}>{}</{t}>", kids.concat()))
    })
    // Wrap in a common root so heterogeneous fragments coexist.
    .prop_map(|body| format!("<root>{body}</root>"))
}

/// Naive computation of every element's label path.
fn label_paths(doc: &Document) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    for id in doc.descendants(doc.root()) {
        if let NodeKind::Element { .. } = doc.node(id).kind {
            let mut path: Vec<String> = doc
                .ancestors(id)
                .filter_map(|a| doc.name(a).map(str::to_string))
                .collect();
            path.reverse();
            path.push(doc.name(id).unwrap().to_string());
            out.push(path);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn prop_incoming_nodes_equal_distinct_label_paths(docs in proptest::collection::vec(doc_strategy(), 1..4)) {
        let parsed: Vec<Document> = docs.iter().map(|d| Document::parse(d).unwrap()).collect();
        let mut builder = SummaryBuilder::new(SummaryKind::Incoming, AliasMap::identity());
        let mut distinct: HashSet<Vec<String>> = HashSet::new();
        let mut total_elements = 0u64;
        for doc in &parsed {
            builder.add_document(doc);
            for path in label_paths(doc) {
                distinct.insert(path);
                total_elements += 1;
            }
        }
        let (summary, _) = builder.finish();
        prop_assert_eq!(summary.node_count(), distinct.len());
        prop_assert_eq!(summary.total_elements(), total_elements);
        // Each summary node's label path is one of the distinct paths.
        for sid in 1..=summary.node_count() as u32 {
            let path: Vec<String> = summary.label_path(sid).iter().map(|s| s.to_string()).collect();
            prop_assert!(distinct.contains(&path));
        }
    }

    #[test]
    fn prop_tag_summary_counts_labels(docs in proptest::collection::vec(doc_strategy(), 1..4)) {
        let parsed: Vec<Document> = docs.iter().map(|d| Document::parse(d).unwrap()).collect();
        let mut builder = SummaryBuilder::new(SummaryKind::Tag, AliasMap::identity());
        let mut per_label: HashMap<String, u64> = HashMap::new();
        for doc in &parsed {
            builder.add_document(doc);
            for path in label_paths(doc) {
                *per_label.entry(path.last().unwrap().clone()).or_default() += 1;
            }
        }
        let (summary, _) = builder.finish();
        prop_assert_eq!(summary.node_count(), per_label.len());
        for (label, count) in per_label {
            let sids = summary.sids_with_label(&label);
            prop_assert_eq!(sids.len(), 1);
            prop_assert_eq!(summary.node(sids[0]).extent_size, count);
        }
    }

    /// The incoming summary refines the tag summary: the extents of all
    /// incoming nodes with label L sum to the tag node of L.
    #[test]
    fn prop_incoming_refines_tag(docs in proptest::collection::vec(doc_strategy(), 1..4)) {
        let parsed: Vec<Document> = docs.iter().map(|d| Document::parse(d).unwrap()).collect();
        let mut inc = SummaryBuilder::new(SummaryKind::Incoming, AliasMap::identity());
        let mut tag = SummaryBuilder::new(SummaryKind::Tag, AliasMap::identity());
        for doc in &parsed {
            inc.add_document(doc);
            tag.add_document(doc);
        }
        let (inc, _) = inc.finish();
        let (tag, _) = tag.finish();
        prop_assert!(inc.node_count() >= tag.node_count());
        for label in tag.labels() {
            let tag_total = tag.node(tag.sids_with_label(label)[0]).extent_size;
            let inc_total: u64 = inc
                .sids_with_label(label)
                .iter()
                .map(|&s| inc.node(s).extent_size)
                .sum();
            prop_assert_eq!(tag_total, inc_total, "label {}", label);
        }
    }

    /// `//label` on the incoming summary finds exactly the sids carrying
    /// that label.
    #[test]
    fn prop_descendant_pattern_matches_label_index(docs in proptest::collection::vec(doc_strategy(), 1..3)) {
        let parsed: Vec<Document> = docs.iter().map(|d| Document::parse(d).unwrap()).collect();
        let mut builder = SummaryBuilder::new(SummaryKind::Incoming, AliasMap::identity());
        for doc in &parsed {
            builder.add_document(doc);
        }
        let (summary, _) = builder.finish();
        for label in summary.labels() {
            let pattern = PathPattern::parse(&format!("//{label}")).unwrap();
            let mut matched = pattern.match_summary(&summary);
            matched.sort_unstable();
            let mut expected = summary.sids_with_label(label).to_vec();
            expected.sort_unstable();
            prop_assert_eq!(matched, expected, "label {}", label);
        }
    }

    /// Encode/decode round-trips on random summaries.
    #[test]
    fn prop_summary_codec_round_trip(docs in proptest::collection::vec(doc_strategy(), 1..3)) {
        let parsed: Vec<Document> = docs.iter().map(|d| Document::parse(d).unwrap()).collect();
        let mut builder = SummaryBuilder::new(SummaryKind::Incoming, AliasMap::identity());
        for doc in &parsed {
            builder.add_document(doc);
        }
        let (summary, _) = builder.finish();
        let decoded = trex_summary::Summary::decode(&summary.encode()).unwrap();
        prop_assert_eq!(decoded.node_count(), summary.node_count());
        for sid in 1..=summary.node_count() as u32 {
            prop_assert_eq!(&decoded.node(sid).label, &summary.node(sid).label);
            prop_assert_eq!(decoded.node(sid).extent_size, summary.node(sid).extent_size);
            prop_assert_eq!(decoded.label_path(sid), summary.label_path(sid));
        }
    }
}
