//! Failure injection: the store must reject corrupted files with clear
//! errors instead of panicking or silently misbehaving.

use std::io::{Seek, SeekFrom, Write};

use trex_storage::{StorageError, Store, PAGE_SIZE};

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("trex-inject-{name}-{}", std::process::id()))
}

fn build_store(path: &std::path::Path) {
    let store = Store::create(path, 32).unwrap();
    let mut t = store.create_table("t").unwrap();
    for i in 0..2000u32 {
        t.insert(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
    }
    store.flush().unwrap();
}

#[test]
fn bad_magic_is_rejected() {
    let path = temp("magic");
    build_store(&path);
    {
        let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start(16)).unwrap(); // magic lives after the header
        f.write_all(b"NOTMAGIC").unwrap();
    }
    let err = Store::open(&path, 32).unwrap_err();
    assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn unsupported_version_is_rejected() {
    let path = temp("version");
    build_store(&path);
    {
        let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start(24)).unwrap(); // version field
        f.write_all(&99u16.to_le_bytes()).unwrap();
    }
    let err = Store::open(&path, 32).unwrap_err();
    assert!(err.to_string().contains("version"), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn clobbered_interior_page_surfaces_as_corrupt() {
    let path = temp("page");
    build_store(&path);
    {
        // Zap the page-type byte of every non-meta page.
        let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        let pages = f.metadata().unwrap().len() / PAGE_SIZE as u64;
        for p in 1..pages {
            f.seek(SeekFrom::Start(p * PAGE_SIZE as u64)).unwrap();
            f.write_all(&[0xEE]).unwrap();
        }
    }
    let store = Store::open(&path, 32).unwrap();
    let t = store.open_table("t").unwrap();
    let err = t.get(&5u32.to_be_bytes()).unwrap_err();
    assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_file_fails_reads_not_panics() {
    let path = temp("truncate");
    build_store(&path);
    {
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        let len = f.metadata().unwrap().len();
        f.set_len(len / 2).unwrap();
    }
    // Opening may succeed (meta page intact); reads into the missing half
    // must produce errors, never UB or panics.
    if let Ok(store) = Store::open(&path, 32) {
        if let Ok(t) = store.open_table("t") {
            let mut saw_error = false;
            for i in 0..2000u32 {
                if t.get(&i.to_be_bytes()).is_err() {
                    saw_error = true;
                    break;
                }
            }
            assert!(saw_error, "a halved file cannot serve every key");
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_file_is_an_io_error() {
    let err = Store::open(std::path::Path::new("/nonexistent/trex.db"), 32).unwrap_err();
    assert!(matches!(err, StorageError::Io(_)));
}

#[test]
fn flush_then_crash_simulation_preserves_flushed_data() {
    let path = temp("crash");
    {
        let store = Store::create(&path, 32).unwrap();
        let mut t = store.create_table("t").unwrap();
        for i in 0..500u32 {
            t.insert(&i.to_be_bytes(), b"flushed").unwrap();
        }
        store.flush().unwrap();
        // Writes after the flush, then "crash" (drop without flushing).
        for i in 500..1000u32 {
            t.insert(&i.to_be_bytes(), b"unflushed").unwrap();
        }
        // No flush: simulated crash.
    }
    let store = Store::open(&path, 32).unwrap();
    let t = store.open_table("t").unwrap();
    // Everything up to the flush must be intact.
    for i in (0..500u32).step_by(97) {
        assert_eq!(t.get(&i.to_be_bytes()).unwrap().unwrap(), b"flushed");
    }
    std::fs::remove_file(&path).ok();
}
