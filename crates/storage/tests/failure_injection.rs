//! Failure injection: the store must reject corrupted files with clear
//! errors instead of panicking or silently misbehaving.

use std::io::{Seek, SeekFrom, Write};

use trex_storage::{wal_path, StorageError, Store, StoreOptions, PAGE_SIZE};

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("trex-inject-{name}-{}", std::process::id()))
}

fn cleanup(path: &std::path::Path) {
    std::fs::remove_file(path).ok();
    std::fs::remove_file(wal_path(path)).ok();
}

fn build_store(path: &std::path::Path) {
    let store = Store::create(path, 32).unwrap();
    let mut t = store.create_table("t").unwrap();
    for i in 0..2000u32 {
        t.insert(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
    }
    store.flush().unwrap();
}

#[test]
fn bad_magic_is_rejected() {
    let path = temp("magic");
    build_store(&path);
    {
        let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start(16)).unwrap(); // magic lives after the header
        f.write_all(b"NOTMAGIC").unwrap();
    }
    let err = Store::open(&path, 32).unwrap_err();
    assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn unsupported_version_is_rejected() {
    let path = temp("version");
    build_store(&path);
    {
        let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start(24)).unwrap(); // version field
        f.write_all(&99u16.to_le_bytes()).unwrap();
    }
    let err = Store::open(&path, 32).unwrap_err();
    assert!(err.to_string().contains("version"), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn clobbered_interior_page_surfaces_as_corrupt() {
    let path = temp("page");
    build_store(&path);
    {
        // Zap the page-type byte of every non-meta page.
        let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        let pages = f.metadata().unwrap().len() / PAGE_SIZE as u64;
        for p in 1..pages {
            f.seek(SeekFrom::Start(p * PAGE_SIZE as u64)).unwrap();
            f.write_all(&[0xEE]).unwrap();
        }
    }
    let store = Store::open(&path, 32).unwrap();
    let t = store.open_table("t").unwrap();
    let err = t.get(&5u32.to_be_bytes()).unwrap_err();
    assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_file_fails_reads_not_panics() {
    let path = temp("truncate");
    build_store(&path);
    {
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        let len = f.metadata().unwrap().len();
        f.set_len(len / 2).unwrap();
    }
    // Opening may succeed (meta page intact); reads into the missing half
    // must produce errors, never UB or panics.
    if let Ok(store) = Store::open(&path, 32) {
        if let Ok(t) = store.open_table("t") {
            let mut saw_error = false;
            for i in 0..2000u32 {
                if t.get(&i.to_be_bytes()).is_err() {
                    saw_error = true;
                    break;
                }
            }
            assert!(saw_error, "a halved file cannot serve every key");
        }
    }
    std::fs::remove_file(&path).ok();
}

/// Regression for the unchecked indexing in `Store::parse_meta`: every
/// single-bit flip anywhere in the meta page must yield a clean open, a
/// `Corrupt` error, or (for flips in unused tail bytes) a working store —
/// never a panic or an out-of-bounds slice.
#[test]
fn bit_flipped_meta_page_never_panics() {
    let path = temp("bitflip");
    build_store(&path);
    let pristine = std::fs::read(&path).unwrap();
    // The catalog lives in the first ~40 bytes of the meta page payload
    // (header 16 + magic 8 + version 2 + free head 4 + count 2 + entries);
    // flip every bit of the first 64 bytes, plus a stride over the rest of
    // the page, restoring the file each time.
    let offsets = (0..64u64).chain((64..PAGE_SIZE as u64).step_by(509));
    for off in offsets {
        for bit in 0..8 {
            let mut bytes = pristine.clone();
            bytes[off as usize] ^= 1 << bit;
            std::fs::write(&path, &bytes).unwrap();
            match Store::open(&path, 32) {
                // A tolerated flip (unused byte): the catalog must still
                // be walkable.
                Ok(store) => {
                    let _ = store.table_names();
                }
                Err(e) => assert!(
                    matches!(e, StorageError::Corrupt(_) | StorageError::Io(_)),
                    "offset {off} bit {bit}: unexpected error kind {e}"
                ),
            }
        }
    }
    cleanup(&path);
}

/// A `count` field pointing far past the real catalog must error, not
/// panic — the original code indexed `payload[off..off + name_len]`
/// unchecked and died with a slice out-of-bounds.
#[test]
fn oversized_catalog_count_is_corrupt() {
    let path = temp("count");
    build_store(&path);
    {
        let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start(16 + 14)).unwrap(); // catalog count field
        f.write_all(&u16::MAX.to_le_bytes()).unwrap();
    }
    let err = match Store::open(&path, 32) {
        Err(e) => e,
        Ok(_) => panic!("a catalog of 65535 entries cannot fit one page"),
    };
    assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
    cleanup(&path);
}

/// A meta page cut off mid-catalog (torn tail) is rejected at open.
#[test]
fn truncated_meta_page_is_rejected() {
    let path = temp("tornmeta");
    build_store(&path);
    {
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(PAGE_SIZE as u64 / 2).unwrap();
    }
    let err = match Store::open(&path, 32) {
        Err(e) => e,
        Ok(_) => panic!("half a meta page must not open"),
    };
    assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
    assert!(err.to_string().contains("torn tail"), "{err}");
    cleanup(&path);
}

/// Without a WAL there is no log to repair a torn tail page from, so the
/// partial write surfaces as `Corrupt` (with the WAL, recovery repairs it
/// — covered by the crash-matrix integration test).
#[test]
fn torn_tail_without_wal_is_corrupt() {
    let path = temp("torntail");
    {
        let store = Store::create_with(
            &path,
            StoreOptions {
                wal: false,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        let mut t = store.create_table("t").unwrap();
        for i in 0..500u32 {
            t.insert(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
        }
        store.flush().unwrap();
    }
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(&[0xCD; PAGE_SIZE / 4]).unwrap();
    }
    let err = match Store::open_with(
        &path,
        StoreOptions {
            wal: false,
            ..StoreOptions::default()
        },
    ) {
        Err(e) => e,
        Ok(_) => panic!("torn tail must be rejected without a WAL"),
    };
    assert!(err.to_string().contains("torn tail"), "{err}");
    cleanup(&path);
}

#[test]
fn missing_file_is_an_io_error() {
    let err = Store::open(std::path::Path::new("/nonexistent/trex.db"), 32).unwrap_err();
    assert!(matches!(err, StorageError::Io(_)));
}

#[test]
fn flush_then_crash_simulation_preserves_flushed_data() {
    let path = temp("crash");
    {
        let store = Store::create(&path, 32).unwrap();
        let mut t = store.create_table("t").unwrap();
        for i in 0..500u32 {
            t.insert(&i.to_be_bytes(), b"flushed").unwrap();
        }
        store.flush().unwrap();
        // Writes after the flush, then "crash" (drop without flushing).
        for i in 500..1000u32 {
            t.insert(&i.to_be_bytes(), b"unflushed").unwrap();
        }
        // No flush: simulated crash.
    }
    let store = Store::open(&path, 32).unwrap();
    let t = store.open_table("t").unwrap();
    // Everything up to the flush must be intact.
    for i in (0..500u32).step_by(97) {
        assert_eq!(t.get(&i.to_be_bytes()).unwrap().unwrap(), b"flushed");
    }
    std::fs::remove_file(&path).ok();
}
