//! Black-box tests of the B+tree through the `Store`/`Table` API, including
//! a property test checking equivalence with `std::collections::BTreeMap`
//! under random operation sequences.

use std::collections::BTreeMap;

use proptest::prelude::*;
use trex_storage::{StorageError, Store};

fn temp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("trex-btree-test-{name}-{}", std::process::id()));
    p
}

fn with_store<R>(name: &str, f: impl FnOnce(&Store) -> R) -> R {
    let path = temp(name);
    let store = Store::create(&path, 64).unwrap();
    let r = f(&store);
    drop(store);
    std::fs::remove_file(&path).ok();
    r
}

#[test]
fn insert_get_many_sequential() {
    with_store("seq", |store| {
        let mut t = store.create_table("t").unwrap();
        for i in 0..50_000u32 {
            t.insert(&i.to_be_bytes(), &(i * 2).to_le_bytes()).unwrap();
        }
        for i in (0..50_000u32).step_by(777) {
            assert_eq!(
                t.get(&i.to_be_bytes()).unwrap().unwrap(),
                (i * 2).to_le_bytes()
            );
        }
        assert!(t.get(&50_000u32.to_be_bytes()).unwrap().is_none());
    });
}

#[test]
fn insert_get_many_reverse_and_shuffled() {
    with_store("rev", |store| {
        let mut t = store.create_table("t").unwrap();
        // Reverse order stresses left-leaning splits.
        for i in (0..20_000u32).rev() {
            t.insert(&i.to_be_bytes(), b"x").unwrap();
        }
        // Pseudo-shuffled overwrites.
        for i in 0..20_000u32 {
            let j = (i * 7919) % 20_000;
            t.insert(&j.to_be_bytes(), &j.to_le_bytes()).unwrap();
        }
        for i in (0..20_000u32).step_by(501) {
            assert_eq!(t.get(&i.to_be_bytes()).unwrap().unwrap(), i.to_le_bytes());
        }
    });
}

#[test]
fn full_scan_is_sorted_and_complete() {
    with_store("scan", |store| {
        let mut t = store.create_table("t").unwrap();
        for i in 0..10_000u32 {
            let k = (i * 31) % 10_000;
            t.insert(&k.to_be_bytes(), &k.to_le_bytes()).unwrap();
        }
        let mut count = 0u32;
        let mut prev: Option<Vec<u8>> = None;
        let mut cur = t.scan().unwrap();
        while let Some((k, _)) = cur.next_entry().unwrap() {
            if let Some(p) = &prev {
                assert!(p < &k, "scan must be strictly ascending");
            }
            prev = Some(k);
            count += 1;
        }
        assert_eq!(count, 10_000);
    });
}

#[test]
fn seek_starts_at_lower_bound() {
    with_store("seek", |store| {
        let mut t = store.create_table("t").unwrap();
        for i in (0..1000u32).map(|i| i * 10) {
            t.insert(&i.to_be_bytes(), b"v").unwrap();
        }
        // Seek to a key between entries.
        let mut cur = t.seek(&15u32.to_be_bytes()).unwrap();
        let (k, _) = cur.next_entry().unwrap().unwrap();
        assert_eq!(k, 20u32.to_be_bytes());
        // Seek to an exact key.
        let mut cur = t.seek(&20u32.to_be_bytes()).unwrap();
        let (k, _) = cur.next_entry().unwrap().unwrap();
        assert_eq!(k, 20u32.to_be_bytes());
        // Seek past the end.
        let mut cur = t.seek(&100_000u32.to_be_bytes()).unwrap();
        assert!(cur.next_entry().unwrap().is_none());
    });
}

#[test]
fn delete_removes_and_scan_skips() {
    with_store("del", |store| {
        let mut t = store.create_table("t").unwrap();
        for i in 0..5000u32 {
            t.insert(&i.to_be_bytes(), b"v").unwrap();
        }
        for i in (0..5000u32).filter(|i| i % 2 == 0) {
            assert!(t.delete(&i.to_be_bytes()).unwrap());
        }
        assert!(!t.delete(&0u32.to_be_bytes()).unwrap(), "double delete");
        let mut count = 0;
        let mut cur = t.scan().unwrap();
        while let Some((k, _)) = cur.next_entry().unwrap() {
            let i = u32::from_be_bytes(k.try_into().unwrap());
            assert_eq!(i % 2, 1);
            count += 1;
        }
        assert_eq!(count, 2500);
    });
}

#[test]
fn variable_length_keys_and_values() {
    with_store("varlen", |store| {
        let mut t = store.create_table("t").unwrap();
        let mut expected = BTreeMap::new();
        for i in 0..2000usize {
            let key = format!("{:0width$}", i, width = 1 + i % 40).into_bytes();
            let value = vec![b'a' + (i % 26) as u8; i % 900];
            t.insert(&key, &value).unwrap();
            expected.insert(key, value);
        }
        let mut cur = t.scan().unwrap();
        let mut got = BTreeMap::new();
        while let Some((k, v)) = cur.next_entry().unwrap() {
            got.insert(k, v);
        }
        assert_eq!(got, expected);
    });
}

#[test]
fn oversized_keys_and_values_are_rejected() {
    with_store("oversize", |store| {
        let mut t = store.create_table("t").unwrap();
        let e = t.insert(&vec![0u8; 4096], b"v").unwrap_err();
        assert!(matches!(e, StorageError::KeyTooLarge(_)));
        let e = t.insert(b"k", &vec![0u8; 1 << 20]).unwrap_err();
        assert!(matches!(e, StorageError::ValueTooLarge(_)));
    });
}

#[test]
fn overwrite_with_growing_values_compacts_pages() {
    with_store("grow", |store| {
        let mut t = store.create_table("t").unwrap();
        // Repeated overwrites with progressively longer values leave dead
        // space; the tree must compact or split rather than corrupt.
        for round in 1..=8usize {
            for i in 0..500u32 {
                t.insert(&i.to_be_bytes(), &vec![round as u8; round * 100])
                    .unwrap();
            }
        }
        for i in 0..500u32 {
            assert_eq!(t.get(&i.to_be_bytes()).unwrap().unwrap(), vec![8u8; 800]);
        }
    });
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    Get(Vec<u8>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let key = proptest::collection::vec(0u8..8, 1..5);
    let value = proptest::collection::vec(any::<u8>(), 0..48);
    prop_oneof![
        3 => (key.clone(), value).prop_map(|(k, v)| Op::Insert(k, v)),
        1 => key.clone().prop_map(Op::Delete),
        1 => key.prop_map(Op::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn prop_behaves_like_btreemap(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let path = temp(&format!("prop-{:x}", rand_suffix(&ops)));
        let store = Store::create(&path, 16).unwrap();
        let mut table = store.create_table("t").unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

        for op in &ops {
            match op {
                Op::Insert(k, v) => {
                    table.insert(k, v).unwrap();
                    model.insert(k.clone(), v.clone());
                }
                Op::Delete(k) => {
                    let removed = table.delete(k).unwrap();
                    prop_assert_eq!(removed, model.remove(k).is_some());
                }
                Op::Get(k) => {
                    prop_assert_eq!(table.get(k).unwrap(), model.get(k).cloned());
                }
            }
        }

        // Final full-scan equivalence.
        let mut cur = table.scan().unwrap();
        let mut got = Vec::new();
        while let Some(e) = cur.next_entry().unwrap() {
            got.push(e);
        }
        let want: Vec<_> = model.into_iter().collect();
        prop_assert_eq!(got, want);

        drop(table);
        drop(store);
        std::fs::remove_file(&path).ok();
    }
}

/// Cheap deterministic suffix so parallel proptest cases use distinct files.
fn rand_suffix(ops: &[Op]) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    ops.len().hash(&mut h);
    for op in ops.iter().take(8) {
        match op {
            Op::Insert(k, v) => {
                k.hash(&mut h);
                v.hash(&mut h);
            }
            Op::Delete(k) | Op::Get(k) => k.hash(&mut h),
        }
    }
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Bulk loading sorted entries is observationally identical to inserting
    /// them one at a time.
    #[test]
    fn prop_bulk_load_equals_incremental(
        mut keys in proptest::collection::btree_set(proptest::collection::vec(any::<u8>(), 1..12), 0..300)
    ) {
        let entries: Vec<(Vec<u8>, Vec<u8>)> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), (i as u32).to_le_bytes().to_vec()))
            .collect();
        keys.clear();

        let path_a = temp("bulk-a");
        let path_b = temp("bulk-b");
        let store_a = Store::create(&path_a, 32).unwrap();
        let store_b = Store::create(&path_b, 32).unwrap();
        let bulk = store_a
            .create_table_bulk("t", entries.iter().cloned())
            .unwrap();
        let mut incremental = store_b.create_table("t").unwrap();
        for (k, v) in &entries {
            incremental.insert(k, v).unwrap();
        }

        // Same scan contents.
        let collect = |t: &trex_storage::Table| {
            let mut cursor = t.scan().unwrap();
            let mut out = Vec::new();
            while let Some(e) = cursor.next_entry().unwrap() {
                out.push(e);
            }
            out
        };
        prop_assert_eq!(collect(&bulk), collect(&incremental));

        // Same point lookups (hits and misses).
        for (k, v) in &entries {
            let got = bulk.get(k).unwrap();
            prop_assert_eq!(got.as_deref(), Some(v.as_slice()));
        }
        prop_assert!(bulk.get(b"\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff").unwrap().is_none());

        drop(bulk);
        drop(incremental);
        drop(store_a);
        drop(store_b);
        std::fs::remove_file(&path_a).ok();
        std::fs::remove_file(&path_b).ok();
    }
}
