//! Binary codecs shared by the storage engine and the index tables built on
//! top of it.
//!
//! Two families live here:
//!
//! * **Varints** — LEB128-style variable-length integers used inside page
//!   cells and posting-list chunks, where space matters but ordering does not.
//! * **Order-preserving encodings** — fixed-width big-endian encodings used in
//!   B+tree *keys*, where the byte-wise (memcmp) order of the encoding must
//!   equal the natural order of the value. This is what lets composite keys
//!   such as `(sid, doc_id, end_pos)` be compared as plain byte slices.

use crate::error::{Result, StorageError};

// ---------------------------------------------------------------------------
// Varints
// ---------------------------------------------------------------------------

/// Appends `v` to `out` as a LEB128 varint (1–10 bytes).
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint from the front of `buf`, returning the value and the
/// number of bytes consumed.
///
/// Rejects encodings that do not fit a `u64`: more than ten bytes, or a
/// tenth byte whose payload spills past bit 63 (at `shift == 63` only the
/// lowest payload bit is representable — silently shifting the rest out
/// would decode corrupt or overlong encodings to a *wrong value* instead of
/// an error).
pub fn read_varint(buf: &[u8]) -> Result<(u64, usize)> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if shift >= 64 {
            return Err(StorageError::Corrupt("varint too long".into()));
        }
        let payload = byte & 0x7f;
        if shift == 63 && payload > 1 {
            return Err(StorageError::Corrupt("varint overflows u64".into()));
        }
        v |= u64::from(payload) << shift;
        if byte & 0x80 == 0 {
            return Ok((v, i + 1));
        }
        shift += 7;
    }
    Err(StorageError::Corrupt("truncated varint".into()))
}

/// [`read_varint`] for values that must fit a `u32` (block-codec field
/// widths); anything larger is corrupt data, not a silent truncation.
pub fn read_varint_u32(buf: &[u8]) -> Result<(u32, usize)> {
    let (v, n) = read_varint(buf)?;
    let v = u32::try_from(v).map_err(|_| StorageError::Corrupt("varint overflows u32".into()))?;
    Ok((v, n))
}

/// Number of bytes [`write_varint`] will emit for `v`.
pub fn varint_len(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

// ---------------------------------------------------------------------------
// Order-preserving fixed-width encodings
// ---------------------------------------------------------------------------

/// Appends `v` big-endian so that byte order equals numeric order.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Appends `v` big-endian so that byte order equals numeric order.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Reads a big-endian u32 at `off`. The offset arithmetic is checked: an
/// adversarial offset near `usize::MAX` is corrupt input, not a panic
/// (debug) or a wrapped-past-the-bounds-check read (release).
pub fn get_u32(buf: &[u8], off: usize) -> Result<u32> {
    let end = off
        .checked_add(4)
        .ok_or_else(|| StorageError::Corrupt("u32 offset overflow".into()))?;
    if end > buf.len() {
        return Err(StorageError::Corrupt("truncated u32".into()));
    }
    let mut b = [0u8; 4];
    b.copy_from_slice(&buf[off..end]);
    Ok(u32::from_be_bytes(b))
}

/// Reads a big-endian u64 at `off`, with the same checked-offset contract
/// as [`get_u32`].
pub fn get_u64(buf: &[u8], off: usize) -> Result<u64> {
    let end = off
        .checked_add(8)
        .ok_or_else(|| StorageError::Corrupt("u64 offset overflow".into()))?;
    if end > buf.len() {
        return Err(StorageError::Corrupt("truncated u64".into()));
    }
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..end]);
    Ok(u64::from_be_bytes(b))
}

/// Encodes an `f32` score so that the **byte order of the encoding is the
/// reverse of the numeric order** of the score.
///
/// Relevance posting lists (RPLs) must enumerate elements in *descending*
/// score order using an *ascending* B+tree scan, so the key embeds
/// `inverted_score_bits(score)`.
///
/// The standard total-order trick maps a float to a sortable unsigned integer
/// (flip the sign bit for positives, flip all bits for negatives); we then
/// complement the result to reverse the order. NaNs are rejected at the call
/// sites that build keys; here they map to the end of the order.
pub fn inverted_score_bits(score: f32) -> u32 {
    let bits = score.to_bits();
    let sortable = if bits & 0x8000_0000 != 0 {
        !bits // negative: flip everything
    } else {
        bits | 0x8000_0000 // positive: flip the sign bit
    };
    !sortable
}

/// Inverse of [`inverted_score_bits`].
pub fn score_from_inverted_bits(inv: u32) -> f32 {
    let sortable = !inv;
    let bits = if sortable & 0x8000_0000 != 0 {
        sortable & 0x7fff_ffff
    } else {
        !sortable
    };
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "len for {v}");
            let (back, used) = read_varint(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 300);
        assert!(read_varint(&buf[..1]).is_err());
        assert!(read_varint(&[]).is_err());
    }

    #[test]
    fn varint_rejects_overlong() {
        // 11 continuation bytes cannot encode a u64.
        let buf = [0xffu8; 11];
        assert!(read_varint(&buf).is_err());
    }

    #[test]
    fn varint_rejects_overflowing_tenth_byte() {
        // Nine continuation bytes put the tenth byte at shift 63, where only
        // payload bit 0 is representable. 0x02 would previously be shifted
        // out silently, decoding to 0 instead of erroring.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x02);
        assert!(read_varint(&buf).is_err());

        // 0x01 at shift 63 is exactly the top bit: 1 << 63.
        let mut ok = vec![0x80u8; 9];
        ok.push(0x01);
        let (v, used) = read_varint(&ok).unwrap();
        assert_eq!(v, 1u64 << 63);
        assert_eq!(used, 10);
    }

    #[test]
    fn varint_u32_rejects_wider_values() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::from(u32::MAX));
        assert_eq!(read_varint_u32(&buf).unwrap(), (u32::MAX, buf.len()));
        buf.clear();
        write_varint(&mut buf, u64::from(u32::MAX) + 1);
        assert!(read_varint_u32(&buf).is_err());
    }

    #[test]
    fn big_endian_u32_order_matches_numeric_order() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        put_u32(&mut a, 7);
        put_u32(&mut b, 300);
        assert!(a < b);
        assert_eq!(get_u32(&a, 0).unwrap(), 7);
    }

    #[test]
    fn truncated_fixed_width_reads_error() {
        assert!(get_u32(&[1, 2, 3], 0).is_err());
        assert!(get_u64(&[1, 2, 3, 4, 5, 6, 7], 0).is_err());
        assert!(get_u32(&[1, 2, 3, 4], 1).is_err());
    }

    #[test]
    fn adversarial_offsets_are_corrupt_not_panics() {
        let buf = [0u8; 16];
        assert!(get_u32(&buf, usize::MAX).is_err());
        assert!(get_u32(&buf, usize::MAX - 3).is_err());
        assert!(get_u64(&buf, usize::MAX).is_err());
        assert!(get_u64(&buf, usize::MAX - 7).is_err());
    }

    #[test]
    fn inverted_score_bits_reverses_order_on_known_values() {
        let scores = [-3.5f32, -0.0, 0.0, 0.25, 1.0, 7.5, 1e30];
        for w in scores.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            assert!(
                inverted_score_bits(hi) <= inverted_score_bits(lo),
                "{hi} should encode <= {lo}"
            );
        }
    }

    #[test]
    fn inverted_score_bits_round_trip() {
        for s in [-12.25f32, -1.0, 0.0, 0.5, 123.75] {
            let back = score_from_inverted_bits(inverted_score_bits(s));
            assert_eq!(back.to_bits(), s.to_bits());
        }
    }

    proptest! {
        #[test]
        fn prop_varint_round_trip(v in any::<u64>()) {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let (back, used) = read_varint(&buf).unwrap();
            prop_assert_eq!(back, v);
            prop_assert_eq!(used, buf.len());
            prop_assert_eq!(buf.len(), varint_len(v));
        }

        #[test]
        fn prop_inverted_score_is_order_reversing(a in -1e30f32..1e30, b in -1e30f32..1e30) {
            let (ea, eb) = (inverted_score_bits(a), inverted_score_bits(b));
            match a.partial_cmp(&b).unwrap() {
                std::cmp::Ordering::Less => prop_assert!(ea >= eb),
                std::cmp::Ordering::Greater => prop_assert!(ea <= eb),
                std::cmp::Ordering::Equal => prop_assert_eq!(ea, eb),
            }
        }

        #[test]
        fn prop_inverted_score_round_trip(s in -1e30f32..1e30) {
            prop_assert_eq!(score_from_inverted_bits(inverted_score_bits(s)).to_bits(), s.to_bits());
        }
    }
}
