//! # trex-storage
//!
//! Ordered key–value storage engine used by TReX as its substitute for
//! BerkeleyDB. The paper (§2.2, §5.1) stores the `Elements`, `PostingLists`,
//! `RPLs` and `ERPLs` tables in BDB B-trees and relies on exactly two access
//! paths: point/seek lookups on the primary key and sequential scans in key
//! order. This crate provides those access paths:
//!
//! * a single store file split into fixed-size pages ([`page`], [`pager`]);
//! * an LRU buffer pool ([`buffer`]);
//! * a persistent B+tree with chained leaves ([`btree`]);
//! * a named-table catalog ([`store`]);
//! * a write-ahead log with redo recovery ([`wal`]) — [`Store::flush`] is
//!   an atomic checkpoint, and [`Store::open`] replays or discards an
//!   interrupted one, so a crash at any point leaves the store openable at
//!   its last durable checkpoint.
//!
//! ```
//! use trex_storage::Store;
//!
//! let dir = std::env::temp_dir().join(format!("trex-doc-{}", std::process::id()));
//! let _ = std::fs::remove_file(&dir);
//! let store = Store::create(&dir, 128).unwrap();
//! let mut table = store.create_table("postings").unwrap();
//! table.insert(b"xml", b"positions...").unwrap();
//! assert_eq!(table.get(b"xml").unwrap().unwrap(), b"positions...");
//!
//! let mut cursor = table.seek(b"x").unwrap();
//! let (key, _) = cursor.next_entry().unwrap().unwrap();
//! assert_eq!(key, b"xml");
//! # std::fs::remove_file(&dir).ok();
//! # std::fs::remove_file(trex_storage::wal_path(&dir)).ok();
//! ```

pub mod btree;
pub mod buffer;
pub mod codec;
pub mod error;
pub mod page;
pub mod pager;
pub mod store;
pub mod wal;

pub use btree::{bulk_load, BTree, Cursor, MAX_KEY_LEN, MAX_VALUE_LEN};
pub use buffer::BufferPool;
pub use error::{Result, StorageError};
pub use page::{PageId, PAGE_SIZE};
pub use store::{Store, StoreOptions, Table};
pub use wal::{wal_path, CrashPoint, PendingIngest, RecoveryReport, MAX_INGEST_XML};
