//! LRU buffer pool over the [`Pager`].
//!
//! The pool caches up to `capacity` page images. A fetched page is handed out
//! as a [`PageRef`] (an `Arc` clone), so nested accesses — e.g. a B+tree
//! descent holding a parent while reading a child — are safe. Eviction only
//! considers pages that no one else holds (`Arc::strong_count == 1`), writing
//! them back if dirty.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use trex_obs::StorageCounters;

use crate::error::Result;
use crate::page::{PageBuf, PageId};
use crate::pager::Pager;

/// A cached page: the image plus a dirty flag.
pub struct CachedPage {
    /// The page image. Take a read lock for lookups, a write lock for edits.
    pub buf: RwLock<PageBuf>,
    dirty: AtomicBool,
}

impl CachedPage {
    /// Marks the page as needing write-back on eviction or flush.
    pub fn mark_dirty(&self) {
        self.dirty.store(true, Ordering::Release);
    }

    fn is_dirty(&self) -> bool {
        self.dirty.load(Ordering::Acquire)
    }

    fn clear_dirty(&self) {
        self.dirty.store(false, Ordering::Release);
    }
}

/// A handle to a cached page.
pub type PageRef = Arc<CachedPage>;

struct Slot {
    page: PageRef,
    /// Logical timestamp of the most recent touch; entries in the LRU queue
    /// with an older stamp are stale and skipped.
    touch: u64,
}

struct PoolInner {
    map: HashMap<PageId, Slot>,
    /// (page, touch-stamp) in touch order; front = least recently used.
    lru: VecDeque<(PageId, u64)>,
    clock: u64,
}

impl PoolInner {
    fn touch(&mut self, id: PageId) {
        self.clock += 1;
        let stamp = self.clock;
        if let Some(slot) = self.map.get_mut(&id) {
            slot.touch = stamp;
        }
        self.lru.push_back((id, stamp));
    }
}

/// The buffer pool. Also the single owner of the [`Pager`].
pub struct BufferPool {
    pager: Mutex<Pager>,
    inner: Mutex<PoolInner>,
    capacity: usize,
    /// Counter group shared with the wrapped pager (and, via
    /// [`BufferPool::counters`], with the B+-tree layer above): cache
    /// hits/misses/evictions accrue here next to the pager's page I/O.
    obs: Arc<StorageCounters>,
}

impl BufferPool {
    /// Wraps `pager` with a pool caching up to `capacity` pages
    /// (minimum 8 so tree descents always fit).
    pub fn new(pager: Pager, capacity: usize) -> BufferPool {
        let obs = pager.counters().clone();
        BufferPool {
            pager: Mutex::new(pager),
            inner: Mutex::new(PoolInner {
                map: HashMap::new(),
                lru: VecDeque::new(),
                clock: 0,
            }),
            capacity: capacity.max(8),
            obs,
        }
    }

    /// The storage-layer counter group (shared with the pager). Snapshot it
    /// before and after a unit of work to attribute storage activity.
    pub fn counters(&self) -> &Arc<StorageCounters> {
        &self.obs
    }

    /// Fetches page `id`, reading it from disk on a miss.
    pub fn fetch(&self, id: PageId) -> Result<PageRef> {
        {
            let mut inner = self.inner.lock();
            if let Some(slot) = inner.map.get(&id) {
                let page = slot.page.clone();
                inner.touch(id);
                self.obs.pool_hits.incr();
                return Ok(page);
            }
        }
        self.obs.pool_misses.incr();
        // Read outside the inner lock; racing fetches of the same page are
        // resolved below (first insert wins; both images are identical since
        // all mutation happens through cached handles).
        let mut buf = PageBuf::zeroed();
        self.pager.lock().read_page(id, &mut buf)?;
        let page = Arc::new(CachedPage {
            buf: RwLock::new(buf),
            dirty: AtomicBool::new(false),
        });
        let mut inner = self.inner.lock();
        if let Some(slot) = inner.map.get(&id) {
            let existing = slot.page.clone();
            inner.touch(id);
            return Ok(existing);
        }
        self.evict_if_needed(&mut inner)?;
        inner.map.insert(
            id,
            Slot {
                page: page.clone(),
                touch: 0,
            },
        );
        inner.touch(id);
        Ok(page)
    }

    /// Allocates a fresh page and returns its id plus a cached handle. The
    /// page image is zeroed; callers must `init` it and mark it dirty.
    pub fn allocate(&self) -> Result<(PageId, PageRef)> {
        let id = self.pager.lock().allocate()?;
        let page = Arc::new(CachedPage {
            buf: RwLock::new(PageBuf::zeroed()),
            dirty: AtomicBool::new(false),
        });
        let mut inner = self.inner.lock();
        self.evict_if_needed(&mut inner)?;
        inner.map.insert(
            id,
            Slot {
                page: page.clone(),
                touch: 0,
            },
        );
        inner.touch(id);
        Ok((id, page))
    }

    /// Returns page `id` to the pager's free list and drops it from the cache.
    pub fn free(&self, id: PageId) -> Result<()> {
        self.inner.lock().map.remove(&id);
        self.pager.lock().free(id)
    }

    fn evict_if_needed(&self, inner: &mut PoolInner) -> Result<()> {
        while inner.map.len() >= self.capacity {
            let Some(victim) = Self::pick_victim(inner) else {
                // Everything is pinned; allow the pool to grow temporarily.
                return Ok(());
            };
            let slot = inner.map.remove(&victim).expect("victim in map");
            self.obs.pool_evictions.incr();
            if slot.page.is_dirty() {
                let buf = slot.page.buf.read();
                self.pager.lock().write_page(victim, &buf)?;
                slot.page.clear_dirty();
            }
        }
        Ok(())
    }

    fn pick_victim(inner: &mut PoolInner) -> Option<PageId> {
        let mut requeue: Vec<(PageId, u64)> = Vec::new();
        let mut found = None;
        while let Some((id, stamp)) = inner.lru.pop_front() {
            match inner.map.get(&id) {
                None => continue, // freed page
                Some(slot) if slot.touch != stamp => continue, // stale entry
                Some(slot) => {
                    if Arc::strong_count(&slot.page) == 1 {
                        found = Some(id);
                        break;
                    }
                    requeue.push((id, stamp)); // pinned: keep its LRU position
                }
            }
        }
        // Restore pinned entries at the front, preserving their order.
        for e in requeue.into_iter().rev() {
            inner.lru.push_front(e);
        }
        found
    }

    /// Writes back all dirty pages and syncs the file.
    pub fn flush(&self) -> Result<()> {
        let inner = self.inner.lock();
        let mut pager = self.pager.lock();
        for (&id, slot) in inner.map.iter() {
            if slot.page.is_dirty() {
                let buf = slot.page.buf.read();
                pager.write_page(id, &buf)?;
                slot.page.clear_dirty();
            }
        }
        pager.sync()
    }

    /// (hits, misses) since pool creation.
    pub fn cache_counters(&self) -> (u64, u64) {
        (self.obs.pool_hits.get(), self.obs.pool_misses.get())
    }

    /// (disk reads, disk writes) since the pager was opened.
    pub fn io_counters(&self) -> (u64, u64) {
        self.pager.lock().io_counters()
    }

    /// Head of the pager's free-page list (persisted in the meta page).
    pub fn free_head(&self) -> PageId {
        self.pager.lock().free_head()
    }

    /// Total pages in the underlying file.
    pub fn page_count(&self) -> u32 {
        self.pager.lock().page_count()
    }

    /// Number of pages currently cached.
    pub fn cached_pages(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Maximum number of cached pages before eviction kicks in.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageType;

    fn pool(name: &str, cap: usize) -> (BufferPool, std::path::PathBuf) {
        let mut p = std::env::temp_dir();
        p.push(format!("trex-buffer-{name}-{}", std::process::id()));
        let pager = Pager::create(&p).unwrap();
        (BufferPool::new(pager, cap), p)
    }

    #[test]
    fn fetch_caches_and_hits() {
        let (pool, path) = pool("hit", 16);
        let (id, page) = pool.allocate().unwrap();
        page.buf.write().init(PageType::Leaf);
        page.mark_dirty();
        drop(page);
        let _p1 = pool.fetch(id).unwrap();
        let _p2 = pool.fetch(id).unwrap();
        let (hits, _) = pool.cache_counters();
        assert!(hits >= 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (pool, path) = pool("evict", 8);
        let mut ids = Vec::new();
        for i in 0..32u32 {
            let (id, page) = pool.allocate().unwrap();
            {
                let mut buf = page.buf.write();
                buf.init(PageType::Leaf);
                buf.set_next_page(i + 1000);
            }
            page.mark_dirty();
            ids.push(id);
        }
        assert!(pool.cached_pages() <= 9);
        // Early pages were evicted; refetch and confirm contents survived.
        let first = pool.fetch(ids[0]).unwrap();
        assert_eq!(first.buf.read().next_page(), 1000);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let (pool, path) = pool("pin", 8);
        let (id, pinned) = pool.allocate().unwrap();
        pinned.buf.write().init(PageType::Leaf);
        pinned.mark_dirty();
        for _ in 0..32 {
            let (_, p) = pool.allocate().unwrap();
            p.buf.write().init(PageType::Leaf);
            p.mark_dirty();
        }
        // The pinned handle must still observe its image in cache.
        let again = pool.fetch(id).unwrap();
        assert!(Arc::ptr_eq(&pinned, &again));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let (pool, path) = pool("order", 8);
        let mut ids = Vec::new();
        for _ in 0..8 {
            let (id, p) = pool.allocate().unwrap();
            p.buf.write().init(PageType::Leaf);
            p.mark_dirty();
            ids.push(id);
        }
        // Touch the first page so it is the most recently used.
        drop(pool.fetch(ids[0]).unwrap());
        // Trigger one eviction.
        let (_, p) = pool.allocate().unwrap();
        p.buf.write().init(PageType::Leaf);
        p.mark_dirty();
        // ids[1] (the oldest untouched) must have been the victim; fetching
        // it again is a miss, fetching ids[0] is a hit.
        let (_, misses_before) = pool.cache_counters();
        drop(pool.fetch(ids[0]).unwrap());
        let (_, misses_mid) = pool.cache_counters();
        assert_eq!(misses_before, misses_mid, "ids[0] should still be cached");
        drop(pool.fetch(ids[1]).unwrap());
        let (_, misses_after) = pool.cache_counters();
        assert_eq!(misses_after, misses_mid + 1, "ids[1] should have been evicted");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flush_persists_everything() {
        let (pool, path) = pool("flush", 8);
        let (id, page) = pool.allocate().unwrap();
        {
            let mut buf = page.buf.write();
            buf.init(PageType::Internal);
            buf.set_right_child(424242);
        }
        page.mark_dirty();
        drop(page);
        pool.flush().unwrap();
        // Bypass the cache: reopen the file.
        drop(pool);
        let mut pager = Pager::open(&path).unwrap();
        let mut buf = PageBuf::zeroed();
        pager.read_page(id, &mut buf).unwrap();
        assert_eq!(buf.right_child(), 424242);
        std::fs::remove_file(&path).ok();
    }
}
