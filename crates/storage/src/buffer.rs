//! Sharded LRU buffer pool over the [`Pager`].
//!
//! The pool caches up to `capacity` page images across N lock-striped
//! shards. A page id is hashed (modulo) to one shard; each shard owns its
//! own map + LRU queue behind its own mutex, so concurrent readers touching
//! different shards never contend. The pager — the only component doing
//! file I/O — stays behind a single narrow mutex that is only taken on a
//! miss, an eviction write-back, an allocation, or a flush.
//!
//! A fetched page is handed out as a [`PageRef`] (an `Arc` clone), so nested
//! accesses — e.g. a B+tree descent holding a parent while reading a child —
//! are safe. Eviction only considers pages that no one else holds
//! (`Arc::strong_count == 1`), writing them back if dirty *before* removing
//! them from the shard map, so a failed write-back never loses the page.
//!
//! # Locking protocol
//!
//! Two lock levels, strictly ordered: **shard → pager**.
//!
//! * A thread may take the pager mutex while holding one shard mutex
//!   (eviction write-back, flush), never the reverse.
//! * No thread ever holds two shard mutexes at once (flush visits shards
//!   one at a time).
//! * The miss path keeps the shard mutex held across the disk read and the
//!   insert. Releasing it in between would open a lost-update window: a
//!   racing fetch could fault the page in, mutate it through its handle,
//!   and have eviction write it back and drop it from the shard — all
//!   before this thread inserts its now-stale image. Holding the shard
//!   lock means a miss serialises against same-shard access for one page
//!   read; other shards are unaffected.
//! * When every page of a shard is pinned, the shard grows past its
//!   capacity temporarily instead of deadlocking (the escape hatch the
//!   B+tree descent relies on).

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use trex_obs::{ShardCounters, ShardSnapshot, StorageCounters, StorageTimers};

use crate::error::Result;
use crate::page::{PageBuf, PageId};
use crate::pager::Pager;

/// Smallest per-shard capacity: a B+tree descent (root → leaf plus a
/// sibling) must always fit in the shard its pages hash to.
const MIN_SHARD_CAPACITY: usize = 8;

/// Upper bound on the shard count picked by [`BufferPool::new`].
const MAX_SHARDS: usize = 16;

/// A cached page: the image plus a dirty flag.
pub struct CachedPage {
    /// The page image. Take a read lock for lookups, a write lock for edits.
    pub buf: RwLock<PageBuf>,
    dirty: AtomicBool,
}

impl CachedPage {
    /// Marks the page as needing write-back on eviction or flush.
    pub fn mark_dirty(&self) {
        self.dirty.store(true, Ordering::Release);
    }

    fn is_dirty(&self) -> bool {
        self.dirty.load(Ordering::Acquire)
    }

    fn clear_dirty(&self) {
        self.dirty.store(false, Ordering::Release);
    }
}

/// A handle to a cached page.
pub type PageRef = Arc<CachedPage>;

struct Slot {
    page: PageRef,
    /// Logical timestamp of the most recent touch; entries in the LRU queue
    /// with an older stamp are stale and skipped.
    touch: u64,
}

struct PoolInner {
    map: HashMap<PageId, Slot>,
    /// (page, touch-stamp) in touch order; front = least recently used.
    lru: VecDeque<(PageId, u64)>,
    clock: u64,
}

impl PoolInner {
    fn touch(&mut self, id: PageId) {
        self.clock += 1;
        let stamp = self.clock;
        if let Some(slot) = self.map.get_mut(&id) {
            slot.touch = stamp;
        }
        self.lru.push_back((id, stamp));
    }
}

/// One lock stripe: its own map + LRU plus its own cache counters.
struct Shard {
    inner: Mutex<PoolInner>,
    /// Per-shard hit/miss/eviction accounting. Every event also lands in
    /// the pool-level [`StorageCounters`], so the shard groups always sum
    /// exactly to the global `pool_*` counters.
    obs: ShardCounters,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            inner: Mutex::new(PoolInner {
                map: HashMap::new(),
                lru: VecDeque::new(),
                clock: 0,
            }),
            obs: ShardCounters::new(),
        }
    }
}

/// The sharded buffer pool. Also the single owner of the [`Pager`].
pub struct BufferPool {
    pager: Mutex<Pager>,
    shards: Box<[Shard]>,
    /// Eviction threshold per shard; total capacity is
    /// `shard_capacity * shards.len()`.
    shard_capacity: usize,
    /// Counter group shared with the wrapped pager (and, via
    /// [`BufferPool::counters`], with the B+-tree layer above): cache
    /// hits/misses/evictions accrue here next to the pager's page I/O.
    obs: Arc<StorageCounters>,
    /// Shared I/O latency histograms, adopted from the pager like `obs`.
    timers: Arc<StorageTimers>,
}

impl BufferPool {
    /// Wraps `pager` with a pool caching up to `capacity` pages, picking a
    /// shard count automatically: the largest power of two that keeps every
    /// shard at [`MIN_SHARD_CAPACITY`] pages or more, capped at
    /// [`MAX_SHARDS`]. Small pools (≤ 15 pages) get a single shard and
    /// behave exactly like the unsharded pool.
    pub fn new(pager: Pager, capacity: usize) -> BufferPool {
        let capacity = capacity.max(MIN_SHARD_CAPACITY);
        let mut shards = 1usize;
        while shards * 2 <= MAX_SHARDS && capacity / (shards * 2) >= MIN_SHARD_CAPACITY {
            shards *= 2;
        }
        Self::with_shards(pager, capacity, shards)
    }

    /// Wraps `pager` with an explicit shard count (clamped to ≥ 1). Each
    /// shard gets `ceil(capacity / shards)` pages, floored at
    /// [`MIN_SHARD_CAPACITY`] so tree descents always fit; the effective
    /// [`BufferPool::capacity`] is never below the requested one.
    pub fn with_shards(pager: Pager, capacity: usize, shards: usize) -> BufferPool {
        let shards = shards.max(1);
        let shard_capacity = capacity.div_ceil(shards).max(MIN_SHARD_CAPACITY);
        let obs = pager.counters().clone();
        let timers = pager.timers().clone();
        BufferPool {
            pager: Mutex::new(pager),
            shards: (0..shards).map(|_| Shard::new()).collect(),
            shard_capacity,
            obs,
            timers,
        }
    }

    #[inline]
    fn shard(&self, id: PageId) -> &Shard {
        &self.shards[id as usize % self.shards.len()]
    }

    /// The storage-layer counter group (shared with the pager). Snapshot it
    /// before and after a unit of work to attribute storage activity.
    pub fn counters(&self) -> &Arc<StorageCounters> {
        &self.obs
    }

    /// The shared storage-layer latency histograms (see [`Pager::timers`]).
    pub fn timers(&self) -> &Arc<StorageTimers> {
        &self.timers
    }

    /// Fetches page `id`, reading it from disk on a miss.
    pub fn fetch(&self, id: PageId) -> Result<PageRef> {
        let shard = self.shard(id);
        let mut inner = shard.inner.lock();
        if let Some(slot) = inner.map.get(&id) {
            let page = slot.page.clone();
            inner.touch(id);
            self.obs.pool_hits.incr();
            shard.obs.hits.incr();
            return Ok(page);
        }
        self.obs.pool_misses.incr();
        shard.obs.misses.incr();
        // Read while still holding the shard lock (shard → pager order).
        // Dropping it here would let a racing fetch fault the page in,
        // mutate it, and have eviction write it back and remove it from the
        // shard — all between this read and the insert below — so the image
        // read here would silently shadow the newer one (lost update).
        let mut buf = PageBuf::zeroed();
        self.pager.lock().read_page(id, &mut buf)?;
        let page = Arc::new(CachedPage {
            buf: RwLock::new(buf),
            dirty: AtomicBool::new(false),
        });
        self.evict_if_needed(shard, &mut inner)?;
        inner.map.insert(
            id,
            Slot {
                page: page.clone(),
                touch: 0,
            },
        );
        inner.touch(id);
        Ok(page)
    }

    /// Allocates a fresh page and returns its id plus a cached handle. The
    /// page image is zeroed; callers must `init` it and mark it dirty.
    pub fn allocate(&self) -> Result<(PageId, PageRef)> {
        let id = self.pager.lock().allocate()?;
        let page = Arc::new(CachedPage {
            buf: RwLock::new(PageBuf::zeroed()),
            dirty: AtomicBool::new(false),
        });
        let shard = self.shard(id);
        let mut inner = shard.inner.lock();
        if let Err(e) = self.evict_if_needed(shard, &mut inner) {
            // The pager already handed out `id`; return it to the free list
            // (best-effort) so a failed dirty write-back doesn't leak a page
            // in the file forever.
            let _ = self.pager.lock().free(id);
            return Err(e);
        }
        inner.map.insert(
            id,
            Slot {
                page: page.clone(),
                touch: 0,
            },
        );
        inner.touch(id);
        Ok((id, page))
    }

    /// Returns page `id` to the pager's free list and drops it from the cache.
    pub fn free(&self, id: PageId) -> Result<()> {
        self.shard(id).inner.lock().map.remove(&id);
        self.pager.lock().free(id)
    }

    /// Evicts until the shard is under its capacity. Dirty victims are
    /// written back *before* removal: if the write fails, the page stays in
    /// the shard (re-stamped into the LRU) with its dirty bit set, so the
    /// data survives and a later eviction or flush retries the write.
    fn evict_if_needed(&self, shard: &Shard, inner: &mut PoolInner) -> Result<()> {
        while inner.map.len() >= self.shard_capacity {
            let Some(victim) = Self::pick_victim(inner) else {
                // Everything is pinned; allow the shard to grow temporarily.
                return Ok(());
            };
            let page = inner.map.get(&victim).expect("victim in map").page.clone();
            if page.is_dirty() {
                let buf = page.buf.read();
                if let Err(e) = self.pager.lock().write_page(victim, &buf) {
                    // pick_victim popped the victim's LRU entry; re-stamp it
                    // so it stays reachable for the retry.
                    drop(buf);
                    inner.touch(victim);
                    return Err(e);
                }
                page.clear_dirty();
            }
            inner.map.remove(&victim);
            self.obs.pool_evictions.incr();
            shard.obs.evictions.incr();
        }
        Ok(())
    }

    fn pick_victim(inner: &mut PoolInner) -> Option<PageId> {
        let mut requeue: Vec<(PageId, u64)> = Vec::new();
        let mut found = None;
        while let Some((id, stamp)) = inner.lru.pop_front() {
            match inner.map.get(&id) {
                None => continue,                              // freed page
                Some(slot) if slot.touch != stamp => continue, // stale entry
                Some(slot) => {
                    if Arc::strong_count(&slot.page) == 1 {
                        found = Some(id);
                        break;
                    }
                    requeue.push((id, stamp)); // pinned: keep its LRU position
                }
            }
        }
        // Restore pinned entries at the front, preserving their order.
        for e in requeue.into_iter().rev() {
            inner.lru.push_front(e);
        }
        found
    }

    /// Writes back all dirty pages and checkpoints the pager. Visits shards
    /// one at a time (shard → pager lock order, never two shards at once).
    ///
    /// With a WAL-backed pager the write-backs are log appends and
    /// [`Pager::checkpoint`] then makes them durable atomically
    /// (log-before-data); without a WAL this degrades to write-in-place
    /// plus a plain fsync.
    pub fn flush(&self) -> Result<()> {
        self.flush_consuming_ingests(0)
    }

    /// [`BufferPool::flush`] whose checkpoint additionally consumes the
    /// WAL's pending ingest records below `ingest_watermark` (a fold's
    /// durability point — the folded rows and the consumption commit
    /// atomically together).
    pub fn flush_consuming_ingests(&self, ingest_watermark: u64) -> Result<()> {
        for shard in self.shards.iter() {
            let inner = shard.inner.lock();
            let mut pager = self.pager.lock();
            for (&id, slot) in inner.map.iter() {
                if slot.page.is_dirty() {
                    let buf = slot.page.buf.read();
                    pager.write_page(id, &buf)?;
                    slot.page.clear_dirty();
                }
            }
        }
        self.pager.lock().checkpoint_consuming(ingest_watermark)
    }

    /// Logs one ingested document to the WAL (fsynced, individually
    /// durable); `false` when the pager runs without a WAL.
    pub fn log_ingest(&self, doc_id: u32, xml: &[u8]) -> Result<bool> {
        self.pager.lock().log_ingest(doc_id, xml)
    }

    /// The logged ingested documents no fold has consumed yet.
    pub fn pending_ingests(&self) -> Vec<crate::wal::PendingIngest> {
        self.pager.lock().pending_ingests()
    }

    /// (hits, misses) since pool creation.
    pub fn cache_counters(&self) -> (u64, u64) {
        (self.obs.pool_hits.get(), self.obs.pool_misses.get())
    }

    /// (disk reads, disk writes) since the pager was opened.
    pub fn io_counters(&self) -> (u64, u64) {
        self.pager.lock().io_counters()
    }

    /// Head of the pager's free-page list (persisted in the meta page).
    pub fn free_head(&self) -> PageId {
        self.pager.lock().free_head()
    }

    /// Total pages in the underlying file.
    pub fn page_count(&self) -> u32 {
        self.pager.lock().page_count()
    }

    /// Number of pages currently cached, across all shards.
    pub fn cached_pages(&self) -> usize {
        self.shards.iter().map(|s| s.inner.lock().map.len()).sum()
    }

    /// Maximum number of cached pages before eviction kicks in (total
    /// across shards). Never below the capacity requested at construction:
    /// the per-shard share rounds up, and every shard holds at least
    /// [`MIN_SHARD_CAPACITY`] pages.
    pub fn capacity(&self) -> usize {
        self.shard_capacity * self.shards.len()
    }

    /// Number of lock-striped shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Point-in-time per-shard cache counters, in shard order. Their
    /// field-wise sums equal the pool-level `pool_hits` / `pool_misses` /
    /// `pool_evictions` exactly, under any thread interleaving.
    pub fn shard_counters(&self) -> Vec<ShardSnapshot> {
        self.shards.iter().map(|s| s.obs.snapshot()).collect()
    }

    /// Arms pager write-failure injection (see
    /// [`Pager::inject_write_failures`]); test instrumentation.
    pub fn inject_write_failures(&self, n: u32) {
        self.pager.lock().inject_write_failures(n);
    }

    /// Arms pager crash injection (see [`Pager::inject_crash`]): the nth
    /// occurrence of `point` tears that operation and kills the store.
    pub fn inject_crash(&self, point: crate::wal::CrashPoint, nth: u32) {
        self.pager.lock().inject_crash(point, nth);
    }

    /// What WAL recovery did when the underlying pager was opened (None
    /// after a clean shutdown or for WAL-less pagers).
    pub fn recovery_report(&self) -> Option<crate::wal::RecoveryReport> {
        self.pager.lock().recovery_report().cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageType;

    fn pool(name: &str, cap: usize) -> (BufferPool, std::path::PathBuf) {
        let mut p = std::env::temp_dir();
        p.push(format!("trex-buffer-{name}-{}", std::process::id()));
        let pager = Pager::create(&p).unwrap();
        (BufferPool::new(pager, cap), p)
    }

    #[test]
    fn fetch_caches_and_hits() {
        let (pool, path) = pool("hit", 16);
        let (id, page) = pool.allocate().unwrap();
        page.buf.write().init(PageType::Leaf);
        page.mark_dirty();
        drop(page);
        let _p1 = pool.fetch(id).unwrap();
        let _p2 = pool.fetch(id).unwrap();
        let (hits, _) = pool.cache_counters();
        assert!(hits >= 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (pool, path) = pool("evict", 8);
        assert_eq!(pool.shard_count(), 1, "cap 8 = one shard");
        let mut ids = Vec::new();
        for i in 0..32u32 {
            let (id, page) = pool.allocate().unwrap();
            {
                let mut buf = page.buf.write();
                buf.init(PageType::Leaf);
                buf.set_next_page(i + 1000);
            }
            page.mark_dirty();
            ids.push(id);
        }
        assert!(pool.cached_pages() <= 9);
        // Early pages were evicted; refetch and confirm contents survived.
        let first = pool.fetch(ids[0]).unwrap();
        assert_eq!(first.buf.read().next_page(), 1000);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let (pool, path) = pool("pin", 8);
        let (id, pinned) = pool.allocate().unwrap();
        pinned.buf.write().init(PageType::Leaf);
        pinned.mark_dirty();
        for _ in 0..32 {
            let (_, p) = pool.allocate().unwrap();
            p.buf.write().init(PageType::Leaf);
            p.mark_dirty();
        }
        // The pinned handle must still observe its image in cache.
        let again = pool.fetch(id).unwrap();
        assert!(Arc::ptr_eq(&pinned, &again));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let (pool, path) = pool("order", 8);
        let mut ids = Vec::new();
        for _ in 0..8 {
            let (id, p) = pool.allocate().unwrap();
            p.buf.write().init(PageType::Leaf);
            p.mark_dirty();
            ids.push(id);
        }
        // Touch the first page so it is the most recently used.
        drop(pool.fetch(ids[0]).unwrap());
        // Trigger one eviction.
        let (_, p) = pool.allocate().unwrap();
        p.buf.write().init(PageType::Leaf);
        p.mark_dirty();
        // ids[1] (the oldest untouched) must have been the victim; fetching
        // it again is a miss, fetching ids[0] is a hit.
        let (_, misses_before) = pool.cache_counters();
        drop(pool.fetch(ids[0]).unwrap());
        let (_, misses_mid) = pool.cache_counters();
        assert_eq!(misses_before, misses_mid, "ids[0] should still be cached");
        drop(pool.fetch(ids[1]).unwrap());
        let (_, misses_after) = pool.cache_counters();
        assert_eq!(
            misses_after,
            misses_mid + 1,
            "ids[1] should have been evicted"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flush_persists_everything() {
        let (pool, path) = pool("flush", 8);
        let (id, page) = pool.allocate().unwrap();
        {
            let mut buf = page.buf.write();
            buf.init(PageType::Internal);
            buf.set_right_child(424242);
        }
        page.mark_dirty();
        drop(page);
        pool.flush().unwrap();
        // Bypass the cache: reopen the file.
        drop(pool);
        let mut pager = Pager::open(&path).unwrap();
        let mut buf = PageBuf::zeroed();
        pager.read_page(id, &mut buf).unwrap();
        assert_eq!(buf.right_child(), 424242);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn default_shard_count_scales_with_capacity() {
        let (small, p1) = pool("sh-small", 8);
        assert_eq!(small.shard_count(), 1);
        let (mid, p2) = pool("sh-mid", 64);
        assert_eq!(mid.shard_count(), 8);
        assert_eq!(mid.capacity(), 64);
        let (big, p3) = pool("sh-big", 4096);
        assert_eq!(big.shard_count(), 16);
        assert_eq!(big.capacity(), 4096);
        for p in [p1, p2, p3] {
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn capacity_never_rounds_below_request() {
        // 100 / 8 shards floors to 12 × 8 = 96; the per-shard share must
        // round up instead (13 × 8 = 104 ≥ 100).
        let (pool, path) = pool("cap-ceil", 100);
        assert!(
            pool.capacity() >= 100,
            "capacity {} < requested 100",
            pool.capacity()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shard_counters_sum_to_global() {
        let (pool, path) = pool("sh-sum", 64);
        let mut ids = Vec::new();
        for _ in 0..128u32 {
            let (id, p) = pool.allocate().unwrap();
            p.buf.write().init(PageType::Leaf);
            p.mark_dirty();
            ids.push(id);
        }
        for &id in ids.iter().rev() {
            drop(pool.fetch(id).unwrap());
        }
        let shards = pool.shard_counters();
        let (hits, misses) = pool.cache_counters();
        let evictions = pool.counters().pool_evictions.get();
        assert_eq!(shards.iter().map(|s| s.hits).sum::<u64>(), hits);
        assert_eq!(shards.iter().map(|s| s.misses).sum::<u64>(), misses);
        assert_eq!(shards.iter().map(|s| s.evictions).sum::<u64>(), evictions);
        assert!(evictions > 0, "churn must evict");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_write_back_keeps_dirty_page_cached() {
        let (pool, path) = pool("wbfail", 8);
        // Overfill the single shard with dirty pages; the 9th allocation
        // evicts ids[0] (write-back succeeds, injection not armed yet).
        let mut ids = Vec::new();
        for i in 0..9u32 {
            let (id, p) = pool.allocate().unwrap();
            {
                let mut buf = p.buf.write();
                buf.init(PageType::Leaf);
                buf.set_next_page(i + 7000);
            }
            p.mark_dirty();
            ids.push(id);
        }
        // Refetching ids[0] faults it in and must evict dirty ids[1]; arm
        // the injection so that write-back fails.
        pool.inject_write_failures(1);
        let err = match pool.fetch(ids[0]) {
            Err(e) => e,
            Ok(_) => panic!("fetch must fail on write-back error"),
        };
        assert!(err.to_string().contains("injected"), "{err}");
        // Regression (the pre-shard pool removed the victim from the map
        // before writing it back, silently dropping the dirty image): the
        // victim must still be cached with its data intact.
        let victim = pool.fetch(ids[1]).unwrap();
        assert_eq!(victim.buf.read().next_page(), 7001);
        drop(victim);
        // With the failure cleared, eviction and flush succeed and the data
        // reaches disk.
        pool.flush().unwrap();
        drop(pool);
        let mut pager = Pager::open(&path).unwrap();
        let mut buf = PageBuf::zeroed();
        pager.read_page(ids[1], &mut buf).unwrap();
        assert_eq!(buf.next_page(), 7001);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn allocate_returns_id_to_free_list_on_eviction_failure() {
        let (pool, path) = pool("allocfail", 8);
        assert_eq!(pool.shard_count(), 1, "cap 8 = one shard");
        // Fill the shard with dirty, unpinned pages.
        let mut ids = Vec::new();
        for _ in 0..8u32 {
            let (id, p) = pool.allocate().unwrap();
            p.buf.write().init(PageType::Leaf);
            p.mark_dirty();
            ids.push(id);
        }
        // Seed the free list so the failing allocate below pops it instead
        // of extending the file (extending writes a page, which would eat
        // the injected failure before eviction even runs).
        let (scratch, p) = pool.allocate().unwrap();
        drop(p);
        pool.free(scratch).unwrap();
        // Refill the shard to capacity so the next allocate must evict.
        drop(pool.fetch(ids[0]).unwrap());
        let pages_before = pool.page_count();

        pool.inject_write_failures(1);
        let err = match pool.allocate() {
            Err(e) => e,
            Ok(_) => panic!("allocate must fail on dirty write-back error"),
        };
        assert!(err.to_string().contains("injected"), "{err}");
        // Regression: the pager had already handed out `scratch`; the failed
        // allocate must return it to the free list instead of leaking it.
        assert_eq!(pool.free_head(), scratch);
        assert_eq!(pool.page_count(), pages_before, "file must not grow");
        // With the failure cleared, the next allocate reuses the freed id.
        let (id, _p) = pool.allocate().unwrap();
        assert_eq!(id, scratch);
        assert_eq!(pool.page_count(), pages_before);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_fetches_share_one_image() {
        let (pool, path) = pool("concurrent", 64);
        let (id, page) = pool.allocate().unwrap();
        page.buf.write().init(PageType::Leaf);
        page.mark_dirty();
        drop(page);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let first = pool.fetch(id).unwrap();
                    for _ in 0..100 {
                        let again = pool.fetch(id).unwrap();
                        assert!(Arc::ptr_eq(&first, &again));
                    }
                });
            }
        });
        let (hits, misses) = pool.cache_counters();
        assert_eq!(hits + misses, 8 * 101, "every fetch is a hit or a miss");
        std::fs::remove_file(&path).ok();
    }
}
