//! Fixed-size page buffer and the common page header.
//!
//! Every page in the store file is [`PAGE_SIZE`] bytes. The first
//! [`HEADER_LEN`] bytes form a common header:
//!
//! ```text
//! offset  size  field
//! 0       1     page type (PageType)
//! 1       1     reserved
//! 2       2     cell count (u16, little-endian)
//! 4       2     cell content start offset (u16) — cells grow downward
//! 6       2     reserved
//! 8       4     next page id (leaf chain / free-list chain)
//! 12      4     rightmost child page id (internal nodes only)
//! ```
//!
//! After the header comes the slot array (one u16 cell offset per cell,
//! growing upward); cell bodies grow downward from the end of the page.

use crate::error::{Result, StorageError};

/// Size of every page, in bytes.
pub const PAGE_SIZE: usize = 8192;
/// Bytes reserved for the common page header.
pub const HEADER_LEN: usize = 16;

/// Identifier of a page within the store file (`offset = id * PAGE_SIZE`).
pub type PageId = u32;

/// Sentinel meaning "no page" (page 0 is the meta page, never a link target).
pub const NO_PAGE: PageId = 0;

/// Discriminates the role of a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PageType {
    /// Page 0: store metadata and table catalog.
    Meta = 0,
    /// B+tree leaf holding (key, value) cells.
    Leaf = 1,
    /// B+tree internal node holding (separator key, child) cells.
    Internal = 2,
    /// Page on the free list.
    Free = 3,
}

impl PageType {
    fn from_u8(v: u8) -> Result<Self> {
        match v {
            0 => Ok(PageType::Meta),
            1 => Ok(PageType::Leaf),
            2 => Ok(PageType::Internal),
            3 => Ok(PageType::Free),
            other => Err(StorageError::Corrupt(format!("invalid page type {other}"))),
        }
    }
}

/// An in-memory page image.
pub struct PageBuf {
    data: Box<[u8; PAGE_SIZE]>,
}

impl PageBuf {
    /// A zeroed page (type `Meta`, zero cells).
    pub fn zeroed() -> Self {
        PageBuf {
            data: vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap(),
        }
    }

    /// Initialises the header for a fresh page of the given type with no
    /// cells; cell content starts at the end of the page.
    pub fn init(&mut self, ty: PageType) {
        self.data.fill(0);
        self.data[0] = ty as u8;
        self.set_cell_count(0);
        self.set_content_start(PAGE_SIZE as u16);
    }

    /// Raw bytes of the page.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Mutable raw bytes of the page.
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }

    /// The page type recorded in the header.
    pub fn page_type(&self) -> Result<PageType> {
        PageType::from_u8(self.data[0])
    }

    fn read_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.data[off], self.data[off + 1]])
    }

    fn write_u16(&mut self, off: usize, v: u16) {
        self.data[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    fn read_u32(&self, off: usize) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.data[off..off + 4]);
        u32::from_le_bytes(b)
    }

    fn write_u32(&mut self, off: usize, v: u32) {
        self.data[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Number of cells on this page.
    pub fn cell_count(&self) -> usize {
        self.read_u16(2) as usize
    }

    pub(crate) fn set_cell_count(&mut self, n: u16) {
        self.write_u16(2, n);
    }

    /// Offset where cell content begins (cells occupy `content_start..PAGE_SIZE`).
    pub fn content_start(&self) -> usize {
        self.read_u16(4) as usize
    }

    pub(crate) fn set_content_start(&mut self, off: u16) {
        self.write_u16(4, off);
    }

    /// Next-page link: the right sibling for leaves, the next free page for
    /// free-list pages. [`NO_PAGE`] when absent.
    pub fn next_page(&self) -> PageId {
        self.read_u32(8)
    }

    pub fn set_next_page(&mut self, id: PageId) {
        self.write_u32(8, id);
    }

    /// Rightmost child of an internal node.
    pub fn right_child(&self) -> PageId {
        self.read_u32(12)
    }

    pub fn set_right_child(&mut self, id: PageId) {
        self.write_u32(12, id);
    }

    /// Offset of the `i`-th cell body (from the slot array).
    pub fn slot(&self, i: usize) -> usize {
        debug_assert!(i < self.cell_count());
        self.read_u16(HEADER_LEN + 2 * i) as usize
    }

    pub(crate) fn set_slot(&mut self, i: usize, off: u16) {
        self.write_u16(HEADER_LEN + 2 * i, off);
    }

    /// Free bytes between the slot array and the cell content area.
    pub fn free_space(&self) -> usize {
        let slots_end = HEADER_LEN + 2 * self.cell_count();
        self.content_start().saturating_sub(slots_end)
    }

    /// Appends a raw cell body and inserts its slot at position `i`,
    /// shifting later slots. The caller must have checked
    /// `free_space() >= cell.len() + 2`.
    pub(crate) fn insert_cell(&mut self, i: usize, cell: &[u8]) {
        let n = self.cell_count();
        debug_assert!(i <= n);
        debug_assert!(self.free_space() >= cell.len() + 2);
        let new_start = self.content_start() - cell.len();
        self.data[new_start..new_start + cell.len()].copy_from_slice(cell);
        // Shift slots [i..n) up by one position.
        for j in (i..n).rev() {
            let v = self.read_u16(HEADER_LEN + 2 * j);
            self.write_u16(HEADER_LEN + 2 * (j + 1), v);
        }
        self.set_slot(i, new_start as u16);
        self.set_cell_count((n + 1) as u16);
        self.set_content_start(new_start as u16);
    }

    /// Removes the slot at position `i`. The cell body becomes dead space
    /// until the page is next compacted (on split).
    pub(crate) fn remove_slot(&mut self, i: usize) {
        let n = self.cell_count();
        debug_assert!(i < n);
        for j in i + 1..n {
            let v = self.read_u16(HEADER_LEN + 2 * j);
            self.write_u16(HEADER_LEN + 2 * (j - 1), v);
        }
        self.set_cell_count((n - 1) as u16);
    }

    /// Bytes of the `i`-th cell, given its encoded length `len`.
    #[cfg(test)]
    pub(crate) fn cell_bytes(&self, i: usize, len: usize) -> &[u8] {
        let off = self.slot(i);
        &self.data[off..off + len]
    }
}

impl Clone for PageBuf {
    fn clone(&self) -> Self {
        PageBuf {
            data: self.data.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_sets_header_fields() {
        let mut p = PageBuf::zeroed();
        p.init(PageType::Leaf);
        assert_eq!(p.page_type().unwrap(), PageType::Leaf);
        assert_eq!(p.cell_count(), 0);
        assert_eq!(p.content_start(), PAGE_SIZE);
        assert_eq!(p.next_page(), NO_PAGE);
        assert_eq!(p.free_space(), PAGE_SIZE - HEADER_LEN);
    }

    #[test]
    fn insert_and_remove_cells_maintains_slots() {
        let mut p = PageBuf::zeroed();
        p.init(PageType::Leaf);
        p.insert_cell(0, b"bb");
        p.insert_cell(0, b"aaa");
        p.insert_cell(2, b"c");
        assert_eq!(p.cell_count(), 3);
        assert_eq!(p.cell_bytes(0, 3), b"aaa");
        assert_eq!(p.cell_bytes(1, 2), b"bb");
        assert_eq!(p.cell_bytes(2, 1), b"c");
        p.remove_slot(1);
        assert_eq!(p.cell_count(), 2);
        assert_eq!(p.cell_bytes(0, 3), b"aaa");
        assert_eq!(p.cell_bytes(1, 1), b"c");
    }

    #[test]
    fn free_space_shrinks_by_cell_plus_slot() {
        let mut p = PageBuf::zeroed();
        p.init(PageType::Leaf);
        let before = p.free_space();
        p.insert_cell(0, b"hello");
        assert_eq!(p.free_space(), before - 5 - 2);
    }

    #[test]
    fn next_and_right_child_links_round_trip() {
        let mut p = PageBuf::zeroed();
        p.init(PageType::Internal);
        p.set_next_page(42);
        p.set_right_child(77);
        assert_eq!(p.next_page(), 42);
        assert_eq!(p.right_child(), 77);
    }

    #[test]
    fn invalid_page_type_is_rejected() {
        let mut p = PageBuf::zeroed();
        p.bytes_mut()[0] = 9;
        assert!(p.page_type().is_err());
    }
}
