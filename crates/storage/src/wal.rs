//! Write-ahead log: crash safety for the store file.
//!
//! The paper's TReX stores its four tables in a BerkeleyDB *environment*,
//! which silently supplies write-ahead logging and recovery — durability
//! the self-managing advisor depends on when it materialises and drops
//! ERPL indexes online (§5). This module is our substitute.
//!
//! # Protocol (physical redo, atomic checkpoints)
//!
//! With a WAL attached, the pager **never writes data pages in place
//! between checkpoints**. Every logical page write (an eviction write-back,
//! a flush write-back, a free-list link) is an append of the full page
//! image to the log; page reads consult the log's in-memory page table
//! first, so the latest image is always served. The data file therefore
//! stays byte-identical to the last completed checkpoint at all times.
//!
//! A checkpoint ([`crate::pager::Pager::checkpoint`]) then runs:
//!
//! 1. append a `Commit` record sealing the image set, **fsync the WAL**;
//! 2. write every logged image in place into the data file (write-back);
//! 3. **fsync the data file** (`sync_all` when the file grew);
//! 4. truncate the log and stamp a fresh `Checkpoint` record.
//!
//! Recovery at open scans the log, validating each record's CRC:
//!
//! * log ends with a valid `Commit` → the image set is complete; replay
//!   every image onto the data file (roll *forward* to the new checkpoint —
//!   this also repairs torn data pages from a crash during step 2), fsync,
//!   truncate the log. Replay is idempotent, so a crash during recovery
//!   just replays again on the next open.
//! * anything else (torn tail, images without a commit) → discard the log;
//!   the data file *is* the previous checkpoint, untouched (roll *back*).
//!
//! Either way the store reopens in exactly one checkpointed state, and the
//! meta page (catalog roots, free-list head) flips atomically with the data
//! pages it points at, because it is just another logged image.
//!
//! # Record format
//!
//! The file starts with a 16-byte header (`TREXWAL0`, version, padding).
//! Each record is `[len: u32][crc32: u32][kind: u8][lsn: u64][payload]`,
//! with the CRC covering kind + lsn + payload. Kinds: `Image` (page id +
//! full page image), `Alloc` (page id only — a freshly allocated, still
//! zeroed page; logged without its 8 KiB of zeroes), `Commit`, and
//! `Checkpoint` (stamped on a freshly truncated log).
//!
//! # Crash-point injection
//!
//! [`CrashPoint`] + [`CrashState`] extend the pager's `inject_write_failures`
//! pattern into a deterministic kill switch: the *n*-th occurrence of a
//! chosen write/fsync boundary tears (half-writes) that operation and fails,
//! after which every subsequent file operation errors — simulating a killed
//! process so tests can reopen and assert the recovered state.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use trex_obs::StorageCounters;

use crate::error::{Result, StorageError};
use crate::page::{PageBuf, PageId, PAGE_SIZE};

/// Magic bytes opening every WAL file.
const WAL_MAGIC: &[u8; 8] = b"TREXWAL0";
/// WAL format version.
const WAL_VERSION: u16 = 1;
/// Bytes of header before the first record: magic + version + padding.
const WAL_HEADER_LEN: u64 = 16;
/// Fixed bytes per record before the payload: len + crc + kind + lsn.
const REC_HEADER_LEN: usize = 4 + 4 + 1 + 8;
/// Largest payload a *physical* record kind produces (an `Image`: page id +
/// image).
const MAX_PAYLOAD: usize = 4 + PAGE_SIZE;
/// Largest XML body an `Ingest` record accepts. Generous over the HTTP
/// surface's body cap so the storage layer is never the binding limit.
pub const MAX_INGEST_XML: usize = 1 << 20;
/// Largest `Ingest` payload: doc id + XML body.
const MAX_INGEST_PAYLOAD: usize = 4 + MAX_INGEST_XML;
/// Upper bound across every record kind (sizes the scan buffer).
const MAX_ANY_PAYLOAD: usize = if MAX_INGEST_PAYLOAD > MAX_PAYLOAD {
    MAX_INGEST_PAYLOAD
} else {
    MAX_PAYLOAD
};

const KIND_IMAGE: u8 = 1;
const KIND_ALLOC: u8 = 2;
const KIND_COMMIT: u8 = 3;
const KIND_CHECKPOINT: u8 = 4;
/// Logical redo: one ingested document (`[doc_id: u32][xml bytes]`).
/// Individually fsynced, so it is durable without a sealing `Commit`;
/// recovery surfaces it to the index layer for replay into the delta index.
const KIND_INGEST: u8 = 5;

/// The deterministic crash boundaries a test can kill the store at. Each
/// names one write or fsync in the logging/checkpoint protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// During a WAL record append (the record is torn mid-write).
    WalAppend,
    /// At the WAL fsync that makes the commit record durable.
    WalSync,
    /// During the append of the `Commit` record itself (torn commit).
    CheckpointRecord,
    /// During an in-place data-page write of checkpoint write-back or
    /// recovery replay (the data page is torn mid-write).
    DataWrite,
    /// At the data-file fsync.
    DataSync,
    /// Just before the post-checkpoint log truncation.
    WalTruncate,
    /// During the append of an `Ingest` record (the record is torn
    /// mid-write; the document is absent after recovery).
    IngestAppend,
    /// At the per-ingest WAL fsync (the record is complete on disk; the
    /// document is present after recovery).
    IngestSync,
}

/// What a crash check tells the caller to do.
pub(crate) enum CrashCheck {
    /// Not the armed boundary: proceed normally.
    Proceed,
    /// The armed boundary fired: tear the operation (write a prefix if it
    /// is a write, nothing if it is an fsync) and fail. All later checks
    /// error immediately.
    Tear,
}

/// Shared kill switch threaded through the pager and the WAL.
#[derive(Debug, Default)]
pub(crate) struct CrashState {
    /// Armed boundary and its remaining countdown.
    armed: Option<(CrashPoint, u32)>,
    /// Once true, every file operation fails (the process is "dead").
    crashed: bool,
}

fn crash_err() -> StorageError {
    StorageError::Io(std::io::Error::other("injected crash: store is dead"))
}

impl CrashState {
    /// Arms the kill switch: the `nth` occurrence of `point` crashes.
    pub(crate) fn arm(&mut self, point: CrashPoint, nth: u32) {
        self.armed = Some((point, nth.max(1)));
        self.crashed = false;
    }

    /// Fails if a crash already fired.
    pub(crate) fn ensure_alive(&self) -> Result<()> {
        if self.crashed {
            return Err(crash_err());
        }
        Ok(())
    }

    /// Checks one boundary; see [`CrashCheck`].
    pub(crate) fn check(&mut self, point: CrashPoint) -> Result<CrashCheck> {
        self.ensure_alive()?;
        if let Some((armed, n)) = &mut self.armed {
            if *armed == point {
                *n -= 1;
                if *n == 0 {
                    self.armed = None;
                    self.crashed = true;
                    return Ok(CrashCheck::Tear);
                }
            }
        }
        Ok(CrashCheck::Proceed)
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Where the latest un-checkpointed version of a page lives.
#[derive(Debug, Clone, Copy)]
enum Slot {
    /// Byte offset of the page image inside the WAL file.
    Image(u64),
    /// Freshly allocated and never written: an all-zero page.
    Zeroed,
}

/// One logged-but-not-yet-folded ingested document. Ingest records are
/// individually fsynced, so each is durable the moment `append_ingest`
/// returns; they stay in the log (surviving checkpoint truncations) until a
/// fold consumes them via the `Commit` record's doc-id watermark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingIngest {
    /// The document id the index layer assigned before logging.
    pub doc_id: u32,
    /// The raw XML bytes of the document.
    pub xml: Vec<u8>,
}

/// Outcome of scanning the log at open time.
pub(crate) struct WalScan {
    /// Whether a valid `Commit` seals the image set (roll forward).
    pub(crate) replay: bool,
    /// Bytes of log examined (including any invalid tail).
    pub(crate) bytes_scanned: u64,
    /// Valid image/alloc records that will be discarded (roll back only).
    pub(crate) discarded_records: u32,
}

/// Report of what recovery did when a store was opened.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Pages written back into the data file by replay.
    pub replayed_pages: u32,
    /// Bytes of WAL scanned at open.
    pub wal_bytes_scanned: u64,
    /// Logged-but-uncommitted records discarded (roll back).
    pub discarded_records: u32,
    /// True when recovery rolled *forward* (completed an interrupted
    /// checkpoint); false when it rolled back to the previous one.
    pub completed_checkpoint: bool,
}

/// The append-only log and its in-memory page table.
pub(crate) struct Wal {
    file: File,
    /// The log's own path — needed to rebuild the file atomically when a
    /// truncation must carry pending ingest records forward.
    path: PathBuf,
    /// page id → latest logged version since the last checkpoint.
    map: HashMap<PageId, Slot>,
    /// Logged ingested documents not yet consumed by a fold, in log order.
    pending: Vec<PendingIngest>,
    /// Next log sequence number to stamp.
    next_lsn: u64,
    /// Current append offset (end of the last valid record).
    end: u64,
}

/// The WAL file path for a given store file path (`store.db` → `store.db.wal`).
pub fn wal_path(store_path: &Path) -> PathBuf {
    let mut name = store_path.as_os_str().to_os_string();
    name.push(".wal");
    PathBuf::from(name)
}

impl Wal {
    /// Creates a fresh (truncated) log with a header and checkpoint stamp.
    pub(crate) fn create(path: &Path) -> Result<Wal> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut wal = Wal {
            file,
            path: path.to_path_buf(),
            map: HashMap::new(),
            pending: Vec::new(),
            next_lsn: 1,
            end: WAL_HEADER_LEN,
        };
        wal.write_header()?;
        let mut crash = CrashState::default();
        wal.append(KIND_CHECKPOINT, &[], &mut crash)?;
        wal.file.sync_all()?;
        Ok(wal)
    }

    /// Opens an existing log (creating a fresh one if absent, so pre-WAL
    /// store files upgrade transparently) and scans it. After `open` the
    /// page table holds the committed image set iff `scan.replay`; the
    /// caller replays it and then calls [`Wal::reset`].
    pub(crate) fn open(path: &Path) -> Result<(Wal, WalScan)> {
        if !path.exists() {
            let wal = Wal::create(path)?;
            return Ok((
                wal,
                WalScan {
                    replay: false,
                    bytes_scanned: 0,
                    discarded_records: 0,
                },
            ));
        }
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut wal = Wal {
            file,
            path: path.to_path_buf(),
            map: HashMap::new(),
            pending: Vec::new(),
            next_lsn: 1,
            end: WAL_HEADER_LEN,
        };
        let scan = wal.scan()?;
        Ok((wal, scan))
    }

    fn write_header(&mut self) -> Result<()> {
        let mut header = [0u8; WAL_HEADER_LEN as usize];
        header[..8].copy_from_slice(WAL_MAGIC);
        header[8..10].copy_from_slice(&WAL_VERSION.to_le_bytes());
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&header)?;
        Ok(())
    }

    /// Validates the header and every record; leaves `map` holding the
    /// committed image set when the log ends with a valid `Commit`.
    fn scan(&mut self) -> Result<WalScan> {
        let len = self.file.metadata()?.len();
        if len < WAL_HEADER_LEN {
            return Err(StorageError::Corrupt("wal shorter than its header".into()));
        }
        let mut header = [0u8; WAL_HEADER_LEN as usize];
        self.file.seek(SeekFrom::Start(0))?;
        self.file.read_exact(&mut header)?;
        if &header[..8] != WAL_MAGIC {
            return Err(StorageError::Corrupt("bad wal magic".into()));
        }
        let version = u16::from_le_bytes([header[8], header[9]]);
        if version != WAL_VERSION {
            return Err(StorageError::Corrupt(format!(
                "unsupported wal version {version}"
            )));
        }

        let mut offset = WAL_HEADER_LEN;
        let mut map: HashMap<PageId, Slot> = HashMap::new();
        let mut pending: Vec<PendingIngest> = Vec::new();
        let mut ingest_watermark = 0u64;
        let mut last_kind = 0u8;
        let mut max_lsn = 0u64;
        let mut rec_header = [0u8; REC_HEADER_LEN];
        let mut body = vec![0u8; 1 + 8 + MAX_ANY_PAYLOAD];
        loop {
            if offset + REC_HEADER_LEN as u64 > len {
                break;
            }
            self.file.seek(SeekFrom::Start(offset))?;
            self.file.read_exact(&mut rec_header)?;
            let rec_len = u32::from_le_bytes(rec_header[..4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(rec_header[4..8].try_into().unwrap());
            // rec_len counts kind + lsn + payload.
            if !(1 + 8..=1 + 8 + MAX_ANY_PAYLOAD).contains(&rec_len) {
                break;
            }
            if offset + (8 + rec_len) as u64 > len {
                break; // torn tail record
            }
            let body = &mut body[..rec_len];
            self.file.seek(SeekFrom::Start(offset + 8))?;
            self.file.read_exact(body)?;
            if crc32(body) != crc {
                break; // bit flip or torn write
            }
            let kind = body[0];
            let lsn = u64::from_le_bytes(body[1..9].try_into().unwrap());
            let payload = &body[9..];
            match kind {
                KIND_IMAGE if payload.len() == 4 + PAGE_SIZE => {
                    let id = u32::from_le_bytes(payload[..4].try_into().unwrap());
                    map.insert(id, Slot::Image(offset + 8 + 1 + 8 + 4));
                }
                KIND_ALLOC if payload.len() == 4 => {
                    let id = u32::from_le_bytes(payload[..4].try_into().unwrap());
                    map.insert(id, Slot::Zeroed);
                }
                KIND_INGEST if (4..=MAX_INGEST_PAYLOAD).contains(&payload.len()) => {
                    pending.push(PendingIngest {
                        doc_id: u32::from_le_bytes(payload[..4].try_into().unwrap()),
                        xml: payload[4..].to_vec(),
                    });
                }
                // A fold's commit carries the doc-id watermark of the
                // ingests it folded into the tables; legacy commits are
                // payload-free (watermark zero).
                KIND_COMMIT if payload.is_empty() => {}
                KIND_COMMIT if payload.len() == 8 => {
                    ingest_watermark = u64::from_le_bytes(payload.try_into().unwrap());
                }
                KIND_CHECKPOINT => {}
                _ => break, // unknown kind or malformed payload
            }
            last_kind = kind;
            max_lsn = max_lsn.max(lsn);
            offset += (8 + rec_len) as u64;
        }

        let replay = last_kind == KIND_COMMIT && !map.is_empty();
        let discarded = if replay { 0 } else { map.len() as u32 };
        if replay {
            self.map = map;
            // Rolling forward applies the commit, so any ingests the fold
            // consumed (doc id below the watermark) are already in the
            // tables — dropping them here prevents double application.
            if ingest_watermark > 0 {
                pending.retain(|p| u64::from(p.doc_id) >= ingest_watermark);
            }
        }
        // Ingest records are individually durable: they survive a roll
        // *back* too (the fold that would have consumed them never
        // committed).
        self.pending = pending;
        self.next_lsn = max_lsn + 1;
        self.end = offset;
        Ok(WalScan {
            replay,
            bytes_scanned: len,
            discarded_records: discarded,
        })
    }

    /// Appends one record; on an armed [`CrashPoint`] the record is torn
    /// (half-written) and the error returned.
    fn append_at(
        &mut self,
        kind: u8,
        point: CrashPoint,
        payload_head: &[u8],
        payload_tail: &[u8],
        crash: &mut CrashState,
    ) -> Result<u64> {
        let lsn = self.next_lsn;
        let rec_len = 1 + 8 + payload_head.len() + payload_tail.len();
        let mut record = Vec::with_capacity(8 + rec_len);
        record.extend_from_slice(&(rec_len as u32).to_le_bytes());
        record.extend_from_slice(&[0u8; 4]); // crc placeholder
        record.push(kind);
        record.extend_from_slice(&lsn.to_le_bytes());
        record.extend_from_slice(payload_head);
        record.extend_from_slice(payload_tail);
        let crc = crc32(&record[8..]);
        record[4..8].copy_from_slice(&crc.to_le_bytes());

        let tear = matches!(crash.check(point)?, CrashCheck::Tear);
        self.file.seek(SeekFrom::Start(self.end))?;
        if tear {
            self.file.write_all(&record[..record.len() / 2])?;
            return Err(crash_err());
        }
        self.file.write_all(&record)?;
        let start = self.end;
        self.end += record.len() as u64;
        self.next_lsn += 1;
        Ok(start)
    }

    fn append(&mut self, kind: u8, payload: &[u8], crash: &mut CrashState) -> Result<u64> {
        // Each record kind bills its own crash point: a `Checkpoint` stamp
        // is part of the truncation step (post-commit, lands on the new
        // checkpoint), so it must not consume a `WalAppend` occurrence —
        // those are strictly pre-commit and recovery rolls them back.
        let point = match kind {
            KIND_COMMIT => CrashPoint::CheckpointRecord,
            KIND_CHECKPOINT => CrashPoint::WalTruncate,
            _ => CrashPoint::WalAppend,
        };
        self.append_at(kind, point, payload, &[], crash)
    }

    /// Logs the full after-image of page `id` and repoints the page table.
    pub(crate) fn append_image(
        &mut self,
        id: PageId,
        buf: &PageBuf,
        crash: &mut CrashState,
        obs: &Arc<StorageCounters>,
    ) -> Result<()> {
        let start = self.append_at(
            KIND_IMAGE,
            CrashPoint::WalAppend,
            &id.to_le_bytes(),
            buf.bytes().as_slice(),
            crash,
        )?;
        // Image payload = 4 id bytes then the page; record the page offset.
        self.map.insert(id, Slot::Image(start + 8 + 1 + 8 + 4));
        obs.wal_appends.incr();
        obs.wal_bytes.add((8 + 1 + 8 + 4 + PAGE_SIZE) as u64);
        Ok(())
    }

    /// Logs the allocation of a fresh zeroed page without its 8 KiB body.
    pub(crate) fn append_alloc(
        &mut self,
        id: PageId,
        crash: &mut CrashState,
        obs: &Arc<StorageCounters>,
    ) -> Result<()> {
        self.append(KIND_ALLOC, &id.to_le_bytes(), crash)?;
        self.map.insert(id, Slot::Zeroed);
        obs.wal_appends.incr();
        obs.wal_bytes.add((8 + 1 + 8 + 4) as u64);
        Ok(())
    }

    /// Serves page `id` from the log if it has an un-checkpointed version.
    /// Returns whether the read was served.
    pub(crate) fn read_page(&mut self, id: PageId, buf: &mut PageBuf) -> Result<bool> {
        match self.map.get(&id) {
            None => Ok(false),
            Some(Slot::Zeroed) => {
                buf.bytes_mut().fill(0);
                Ok(true)
            }
            Some(&Slot::Image(offset)) => {
                self.file.seek(SeekFrom::Start(offset))?;
                self.file.read_exact(buf.bytes_mut().as_mut_slice())?;
                Ok(true)
            }
        }
    }

    /// Seals the image set with a `Commit` record and fsyncs the log.
    ///
    /// `ingest_watermark` is the fold consumption frontier: every pending
    /// ingest whose doc id is below it is folded into the page images this
    /// commit seals (zero when the checkpoint folds nothing). Recovery that
    /// rolls this commit forward drops those ingests; a roll back keeps
    /// them.
    pub(crate) fn commit(&mut self, crash: &mut CrashState, ingest_watermark: u64) -> Result<()> {
        self.append(KIND_COMMIT, &ingest_watermark.to_le_bytes(), crash)?;
        if matches!(crash.check(CrashPoint::WalSync)?, CrashCheck::Tear) {
            return Err(crash_err());
        }
        self.file.sync_data()?;
        Ok(())
    }

    /// Logs one ingested document and fsyncs it — each ingest record is
    /// individually durable, with no sealing `Commit` required.
    pub(crate) fn append_ingest(
        &mut self,
        doc_id: u32,
        xml: &[u8],
        crash: &mut CrashState,
        obs: &Arc<StorageCounters>,
    ) -> Result<()> {
        if xml.len() > MAX_INGEST_XML {
            return Err(StorageError::ValueTooLarge(xml.len()));
        }
        self.append_at(
            KIND_INGEST,
            CrashPoint::IngestAppend,
            &doc_id.to_le_bytes(),
            xml,
            crash,
        )?;
        if matches!(crash.check(CrashPoint::IngestSync)?, CrashCheck::Tear) {
            return Err(crash_err());
        }
        self.file.sync_data()?;
        self.pending.push(PendingIngest {
            doc_id,
            xml: xml.to_vec(),
        });
        obs.wal_appends.incr();
        obs.wal_bytes.add((8 + 1 + 8 + 4 + xml.len()) as u64);
        Ok(())
    }

    /// The logged ingests no fold has consumed yet, in log order.
    pub(crate) fn pending_ingests(&self) -> &[PendingIngest] {
        &self.pending
    }

    /// The logged page set, sorted by page id (deterministic write-back
    /// order, which the crash-matrix test relies on).
    pub(crate) fn entries(&self) -> Vec<PageId> {
        let mut ids: Vec<PageId> = self.map.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Reads the logged image of `id` into `buf` (zero pages included).
    pub(crate) fn load(&mut self, id: PageId, buf: &mut PageBuf) -> Result<()> {
        if !self.read_page(id, buf)? {
            return Err(StorageError::Corrupt(format!(
                "wal page table lost page {id}"
            )));
        }
        Ok(())
    }

    /// Truncates the log back to its header, durably, and stamps a fresh
    /// `Checkpoint` record. Clears the page table. Pending ingests with a
    /// doc id below `consumed_watermark` are dropped (the checkpoint that
    /// triggered this reset folded them); survivors are carried into the
    /// new log so acknowledged ingests stay durable across truncations.
    pub(crate) fn reset(&mut self, crash: &mut CrashState, consumed_watermark: u64) -> Result<()> {
        if consumed_watermark > 0 {
            self.pending
                .retain(|p| u64::from(p.doc_id) >= consumed_watermark);
        }
        if matches!(crash.check(CrashPoint::WalTruncate)?, CrashCheck::Tear) {
            return Err(crash_err());
        }
        if self.pending.is_empty() {
            self.file.set_len(WAL_HEADER_LEN)?;
            self.file.sync_data()?;
            self.map.clear();
            self.end = WAL_HEADER_LEN;
            self.append(KIND_CHECKPOINT, &[], crash)?;
            return Ok(());
        }
        // Pending ingests must survive the truncation. `set_len` then
        // re-append would open a window where a crash loses acknowledged
        // documents, so instead build the successor log beside the old one
        // and swap it in with an atomic rename: at every instant the path
        // holds either the old log (ingests intact, commit replayable) or
        // the complete new one.
        let mut name = self.path.as_os_str().to_os_string();
        name.push(".new");
        let tmp = PathBuf::from(name);
        let mut fresh = Wal::create(&tmp)?;
        for p in &self.pending {
            fresh.append_at(
                KIND_INGEST,
                CrashPoint::IngestAppend,
                &p.doc_id.to_le_bytes(),
                &p.xml,
                crash,
            )?;
        }
        fresh.file.sync_data()?;
        std::fs::rename(&tmp, &self.path)?;
        self.file = fresh.file;
        self.map.clear();
        self.end = fresh.end;
        self.next_lsn = fresh.next_lsn;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageType;

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("trex-wal-{name}-{}", std::process::id()))
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_scan_round_trips_committed_images() {
        let path = temp("roundtrip");
        let obs = Arc::new(StorageCounters::new());
        let mut crash = CrashState::default();
        {
            let mut wal = Wal::create(&path).unwrap();
            let mut page = PageBuf::zeroed();
            page.init(PageType::Leaf);
            page.set_next_page(777);
            wal.append_image(3, &page, &mut crash, &obs).unwrap();
            wal.append_alloc(9, &mut crash, &obs).unwrap();
            wal.commit(&mut crash, 0).unwrap();
        }
        let (mut wal, scan) = Wal::open(&path).unwrap();
        assert!(scan.replay, "commit must make the set replayable");
        assert_eq!(wal.entries(), vec![3, 9]);
        let mut back = PageBuf::zeroed();
        wal.load(3, &mut back).unwrap();
        assert_eq!(back.next_page(), 777);
        wal.load(9, &mut back).unwrap();
        assert!(back.bytes().iter().all(|&b| b == 0));
        assert_eq!(obs.wal_appends.get(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn uncommitted_records_are_discarded() {
        let path = temp("discard");
        let obs = Arc::new(StorageCounters::new());
        let mut crash = CrashState::default();
        {
            let mut wal = Wal::create(&path).unwrap();
            let page = PageBuf::zeroed();
            wal.append_image(1, &page, &mut crash, &obs).unwrap();
            // No commit: simulated crash.
        }
        let (wal, scan) = Wal::open(&path).unwrap();
        assert!(!scan.replay);
        assert_eq!(scan.discarded_records, 1);
        assert!(wal.entries().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_commit_record_is_discarded() {
        let path = temp("torn");
        let obs = Arc::new(StorageCounters::new());
        let mut crash = CrashState::default();
        {
            let mut wal = Wal::create(&path).unwrap();
            let page = PageBuf::zeroed();
            wal.append_image(1, &page, &mut crash, &obs).unwrap();
            crash.arm(CrashPoint::CheckpointRecord, 1);
            assert!(wal.commit(&mut crash, 0).is_err());
        }
        let (_, scan) = Wal::open(&path).unwrap();
        assert!(!scan.replay, "a torn commit must not seal the set");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_invalidates_the_tail() {
        let path = temp("flip");
        let obs = Arc::new(StorageCounters::new());
        let mut crash = CrashState::default();
        {
            let mut wal = Wal::create(&path).unwrap();
            let page = PageBuf::zeroed();
            wal.append_image(1, &page, &mut crash, &obs).unwrap();
            wal.append_image(2, &page, &mut crash, &obs).unwrap();
            wal.commit(&mut crash, 0).unwrap();
        }
        {
            // Flip one byte in the middle of the second image record.
            let mut f = OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .unwrap();
            let len = f.metadata().unwrap().len();
            f.seek(SeekFrom::Start(len - (PAGE_SIZE as u64 / 2) - 40))
                .unwrap();
            let mut b = [0u8; 1];
            f.read_exact(&mut b).unwrap();
            f.seek(SeekFrom::Start(len - (PAGE_SIZE as u64 / 2) - 40))
                .unwrap();
            f.write_all(&[b[0] ^ 0xFF]).unwrap();
        }
        let (_, scan) = Wal::open(&path).unwrap();
        assert!(
            !scan.replay,
            "a corrupt record severs the chain before the commit"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_clears_the_log() {
        let path = temp("reset");
        let obs = Arc::new(StorageCounters::new());
        let mut crash = CrashState::default();
        let mut wal = Wal::create(&path).unwrap();
        let page = PageBuf::zeroed();
        wal.append_image(5, &page, &mut crash, &obs).unwrap();
        wal.commit(&mut crash, 0).unwrap();
        wal.reset(&mut crash, 0).unwrap();
        assert!(wal.entries().is_empty());
        drop(wal);
        let (_, scan) = Wal::open(&path).unwrap();
        assert!(!scan.replay);
        assert_eq!(scan.discarded_records, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crash_state_kills_all_later_operations() {
        let mut crash = CrashState::default();
        crash.arm(CrashPoint::WalSync, 2);
        assert!(matches!(
            crash.check(CrashPoint::WalSync).unwrap(),
            CrashCheck::Proceed
        ));
        assert!(matches!(
            crash.check(CrashPoint::WalAppend).unwrap(),
            CrashCheck::Proceed
        ));
        assert!(matches!(
            crash.check(CrashPoint::WalSync).unwrap(),
            CrashCheck::Tear
        ));
        assert!(crash.check(CrashPoint::WalAppend).is_err());
        assert!(crash.ensure_alive().is_err());
    }

    #[test]
    fn ingest_records_survive_rollback_and_truncation() {
        let path = temp("ingest");
        let obs = Arc::new(StorageCounters::new());
        let mut crash = CrashState::default();
        {
            let mut wal = Wal::create(&path).unwrap();
            wal.append_ingest(7, b"<a>x</a>", &mut crash, &obs).unwrap();
            let page = PageBuf::zeroed();
            wal.append_image(1, &page, &mut crash, &obs).unwrap();
            // No commit: the image rolls back; the ingest must not.
        }
        let (mut wal, scan) = Wal::open(&path).unwrap();
        assert!(!scan.replay);
        assert_eq!(
            wal.pending_ingests(),
            &[PendingIngest {
                doc_id: 7,
                xml: b"<a>x</a>".to_vec(),
            }]
        );
        // A truncation that consumes nothing must carry the ingest into the
        // successor log.
        wal.reset(&mut crash, 0).unwrap();
        drop(wal);
        let (wal, scan) = Wal::open(&path).unwrap();
        assert!(!scan.replay);
        assert_eq!(wal.pending_ingests().len(), 1);
        assert_eq!(wal.pending_ingests()[0].doc_id, 7);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn commit_watermark_consumes_folded_ingests_on_replay() {
        let path = temp("watermark");
        let obs = Arc::new(StorageCounters::new());
        let mut crash = CrashState::default();
        {
            let mut wal = Wal::create(&path).unwrap();
            wal.append_ingest(3, b"<a>3</a>", &mut crash, &obs).unwrap();
            wal.append_ingest(4, b"<a>4</a>", &mut crash, &obs).unwrap();
            let page = PageBuf::zeroed();
            wal.append_image(1, &page, &mut crash, &obs).unwrap();
            // The fold consumed doc 3 only (watermark 4); crash before the
            // truncation.
            wal.commit(&mut crash, 4).unwrap();
        }
        let (wal, scan) = Wal::open(&path).unwrap();
        assert!(scan.replay);
        let ids: Vec<u32> = wal.pending_ingests().iter().map(|p| p.doc_id).collect();
        assert_eq!(ids, vec![4], "replay drops ingests below the watermark");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_ingest_append_loses_only_that_document() {
        let path = temp("ingest-torn");
        let obs = Arc::new(StorageCounters::new());
        let mut crash = CrashState::default();
        {
            let mut wal = Wal::create(&path).unwrap();
            wal.append_ingest(1, b"<a>ok</a>", &mut crash, &obs)
                .unwrap();
            crash.arm(CrashPoint::IngestAppend, 1);
            assert!(wal
                .append_ingest(2, b"<a>lost</a>", &mut crash, &obs)
                .is_err());
        }
        let (wal, scan) = Wal::open(&path).unwrap();
        assert!(!scan.replay);
        let ids: Vec<u32> = wal.pending_ingests().iter().map(|p| p.doc_id).collect();
        assert_eq!(ids, vec![1]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_ingest_is_rejected() {
        let path = temp("ingest-big");
        let obs = Arc::new(StorageCounters::new());
        let mut crash = CrashState::default();
        let mut wal = Wal::create(&path).unwrap();
        let big = vec![b'x'; MAX_INGEST_XML + 1];
        assert!(matches!(
            wal.append_ingest(1, &big, &mut crash, &obs),
            Err(StorageError::ValueTooLarge(_))
        ));
        assert!(wal.pending_ingests().is_empty());
        drop(wal);
        std::fs::remove_file(&path).ok();
    }
}
