//! The pager: reads and writes fixed-size pages of a single store file and
//! manages page allocation with a free list.
//!
//! Page 0 is the meta page and is owned by [`crate::store::Store`]; the pager
//! only reserves it at file creation. Freed pages are chained through their
//! `next_page` header field; the head of the chain lives in the meta page and
//! is handed to the pager at open time.
//!
//! # Durability modes
//!
//! A pager opened through [`Pager::create`] / [`Pager::open`] writes pages
//! in place and is only as durable as the last [`Pager::sync`] — the
//! pre-WAL behaviour, kept for unit tests and throwaway stores.
//!
//! A pager opened through [`Pager::create_with_wal`] /
//! [`Pager::open_with_wal`] attaches a write-ahead log (see [`crate::wal`]):
//! page writes become log appends, reads consult the log's page table
//! first, and [`Pager::checkpoint`] atomically folds the logged images into
//! the data file. [`Pager::open_with_wal`] runs redo recovery before the
//! first read, so a store killed at *any* write or fsync boundary reopens
//! in exactly its last checkpointed state.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use trex_obs::{StorageCounters, StorageTimers};

use crate::error::{Result, StorageError};
use crate::page::{PageBuf, PageId, PageType, NO_PAGE, PAGE_SIZE};
use crate::wal::{CrashCheck, CrashPoint, CrashState, RecoveryReport, Wal};

/// Low-level page file access and allocation.
pub struct Pager {
    file: File,
    page_count: u32,
    /// Page count as of the last fsync that covered file metadata
    /// (`sync_all`). When `page_count` has grown past this, the next sync
    /// must be `sync_all`, not `sync_data`: a grown file whose new length
    /// is not yet durable can lose its tail pages on crash.
    synced_page_count: u32,
    free_head: PageId,
    /// Shared observability counters; page reads/writes land in
    /// `page_reads` / `page_writes`. The [`crate::buffer::BufferPool`]
    /// wrapping this pager shares the same group, so one snapshot covers
    /// the whole storage layer.
    obs: Arc<StorageCounters>,
    /// Shared I/O latency histograms (page read/write, fsync, WAL append,
    /// checkpoint), owned here and shared outward exactly like `obs`.
    timers: Arc<StorageTimers>,
    /// Failure injection: the next `inject_write_failures` calls to
    /// [`Pager::write_page`] fail with an I/O error before touching the
    /// file. Zero (the default) disables injection.
    inject_write_failures: u32,
    /// Crash injection shared with the WAL (see [`CrashPoint`]).
    crash: CrashState,
    /// The write-ahead log, when this store runs in durable mode.
    wal: Option<Wal>,
    /// What recovery did at open, when it had anything to do.
    recovery: Option<RecoveryReport>,
}

impl Pager {
    /// Creates a new store file (truncating any existing one) with an
    /// initialised meta page, synced to stable storage so a crash right
    /// after creation cannot leave a zero-length store behind.
    pub fn create(path: &Path) -> Result<Pager> {
        Self::create_inner(path, false)
    }

    /// Like [`Pager::create`], but also creates (truncating) the
    /// write-ahead log beside the store file.
    pub fn create_with_wal(path: &Path) -> Result<Pager> {
        Self::create_inner(path, true)
    }

    fn create_inner(path: &Path, with_wal: bool) -> Result<Pager> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let wal = if with_wal {
            Some(Wal::create(&crate::wal::wal_path(path))?)
        } else {
            None
        };
        let mut pager = Pager {
            file,
            page_count: 1,
            synced_page_count: 0,
            free_head: NO_PAGE,
            obs: Arc::new(StorageCounters::new()),
            timers: Arc::new(StorageTimers::new()),
            inject_write_failures: 0,
            crash: CrashState::default(),
            wal,
            recovery: None,
        };
        let mut meta = PageBuf::zeroed();
        meta.init(PageType::Meta);
        // The meta page goes straight to the data file even in WAL mode:
        // a store is born as its own first checkpoint.
        Self::write_data_page(
            &mut pager.file,
            &mut pager.crash,
            &mut pager.inject_write_failures,
            0,
            &meta,
        )?;
        pager.obs.page_writes.incr();
        pager.file.sync_all()?;
        pager.synced_page_count = 1;
        Ok(pager)
    }

    /// Opens an existing store file without a WAL. `free_head` is read from
    /// the meta page by the store and installed via [`Pager::set_free_head`].
    /// A file whose length is not a whole number of pages has a torn tail
    /// page (a crashed partial write) and is rejected as corrupt.
    pub fn open(path: &Path) -> Result<Pager> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        Self::check_tail(len)?;
        let page_count = ((len / PAGE_SIZE as u64) as u32).max(1);
        Ok(Pager {
            file,
            page_count,
            synced_page_count: page_count,
            free_head: NO_PAGE,
            obs: Arc::new(StorageCounters::new()),
            timers: Arc::new(StorageTimers::new()),
            inject_write_failures: 0,
            crash: CrashState::default(),
            wal: None,
            recovery: None,
        })
    }

    /// Opens an existing store file with its write-ahead log, running redo
    /// recovery first: a log sealed by a commit record is replayed into the
    /// data file (completing the interrupted checkpoint and repairing any
    /// torn data pages); anything else is discarded, leaving the data file
    /// as the previous checkpoint. `inject_crash` arms the crash switch
    /// *before* recovery runs, so tests can kill recovery itself.
    pub fn open_with_wal(path: &Path, inject_crash: Option<(CrashPoint, u32)>) -> Result<Pager> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut crash = CrashState::default();
        if let Some((point, nth)) = inject_crash {
            crash.arm(point, nth);
        }
        let obs = Arc::new(StorageCounters::new());
        let (mut wal, scan) = Wal::open(&crate::wal::wal_path(path))?;

        let mut pager = Pager {
            file,
            page_count: 0,
            synced_page_count: 0,
            free_head: NO_PAGE,
            obs,
            timers: Arc::new(StorageTimers::new()),
            inject_write_failures: 0,
            crash,
            wal: None,
            recovery: None,
        };

        let mut replayed = 0u32;
        if scan.replay {
            // Roll forward: write every committed image in place.
            let mut buf = PageBuf::zeroed();
            for id in wal.entries() {
                wal.load(id, &mut buf)?;
                Self::write_data_page(
                    &mut pager.file,
                    &mut pager.crash,
                    &mut pager.inject_write_failures,
                    id,
                    &buf,
                )?;
                replayed += 1;
            }
            // The replay may have grown the file; make length durable too.
            Self::sync_data_file(&mut pager.file, &mut pager.crash, true)?;
            pager.obs.recoveries_run.incr();
        }
        // Either way the log is now spent (roll forward applied, roll back
        // discarded); truncate it so appends start from a clean checkpoint.
        // Pending ingest records survive the reset: the scan already dropped
        // any the replayed commit consumed, and the rest are carried into
        // the fresh log (they are durable until a fold consumes them).
        wal.reset(&mut pager.crash, 0)?;

        let len = pager.file.metadata()?.len();
        Self::check_tail(len)?;
        pager.page_count = ((len / PAGE_SIZE as u64) as u32).max(1);
        pager.synced_page_count = pager.page_count;
        if scan.replay || scan.discarded_records > 0 {
            pager.recovery = Some(RecoveryReport {
                replayed_pages: replayed,
                wal_bytes_scanned: scan.bytes_scanned,
                discarded_records: scan.discarded_records,
                completed_checkpoint: scan.replay,
            });
        }
        pager.wal = Some(wal);
        Ok(pager)
    }

    fn check_tail(len: u64) -> Result<()> {
        if !len.is_multiple_of(PAGE_SIZE as u64) {
            return Err(StorageError::Corrupt(format!(
                "torn tail page: file length {len} is not a multiple of the \
                 {PAGE_SIZE}-byte page size (crashed partial write)"
            )));
        }
        Ok(())
    }

    /// Number of pages in the file (including the meta page and free pages).
    pub fn page_count(&self) -> u32 {
        self.page_count
    }

    /// Head of the free-page chain.
    pub fn free_head(&self) -> PageId {
        self.free_head
    }

    /// Installs the free-list head (read from the meta page at open).
    pub fn set_free_head(&mut self, head: PageId) {
        self.free_head = head;
    }

    /// Whether this pager runs with a write-ahead log.
    pub fn wal_enabled(&self) -> bool {
        self.wal.is_some()
    }

    /// What recovery did when this pager was opened (None after a clean
    /// shutdown, or for WAL-less pagers).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Reads page `id` into `buf`: from the WAL page table when the page
    /// has an un-checkpointed version, from the data file otherwise.
    pub fn read_page(&mut self, id: PageId, buf: &mut PageBuf) -> Result<()> {
        self.crash.ensure_alive()?;
        let sw = self.timers.start();
        if let Some(wal) = &mut self.wal {
            if wal.read_page(id, buf)? {
                self.obs.page_reads.incr();
                self.timers.page_read.observe(&sw);
                return Ok(());
            }
        }
        self.file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        self.file.read_exact(buf.bytes_mut().as_mut_slice())?;
        self.obs.page_reads.incr();
        self.timers.page_read.observe(&sw);
        Ok(())
    }

    /// Arms failure injection: the next `n` [`Pager::write_page`] calls
    /// fail with an I/O error without touching the file. Used by tests to
    /// exercise the buffer pool's dirty write-back error paths.
    pub fn inject_write_failures(&mut self, n: u32) {
        self.inject_write_failures = n;
    }

    /// Arms crash injection: the `nth` occurrence of `point` tears that
    /// operation and kills the pager — every later file operation fails,
    /// simulating a killed process. Reopen the store to recover.
    pub fn inject_crash(&mut self, point: CrashPoint, nth: u32) {
        self.crash.arm(point, nth);
    }

    /// Writes `buf` to page `id`: an append to the WAL in durable mode, an
    /// in-place data write otherwise (log-before-data — with a WAL attached
    /// the data file is only touched by [`Pager::checkpoint`] and recovery).
    pub fn write_page(&mut self, id: PageId, buf: &PageBuf) -> Result<()> {
        if self.inject_write_failures > 0 {
            self.inject_write_failures -= 1;
            return Err(std::io::Error::other("injected write failure").into());
        }
        self.crash.ensure_alive()?;
        let sw = self.timers.start();
        match &mut self.wal {
            Some(wal) => {
                wal.append_image(id, buf, &mut self.crash, &self.obs)?;
                self.timers.wal_append.observe(&sw);
            }
            None => Self::write_data_page(
                &mut self.file,
                &mut self.crash,
                &mut self.inject_write_failures,
                id,
                buf,
            )?,
        }
        self.obs.page_writes.incr();
        self.timers.page_write.observe(&sw);
        Ok(())
    }

    /// In-place data-file page write with crash-point tearing. Not counted
    /// in `page_writes` when called from checkpoint/recovery write-back
    /// (those pages were already counted when logged).
    fn write_data_page(
        file: &mut File,
        crash: &mut CrashState,
        inject_write_failures: &mut u32,
        id: PageId,
        buf: &PageBuf,
    ) -> Result<()> {
        if *inject_write_failures > 0 {
            *inject_write_failures -= 1;
            return Err(std::io::Error::other("injected write failure").into());
        }
        let tear = matches!(crash.check(CrashPoint::DataWrite)?, CrashCheck::Tear);
        file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        if tear {
            file.write_all(&buf.bytes()[..PAGE_SIZE / 2])?;
            return Err(std::io::Error::other("injected crash: torn data page").into());
        }
        file.write_all(buf.bytes().as_slice())?;
        Ok(())
    }

    /// Data-file fsync with crash-point injection; `sync_all` when `grew`
    /// (file length changed since the last full sync), `sync_data`
    /// otherwise.
    fn sync_data_file(file: &mut File, crash: &mut CrashState, grew: bool) -> Result<()> {
        if matches!(crash.check(CrashPoint::DataSync)?, CrashCheck::Tear) {
            return Err(std::io::Error::other("injected crash: at data fsync").into());
        }
        if grew {
            file.sync_all()?;
        } else {
            file.sync_data()?;
        }
        Ok(())
    }

    /// Allocates a page: pops the free list if possible, otherwise extends
    /// the file. The returned page's contents are unspecified; callers must
    /// `init` it.
    pub fn allocate(&mut self) -> Result<PageId> {
        self.crash.ensure_alive()?;
        if self.free_head != NO_PAGE {
            let id = self.free_head;
            let mut buf = PageBuf::zeroed();
            self.read_page(id, &mut buf)?;
            self.free_head = buf.next_page();
            return Ok(id);
        }
        let id = self.page_count;
        match &mut self.wal {
            // In durable mode a fresh page is a 17-byte `Alloc` record; the
            // data file grows only when the image set is checkpointed.
            Some(wal) => {
                let sw = self.timers.start();
                wal.append_alloc(id, &mut self.crash, &self.obs)?;
                self.timers.wal_append.observe(&sw);
            }
            // In-place mode: extend the file so subsequent reads succeed.
            None => {
                let buf = PageBuf::zeroed();
                self.write_page(id, &buf)?;
            }
        }
        self.page_count += 1;
        Ok(id)
    }

    /// Returns page `id` to the free list.
    pub fn free(&mut self, id: PageId) -> Result<()> {
        debug_assert_ne!(id, 0, "cannot free the meta page");
        let mut buf = PageBuf::zeroed();
        buf.init(PageType::Free);
        buf.set_next_page(self.free_head);
        self.write_page(id, &buf)?;
        self.free_head = id;
        Ok(())
    }

    /// Flushes OS buffers to stable storage. Uses `sync_all` whenever the
    /// file has grown since the last full sync (a `sync_data` would leave
    /// the new length — and with it the tail pages — volatile).
    pub fn sync(&mut self) -> Result<()> {
        self.crash.ensure_alive()?;
        let grew = self.page_count > self.synced_page_count;
        let sw = self.timers.start();
        Self::sync_data_file(&mut self.file, &mut self.crash, grew)?;
        self.timers.fsync.observe(&sw);
        self.synced_page_count = self.page_count;
        Ok(())
    }

    /// Makes everything written so far durable. Without a WAL this is
    /// [`Pager::sync`]. With one, it runs the checkpoint protocol:
    ///
    /// 1. seal the logged image set with a commit record, **fsync the WAL**;
    /// 2. write every logged image in place into the data file;
    /// 3. **fsync the data file** (`sync_all` when it grew);
    /// 4. truncate the log and stamp a fresh checkpoint record.
    ///
    /// A crash before step 1 completes rolls back to the previous
    /// checkpoint on reopen; a crash at or after it rolls forward to this
    /// one. Either way the store reopens consistent.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.checkpoint_consuming(0)
    }

    /// [`Pager::checkpoint`] that additionally consumes the pending ingest
    /// records whose doc id is below `ingest_watermark`: the commit record
    /// carries the watermark (so recovery that rolls this checkpoint forward
    /// drops them too) and the post-checkpoint log reset discards them. Used
    /// by the index layer's fold, whose page writes this checkpoint seals.
    pub fn checkpoint_consuming(&mut self, ingest_watermark: u64) -> Result<()> {
        self.crash.ensure_alive()?;
        let Some(wal) = &mut self.wal else {
            return self.sync();
        };
        if wal.entries().is_empty() && ingest_watermark == 0 {
            // Nothing logged since the last checkpoint; just be durable.
            let grew = self.page_count > self.synced_page_count;
            let sw = self.timers.start();
            Self::sync_data_file(&mut self.file, &mut self.crash, grew)?;
            self.timers.fsync.observe(&sw);
            self.synced_page_count = self.page_count;
            return Ok(());
        }
        let sw_ckpt = self.timers.start();
        wal.commit(&mut self.crash, ingest_watermark)?;
        let mut buf = PageBuf::zeroed();
        for id in wal.entries() {
            wal.load(id, &mut buf)?;
            Self::write_data_page(
                &mut self.file,
                &mut self.crash,
                &mut self.inject_write_failures,
                id,
                &buf,
            )?;
        }
        let grew = self.page_count > self.synced_page_count;
        let sw = self.timers.start();
        Self::sync_data_file(&mut self.file, &mut self.crash, grew)?;
        self.timers.fsync.observe(&sw);
        self.synced_page_count = self.page_count;
        wal.reset(&mut self.crash, ingest_watermark)?;
        self.obs.checkpoints.incr();
        self.timers.checkpoint.observe(&sw_ckpt);
        Ok(())
    }

    /// Logs one ingested document to the WAL, fsynced and individually
    /// durable. Returns `false` (a no-op) when this pager runs without a
    /// WAL — the caller's in-memory delta is then the only copy, exactly as
    /// every other write is volatile in that mode.
    pub fn log_ingest(&mut self, doc_id: u32, xml: &[u8]) -> Result<bool> {
        self.crash.ensure_alive()?;
        let Some(wal) = &mut self.wal else {
            return Ok(false);
        };
        let sw = self.timers.start();
        wal.append_ingest(doc_id, xml, &mut self.crash, &self.obs)?;
        self.timers.wal_append.observe(&sw);
        Ok(true)
    }

    /// The logged ingested documents no fold has consumed yet, in log
    /// order. Empty for WAL-less pagers.
    pub fn pending_ingests(&self) -> Vec<crate::wal::PendingIngest> {
        match &self.wal {
            Some(wal) => wal.pending_ingests().to_vec(),
            None => Vec::new(),
        }
    }

    /// (reads, writes) performed since open — used by benchmarks to report
    /// I/O alongside wall-clock time.
    pub fn io_counters(&self) -> (u64, u64) {
        (self.obs.page_reads.get(), self.obs.page_writes.get())
    }

    /// The storage-layer counter group this pager reports into.
    pub fn counters(&self) -> &Arc<StorageCounters> {
        &self.obs
    }

    /// The storage-layer latency histograms this pager records into.
    pub fn timers(&self) -> &Arc<StorageTimers> {
        &self.timers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("trex-pager-{name}-{}", std::process::id()));
        p
    }

    fn cleanup(path: &Path) {
        std::fs::remove_file(path).ok();
        std::fs::remove_file(crate::wal::wal_path(path)).ok();
    }

    #[test]
    fn create_write_read_round_trip() {
        let path = temp_path("rt");
        let mut pager = Pager::create(&path).unwrap();
        let id = pager.allocate().unwrap();
        let mut page = PageBuf::zeroed();
        page.init(PageType::Leaf);
        page.set_next_page(99);
        pager.write_page(id, &page).unwrap();

        let mut back = PageBuf::zeroed();
        pager.read_page(id, &mut back).unwrap();
        assert_eq!(back.page_type().unwrap(), PageType::Leaf);
        assert_eq!(back.next_page(), 99);
        cleanup(&path);
    }

    #[test]
    fn allocate_reuses_freed_pages_lifo() {
        let path = temp_path("free");
        let mut pager = Pager::create(&path).unwrap();
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        assert_ne!(a, b);
        pager.free(a).unwrap();
        pager.free(b).unwrap();
        assert_eq!(pager.allocate().unwrap(), b);
        assert_eq!(pager.allocate().unwrap(), a);
        // Free list exhausted: next allocation extends the file.
        let c = pager.allocate().unwrap();
        assert_eq!(c, 3);
        cleanup(&path);
    }

    #[test]
    fn reopen_preserves_page_count() {
        let path = temp_path("reopen");
        {
            let mut pager = Pager::create(&path).unwrap();
            pager.allocate().unwrap();
            pager.allocate().unwrap();
            pager.sync().unwrap();
        }
        let pager = Pager::open(&path).unwrap();
        assert_eq!(pager.page_count(), 3);
        cleanup(&path);
    }

    #[test]
    fn io_counters_track_activity() {
        let path = temp_path("io");
        let mut pager = Pager::create(&path).unwrap();
        let (_, w0) = pager.io_counters();
        let id = pager.allocate().unwrap();
        let mut page = PageBuf::zeroed();
        pager.read_page(id, &mut page).unwrap();
        let (r1, w1) = pager.io_counters();
        assert!(r1 >= 1);
        assert!(w1 > w0);
        cleanup(&path);
    }

    #[test]
    fn torn_tail_page_is_rejected() {
        let path = temp_path("torn");
        {
            let mut pager = Pager::create(&path).unwrap();
            pager.allocate().unwrap();
            pager.sync().unwrap();
        }
        // Append a partial page: a crashed in-place write.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xAB; 100]).unwrap();
        }
        let err = match Pager::open(&path) {
            Err(e) => e,
            Ok(_) => panic!("torn tail must be rejected"),
        };
        assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("torn tail"), "{err}");
        cleanup(&path);
    }

    #[test]
    fn create_syncs_the_fresh_meta_page() {
        let path = temp_path("create-sync");
        let pager = Pager::create(&path).unwrap();
        // The fresh store is its own first checkpoint: the meta page is on
        // disk and the sync covers the file length (sync_all at creation).
        assert_eq!(pager.synced_page_count, 1);
        assert_eq!(pager.page_count(), 1);
        cleanup(&path);
    }

    #[test]
    fn sync_uses_sync_all_while_file_grows() {
        let path = temp_path("grow-sync");
        let mut pager = Pager::create(&path).unwrap();
        pager.allocate().unwrap();
        pager.allocate().unwrap();
        assert!(
            pager.page_count > pager.synced_page_count,
            "growth must be pending before the sync"
        );
        pager.sync().unwrap();
        assert_eq!(
            pager.synced_page_count, pager.page_count,
            "sync must cover the grown length"
        );
        cleanup(&path);
    }

    #[test]
    fn wal_mode_serves_logged_pages_and_defers_data_writes() {
        let path = temp_path("walmode");
        let mut pager = Pager::create_with_wal(&path).unwrap();
        let data_len_before = pager.file.metadata().unwrap().len();
        let id = pager.allocate().unwrap();
        let mut page = PageBuf::zeroed();
        page.init(PageType::Leaf);
        page.set_next_page(4242);
        pager.write_page(id, &page).unwrap();
        // The data file has not grown: the write went to the log.
        assert_eq!(pager.file.metadata().unwrap().len(), data_len_before);
        let mut back = PageBuf::zeroed();
        pager.read_page(id, &mut back).unwrap();
        assert_eq!(back.next_page(), 4242, "read must be served from the log");
        // Checkpoint folds the image into the data file.
        pager.checkpoint().unwrap();
        assert_eq!(
            pager.file.metadata().unwrap().len(),
            2 * PAGE_SIZE as u64,
            "checkpoint extends the data file"
        );
        let mut back = PageBuf::zeroed();
        pager.read_page(id, &mut back).unwrap();
        assert_eq!(back.next_page(), 4242);
        cleanup(&path);
    }

    #[test]
    fn wal_reopen_discards_uncheckpointed_writes() {
        let path = temp_path("waldiscard");
        let id;
        {
            let mut pager = Pager::create_with_wal(&path).unwrap();
            id = pager.allocate().unwrap();
            let mut page = PageBuf::zeroed();
            page.init(PageType::Leaf);
            page.set_next_page(7);
            pager.write_page(id, &page).unwrap();
            pager.checkpoint().unwrap();
            // A second write, never checkpointed: must vanish on reopen.
            page.set_next_page(8);
            pager.write_page(id, &page).unwrap();
        }
        let mut pager = Pager::open_with_wal(&path, None).unwrap();
        let mut back = PageBuf::zeroed();
        pager.read_page(id, &mut back).unwrap();
        assert_eq!(back.next_page(), 7, "uncommitted write must roll back");
        assert!(pager.recovery_report().is_some());
        assert!(!pager.recovery_report().unwrap().completed_checkpoint);
        cleanup(&path);
    }
}
