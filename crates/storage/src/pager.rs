//! The pager: reads and writes fixed-size pages of a single store file and
//! manages page allocation with a free list.
//!
//! Page 0 is the meta page and is owned by [`crate::store::Store`]; the pager
//! only reserves it at file creation. Freed pages are chained through their
//! `next_page` header field; the head of the chain lives in the meta page and
//! is handed to the pager at open time.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use trex_obs::StorageCounters;

use crate::error::Result;
use crate::page::{PageBuf, PageId, PageType, NO_PAGE, PAGE_SIZE};

/// Low-level page file access and allocation.
pub struct Pager {
    file: File,
    page_count: u32,
    free_head: PageId,
    /// Shared observability counters; page reads/writes land in
    /// `page_reads` / `page_writes`. The [`crate::buffer::BufferPool`]
    /// wrapping this pager shares the same group, so one snapshot covers
    /// the whole storage layer.
    obs: Arc<StorageCounters>,
    /// Failure injection: the next `inject_write_failures` calls to
    /// [`Pager::write_page`] fail with an I/O error before touching the
    /// file. Zero (the default) disables injection.
    inject_write_failures: u32,
}

impl Pager {
    /// Creates a new store file (truncating any existing one) with an
    /// initialised meta page.
    pub fn create(path: &Path) -> Result<Pager> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut pager = Pager {
            file,
            page_count: 1,
            free_head: NO_PAGE,
            obs: Arc::new(StorageCounters::new()),
            inject_write_failures: 0,
        };
        let mut meta = PageBuf::zeroed();
        meta.init(PageType::Meta);
        pager.write_page(0, &meta)?;
        Ok(pager)
    }

    /// Opens an existing store file. `free_head` is read from the meta page
    /// by the store and installed via [`Pager::set_free_head`].
    pub fn open(path: &Path) -> Result<Pager> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        let page_count = (len / PAGE_SIZE as u64) as u32;
        Ok(Pager {
            file,
            page_count: page_count.max(1),
            free_head: NO_PAGE,
            obs: Arc::new(StorageCounters::new()),
            inject_write_failures: 0,
        })
    }

    /// Number of pages in the file (including the meta page and free pages).
    pub fn page_count(&self) -> u32 {
        self.page_count
    }

    /// Head of the free-page chain.
    pub fn free_head(&self) -> PageId {
        self.free_head
    }

    /// Installs the free-list head (read from the meta page at open).
    pub fn set_free_head(&mut self, head: PageId) {
        self.free_head = head;
    }

    /// Reads page `id` into `buf`.
    pub fn read_page(&mut self, id: PageId, buf: &mut PageBuf) -> Result<()> {
        self.file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        self.file.read_exact(buf.bytes_mut().as_mut_slice())?;
        self.obs.page_reads.incr();
        Ok(())
    }

    /// Arms failure injection: the next `n` [`Pager::write_page`] calls
    /// fail with an I/O error without touching the file. Used by tests to
    /// exercise the buffer pool's dirty write-back error paths.
    pub fn inject_write_failures(&mut self, n: u32) {
        self.inject_write_failures = n;
    }

    /// Writes `buf` to page `id`.
    pub fn write_page(&mut self, id: PageId, buf: &PageBuf) -> Result<()> {
        if self.inject_write_failures > 0 {
            self.inject_write_failures -= 1;
            return Err(std::io::Error::other("injected write failure").into());
        }
        self.file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        self.file.write_all(buf.bytes().as_slice())?;
        self.obs.page_writes.incr();
        Ok(())
    }

    /// Allocates a page: pops the free list if possible, otherwise extends
    /// the file. The returned page's contents are unspecified; callers must
    /// `init` it.
    pub fn allocate(&mut self) -> Result<PageId> {
        if self.free_head != NO_PAGE {
            let id = self.free_head;
            let mut buf = PageBuf::zeroed();
            self.read_page(id, &mut buf)?;
            self.free_head = buf.next_page();
            return Ok(id);
        }
        let id = self.page_count;
        self.page_count += 1;
        // Extend the file so subsequent reads of this page succeed.
        let buf = PageBuf::zeroed();
        self.write_page(id, &buf)?;
        Ok(id)
    }

    /// Returns page `id` to the free list.
    pub fn free(&mut self, id: PageId) -> Result<()> {
        debug_assert_ne!(id, 0, "cannot free the meta page");
        let mut buf = PageBuf::zeroed();
        buf.init(PageType::Free);
        buf.set_next_page(self.free_head);
        self.write_page(id, &buf)?;
        self.free_head = id;
        Ok(())
    }

    /// Flushes OS buffers to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    /// (reads, writes) performed since open — used by benchmarks to report
    /// I/O alongside wall-clock time.
    pub fn io_counters(&self) -> (u64, u64) {
        (self.obs.page_reads.get(), self.obs.page_writes.get())
    }

    /// The storage-layer counter group this pager reports into.
    pub fn counters(&self) -> &Arc<StorageCounters> {
        &self.obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("trex-pager-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn create_write_read_round_trip() {
        let path = temp_path("rt");
        let mut pager = Pager::create(&path).unwrap();
        let id = pager.allocate().unwrap();
        let mut page = PageBuf::zeroed();
        page.init(PageType::Leaf);
        page.set_next_page(99);
        pager.write_page(id, &page).unwrap();

        let mut back = PageBuf::zeroed();
        pager.read_page(id, &mut back).unwrap();
        assert_eq!(back.page_type().unwrap(), PageType::Leaf);
        assert_eq!(back.next_page(), 99);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn allocate_reuses_freed_pages_lifo() {
        let path = temp_path("free");
        let mut pager = Pager::create(&path).unwrap();
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        assert_ne!(a, b);
        pager.free(a).unwrap();
        pager.free(b).unwrap();
        assert_eq!(pager.allocate().unwrap(), b);
        assert_eq!(pager.allocate().unwrap(), a);
        // Free list exhausted: next allocation extends the file.
        let c = pager.allocate().unwrap();
        assert_eq!(c, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_preserves_page_count() {
        let path = temp_path("reopen");
        {
            let mut pager = Pager::create(&path).unwrap();
            pager.allocate().unwrap();
            pager.allocate().unwrap();
            pager.sync().unwrap();
        }
        let pager = Pager::open(&path).unwrap();
        assert_eq!(pager.page_count(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn io_counters_track_activity() {
        let path = temp_path("io");
        let mut pager = Pager::create(&path).unwrap();
        let (_, w0) = pager.io_counters();
        let id = pager.allocate().unwrap();
        let mut page = PageBuf::zeroed();
        pager.read_page(id, &mut page).unwrap();
        let (r1, w1) = pager.io_counters();
        assert!(r1 >= 1);
        assert!(w1 > w0);
        std::fs::remove_file(&path).ok();
    }
}
