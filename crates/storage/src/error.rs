//! Error types for the storage engine.

use std::fmt;

/// Errors produced by the storage engine.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O error from the page file.
    Io(std::io::Error),
    /// The on-disk data is structurally invalid (bad magic, bad page type,
    /// truncated cell, …). The string describes what was found.
    Corrupt(String),
    /// A key exceeded [`crate::btree::MAX_KEY_LEN`].
    KeyTooLarge(usize),
    /// A value exceeded [`crate::btree::MAX_VALUE_LEN`].
    ValueTooLarge(usize),
    /// A table name was not found in the store catalog.
    UnknownTable(String),
    /// A table with this name already exists.
    TableExists(String),
    /// The store catalog page ran out of room for more table entries.
    CatalogFull,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::Corrupt(what) => write!(f, "corrupt store: {what}"),
            StorageError::KeyTooLarge(n) => write!(f, "key of {n} bytes exceeds maximum"),
            StorageError::ValueTooLarge(n) => write!(f, "value of {n} bytes exceeds maximum"),
            StorageError::UnknownTable(name) => write!(f, "unknown table: {name}"),
            StorageError::TableExists(name) => write!(f, "table already exists: {name}"),
            StorageError::CatalogFull => write!(f, "store catalog is full"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = StorageError::Corrupt("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
        let e = StorageError::KeyTooLarge(9000);
        assert!(e.to_string().contains("9000"));
        let e = StorageError::UnknownTable("rpls".into());
        assert!(e.to_string().contains("rpls"));
    }

    #[test]
    fn io_error_is_wrapped_and_sourced() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: StorageError = io.into();
        assert!(matches!(e, StorageError::Io(_)));
        assert!(e.source().is_some());
    }
}
