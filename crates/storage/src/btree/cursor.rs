//! Forward cursor over the leaf chain of a B+tree.

use std::sync::Arc;

use crate::buffer::BufferPool;
use crate::error::Result;
use crate::page::{PageId, NO_PAGE};

use super::leaf_cell;

/// Iterates (key, value) pairs in ascending key order, starting from the
/// position it was created at ([`super::BTree::seek`] / [`super::BTree::scan`]).
///
/// The cursor owns a pool handle, so it stays valid after the `BTree` value
/// it came from is dropped (the pages persist in the store).
pub struct Cursor {
    pool: Arc<BufferPool>,
    leaf: PageId,
    idx: usize,
}

impl Cursor {
    pub(crate) fn new(pool: Arc<BufferPool>, leaf: PageId, idx: usize) -> Cursor {
        Cursor { pool, leaf, idx }
    }

    /// Returns the entry at the cursor and advances, or `None` at the end.
    ///
    /// Named `next_entry` rather than implementing `Iterator` directly so the
    /// fallible signature (`Result<Option<..>>`) stays explicit; a conforming
    /// `Iterator` adapter is available via [`Cursor::entries`].
    pub fn next_entry(&mut self) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        loop {
            if self.leaf == NO_PAGE {
                return Ok(None);
            }
            let page = self.pool.fetch(self.leaf)?;
            let buf = page.buf.read();
            if self.idx < buf.cell_count() {
                let (k, v) = leaf_cell(&buf, self.idx)?;
                let entry = (k.to_vec(), v.to_vec());
                self.idx += 1;
                self.pool.counters().cursor_steps.incr();
                return Ok(Some(entry));
            }
            // Exhausted this leaf (possibly an empty one left by deletes):
            // follow the chain.
            self.leaf = buf.next_page();
            self.idx = 0;
        }
    }

    /// Peeks at the entry the cursor is positioned on without advancing.
    pub fn peek(&mut self) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        let saved = (self.leaf, self.idx);
        let entry = self.next_entry()?;
        // `next_entry` may have walked over empty leaves; restoring the exact
        // prior position would re-walk them, so only rewind the index.
        if entry.is_some() {
            self.idx -= 1;
        } else {
            self.leaf = saved.0;
            self.idx = saved.1;
        }
        Ok(entry)
    }

    /// Adapts the cursor into an `Iterator` yielding `Result` items.
    pub fn entries(self) -> Entries {
        Entries { cursor: self }
    }
}

/// Iterator adapter returned by [`Cursor::entries`].
pub struct Entries {
    cursor: Cursor,
}

impl Iterator for Entries {
    type Item = Result<(Vec<u8>, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        self.cursor.next_entry().transpose()
    }
}
