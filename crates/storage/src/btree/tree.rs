//! B+tree mutation and lookup logic.

use std::sync::Arc;

use crate::buffer::BufferPool;
use crate::error::{Result, StorageError};
use crate::page::{PageBuf, PageId, PageType, NO_PAGE, PAGE_SIZE};

use super::cursor::Cursor;
use super::{
    encode_internal_cell, encode_leaf_cell, internal_cell, internal_child_index,
    internal_child_offset, leaf_cell, leaf_search, MAX_KEY_LEN, MAX_VALUE_LEN,
};

/// A single B+tree rooted at a page of the shared store file.
pub struct BTree {
    pool: Arc<BufferPool>,
    root: PageId,
}

/// Outcome of a recursive insert: `Some((separator, new_right_page))` when the
/// child split and the parent must absorb a new separator.
type SplitResult = Option<(Vec<u8>, PageId)>;

impl BTree {
    /// Creates an empty tree (a single empty leaf) in `pool`.
    pub fn create(pool: Arc<BufferPool>) -> Result<BTree> {
        let (root, page) = pool.allocate()?;
        page.buf.write().init(PageType::Leaf);
        page.mark_dirty();
        Ok(BTree { pool, root })
    }

    /// Opens a tree whose root page is already known (from the catalog).
    pub fn open(pool: Arc<BufferPool>, root: PageId) -> BTree {
        BTree { pool, root }
    }

    /// The current root page id. Changes when the root splits; the store
    /// catalog records it at flush time.
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Inserts `key -> value`, replacing any existing value for `key`.
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        if key.len() > MAX_KEY_LEN {
            return Err(StorageError::KeyTooLarge(key.len()));
        }
        if value.len() > MAX_VALUE_LEN {
            return Err(StorageError::ValueTooLarge(value.len()));
        }
        if let Some((sep, right)) = self.insert_into(self.root, key, value)? {
            let (new_root, page) = self.pool.allocate()?;
            {
                let mut buf = page.buf.write();
                buf.init(PageType::Internal);
                buf.insert_cell(0, &encode_internal_cell(&sep, self.root));
                buf.set_right_child(right);
            }
            page.mark_dirty();
            self.root = new_root;
        }
        Ok(())
    }

    fn insert_into(&self, page_id: PageId, key: &[u8], value: &[u8]) -> Result<SplitResult> {
        self.pool.counters().btree_node_visits.incr();
        let page = self.pool.fetch(page_id)?;
        let ty = page.buf.read().page_type()?;
        match ty {
            PageType::Leaf => self.insert_into_leaf(&page, key, value),
            PageType::Internal => {
                let (child_idx, child_id) = {
                    let buf = page.buf.read();
                    let idx = internal_child_index(&buf, key)?;
                    let child = if idx == buf.cell_count() {
                        buf.right_child()
                    } else {
                        internal_cell(&buf, idx)?.1
                    };
                    (idx, child)
                };
                let Some((sep, new_right)) = self.insert_into(child_id, key, value)? else {
                    return Ok(None);
                };
                // The child split: `child_id` now holds keys < sep and
                // `new_right` keys >= sep. Route sep..old_bound to new_right
                // by patching the old slot's child and inserting (sep, child).
                let mut buf = page.buf.write();
                if child_idx == buf.cell_count() {
                    buf.set_right_child(new_right);
                } else {
                    let off = internal_child_offset(&buf, child_idx)?;
                    buf.bytes_mut()[off..off + 4].copy_from_slice(&new_right.to_le_bytes());
                }
                let cell = encode_internal_cell(&sep, child_id);
                if buf.free_space() >= cell.len() + 2 {
                    buf.insert_cell(child_idx, &cell);
                    drop(buf);
                    page.mark_dirty();
                    return Ok(None);
                }
                // Internal page overflow: collect, add, split.
                let mut entries: Vec<(Vec<u8>, u32)> = Vec::with_capacity(buf.cell_count() + 1);
                for i in 0..buf.cell_count() {
                    let (k, c) = internal_cell(&buf, i)?;
                    entries.push((k.to_vec(), c));
                }
                entries.insert(child_idx, (sep, child_id));
                let right_child = buf.right_child();
                drop(buf);
                let split = self.split_internal(&page, entries, right_child)?;
                page.mark_dirty();
                Ok(Some(split))
            }
            other => Err(StorageError::Corrupt(format!(
                "unexpected page type {other:?} during descent"
            ))),
        }
    }

    fn insert_into_leaf(
        &self,
        page: &crate::buffer::PageRef,
        key: &[u8],
        value: &[u8],
    ) -> Result<SplitResult> {
        let mut buf = page.buf.write();
        let pos = leaf_search(&buf, key)?;
        let cell = encode_leaf_cell(key, value);
        match pos {
            Ok(i) => {
                // Replace: drop the old slot, then re-add (possibly splitting).
                buf.remove_slot(i);
                if buf.free_space() >= cell.len() + 2 {
                    buf.insert_cell(i, &cell);
                    drop(buf);
                    page.mark_dirty();
                    return Ok(None);
                }
                let result = self.overflow_leaf(&mut buf, i, key, value)?;
                drop(buf);
                page.mark_dirty();
                Ok(result)
            }
            Err(i) => {
                if buf.free_space() >= cell.len() + 2 {
                    buf.insert_cell(i, &cell);
                    drop(buf);
                    page.mark_dirty();
                    return Ok(None);
                }
                let result = self.overflow_leaf(&mut buf, i, key, value)?;
                drop(buf);
                page.mark_dirty();
                Ok(result)
            }
        }
    }

    /// Handles a leaf that cannot absorb the new cell in place: gathers the
    /// live cells plus the new entry, then either compacts in place (dead
    /// space from replacements may have been the only problem) or splits.
    fn overflow_leaf(
        &self,
        buf: &mut PageBuf,
        insert_at: usize,
        key: &[u8],
        value: &[u8],
    ) -> Result<SplitResult> {
        let mut entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(buf.cell_count() + 1);
        for i in 0..buf.cell_count() {
            let (k, v) = leaf_cell(buf, i)?;
            entries.push((k.to_vec(), v.to_vec()));
        }
        entries.insert(insert_at, (key.to_vec(), value.to_vec()));

        let total: usize = entries
            .iter()
            .map(|(k, v)| encoded_leaf_len(k, v) + 2)
            .sum();
        if total + crate::page::HEADER_LEN <= PAGE_SIZE {
            // Compaction suffices.
            let next = buf.next_page();
            buf.init(PageType::Leaf);
            buf.set_next_page(next);
            for (i, (k, v)) in entries.iter().enumerate() {
                buf.insert_cell(i, &encode_leaf_cell(k, v));
            }
            return Ok(None);
        }

        // Split near the byte midpoint, keeping >= 1 cell on each side.
        let mut acc = 0usize;
        let mut split_at = entries.len() - 1;
        for (i, (k, v)) in entries.iter().enumerate() {
            acc += encoded_leaf_len(k, v) + 2;
            if acc >= total / 2 && i + 1 < entries.len() {
                split_at = i + 1;
                break;
            }
        }
        let split_at = split_at.clamp(1, entries.len() - 1);
        let right_entries = entries.split_off(split_at);

        let (right_id, right_page) = self.pool.allocate()?;
        {
            let mut rbuf = right_page.buf.write();
            rbuf.init(PageType::Leaf);
            rbuf.set_next_page(buf.next_page());
            for (i, (k, v)) in right_entries.iter().enumerate() {
                rbuf.insert_cell(i, &encode_leaf_cell(k, v));
            }
        }
        right_page.mark_dirty();

        buf.init(PageType::Leaf);
        buf.set_next_page(right_id);
        for (i, (k, v)) in entries.iter().enumerate() {
            buf.insert_cell(i, &encode_leaf_cell(k, v));
        }

        Ok(Some((right_entries[0].0.clone(), right_id)))
    }

    /// Splits an overflowing internal node given its full entry list.
    fn split_internal(
        &self,
        page: &crate::buffer::PageRef,
        entries: Vec<(Vec<u8>, u32)>,
        right_child: PageId,
    ) -> Result<(Vec<u8>, PageId)> {
        // Promote the middle separator; its child becomes the left node's
        // right_child.
        let mid = entries.len() / 2;
        debug_assert!(mid >= 1 && mid < entries.len());
        let (promoted_key, promoted_child) = entries[mid].clone();
        let left_entries = &entries[..mid];
        let right_entries = &entries[mid + 1..];

        let (right_id, right_page) = self.pool.allocate()?;
        {
            let mut rbuf = right_page.buf.write();
            rbuf.init(PageType::Internal);
            for (i, (k, c)) in right_entries.iter().enumerate() {
                rbuf.insert_cell(i, &encode_internal_cell(k, *c));
            }
            rbuf.set_right_child(right_child);
        }
        right_page.mark_dirty();

        let mut buf = page.buf.write();
        buf.init(PageType::Internal);
        for (i, (k, c)) in left_entries.iter().enumerate() {
            buf.insert_cell(i, &encode_internal_cell(k, *c));
        }
        buf.set_right_child(promoted_child);

        Ok((promoted_key, right_id))
    }

    /// Looks up the value stored under `key`.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let leaf = self.find_leaf(key)?;
        self.pool.counters().btree_node_visits.incr();
        let page = self.pool.fetch(leaf)?;
        let buf = page.buf.read();
        match leaf_search(&buf, key)? {
            Ok(i) => Ok(Some(leaf_cell(&buf, i)?.1.to_vec())),
            Err(_) => Ok(None),
        }
    }

    /// Removes `key` if present; returns whether a cell was removed.
    ///
    /// No rebalancing is performed (see module docs).
    pub fn delete(&mut self, key: &[u8]) -> Result<bool> {
        let leaf = self.find_leaf(key)?;
        self.pool.counters().btree_node_visits.incr();
        let page = self.pool.fetch(leaf)?;
        let mut buf = page.buf.write();
        match leaf_search(&buf, key)? {
            Ok(i) => {
                buf.remove_slot(i);
                drop(buf);
                page.mark_dirty();
                Ok(true)
            }
            Err(_) => Ok(false),
        }
    }

    /// Page id of the leaf that does / would contain `key`.
    fn find_leaf(&self, key: &[u8]) -> Result<PageId> {
        let mut page_id = self.root;
        loop {
            self.pool.counters().btree_node_visits.incr();
            let page = self.pool.fetch(page_id)?;
            let buf = page.buf.read();
            match buf.page_type()? {
                PageType::Leaf => return Ok(page_id),
                PageType::Internal => {
                    let idx = internal_child_index(&buf, key)?;
                    page_id = if idx == buf.cell_count() {
                        buf.right_child()
                    } else {
                        internal_cell(&buf, idx)?.1
                    };
                }
                other => {
                    return Err(StorageError::Corrupt(format!(
                        "unexpected page type {other:?} during descent"
                    )))
                }
            }
        }
    }

    /// Page id of the leftmost leaf.
    fn first_leaf(&self) -> Result<PageId> {
        let mut page_id = self.root;
        loop {
            self.pool.counters().btree_node_visits.incr();
            let page = self.pool.fetch(page_id)?;
            let buf = page.buf.read();
            match buf.page_type()? {
                PageType::Leaf => return Ok(page_id),
                PageType::Internal => {
                    page_id = if buf.cell_count() > 0 {
                        internal_cell(&buf, 0)?.1
                    } else {
                        buf.right_child()
                    };
                }
                other => {
                    return Err(StorageError::Corrupt(format!(
                        "unexpected page type {other:?} during descent"
                    )))
                }
            }
        }
    }

    /// Cursor positioned at the first entry with key `>= key`.
    ///
    /// Cursors observe a frozen traversal position, not a snapshot: they are
    /// invalidated by concurrent mutation of the same tree. TReX builds its
    /// tables fully before querying them, so this is never exercised.
    pub fn seek(&self, key: &[u8]) -> Result<Cursor> {
        let leaf = self.find_leaf(key)?;
        let idx = {
            self.pool.counters().btree_node_visits.incr();
            let page = self.pool.fetch(leaf)?;
            let buf = page.buf.read();
            match leaf_search(&buf, key)? {
                Ok(i) => i,
                Err(i) => i,
            }
        };
        Ok(Cursor::new(self.pool.clone(), leaf, idx))
    }

    /// Cursor positioned at the smallest key in the tree.
    pub fn scan(&self) -> Result<Cursor> {
        Ok(Cursor::new(self.pool.clone(), self.first_leaf()?, 0))
    }

    /// Frees every page of the tree (used when the advisor drops a
    /// materialised index). The tree must not be used afterwards.
    pub fn destroy(self) -> Result<()> {
        self.destroy_page(self.root)
    }

    fn destroy_page(&self, page_id: PageId) -> Result<()> {
        let children: Vec<PageId> = {
            let page = self.pool.fetch(page_id)?;
            let buf = page.buf.read();
            match buf.page_type()? {
                PageType::Leaf => Vec::new(),
                PageType::Internal => {
                    let mut c: Vec<PageId> = (0..buf.cell_count())
                        .map(|i| internal_cell(&buf, i).map(|(_, id)| id))
                        .collect::<Result<_>>()?;
                    if buf.right_child() != NO_PAGE {
                        c.push(buf.right_child());
                    }
                    c
                }
                _ => Vec::new(),
            }
        };
        for child in children {
            self.destroy_page(child)?;
        }
        self.pool.free(page_id)
    }
}

fn encoded_leaf_len(key: &[u8], value: &[u8]) -> usize {
    crate::codec::varint_len(key.len() as u64)
        + crate::codec::varint_len(value.len() as u64)
        + key.len()
        + value.len()
}
