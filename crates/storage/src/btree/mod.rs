//! A persistent B+tree over the buffer pool.
//!
//! * Variable-length byte-string keys and values, compared with memcmp.
//!   Composite keys therefore use the order-preserving encodings from
//!   [`crate::codec`].
//! * Leaves are chained left-to-right, giving the cheap ordered scans the
//!   TReX tables rely on ("an index on the primary key provides a sequential
//!   access to the tuples", paper §2.2).
//! * Deletion removes cells without rebalancing; a leaf may become empty and
//!   is then skipped by scans. TReX deletes whole redundant index lists at
//!   once (advisor evictions), so lazy deletion keeps the common paths simple
//!   without hurting the workloads this engine serves.
//!
//! Page cell formats:
//!
//! ```text
//! leaf cell:     varint key_len | varint value_len | key | value
//! internal cell: varint key_len | key | child_page_id (u32 LE)
//! ```
//!
//! Internal node convention: cell `i` holds `(sep_i, child_i)` where
//! `child_i` covers keys `< sep_i` (and `>= sep_{i-1}`); the header's
//! `right_child` covers keys `>= sep_last`.

mod bulk;
mod cursor;
mod tree;

pub use bulk::bulk_load;
pub use cursor::Cursor;
pub use tree::BTree;

use crate::codec::read_varint;
use crate::error::{Result, StorageError};
use crate::page::PageBuf;

/// Maximum key length accepted by [`BTree::insert`].
pub const MAX_KEY_LEN: usize = 1024;
/// Maximum value length accepted by [`BTree::insert`].
pub const MAX_VALUE_LEN: usize = 2048;

/// Decodes the `i`-th leaf cell of `page` as `(key, value)`.
pub(crate) fn leaf_cell(page: &PageBuf, i: usize) -> Result<(&[u8], &[u8])> {
    let data = page.bytes();
    let off = page.slot(i);
    let (klen, n1) = read_varint(&data[off..])?;
    let (vlen, n2) = read_varint(&data[off + n1..])?;
    let kstart = off + n1 + n2;
    let vstart = kstart + klen as usize;
    let vend = vstart + vlen as usize;
    if vend > data.len() {
        return Err(StorageError::Corrupt("leaf cell overruns page".into()));
    }
    Ok((&data[kstart..vstart], &data[vstart..vend]))
}

/// Decodes the `i`-th internal cell of `page` as `(separator_key, child)`.
pub(crate) fn internal_cell(page: &PageBuf, i: usize) -> Result<(&[u8], u32)> {
    let data = page.bytes();
    let off = page.slot(i);
    let (klen, n1) = read_varint(&data[off..])?;
    let kstart = off + n1;
    let kend = kstart + klen as usize;
    let cend = kend + 4;
    if cend > data.len() {
        return Err(StorageError::Corrupt("internal cell overruns page".into()));
    }
    let mut b = [0u8; 4];
    b.copy_from_slice(&data[kend..cend]);
    Ok((&data[kstart..kend], u32::from_le_bytes(b)))
}

/// Byte offset (within the page) of the child pointer of internal cell `i`,
/// used to patch the pointer in place when a child splits.
pub(crate) fn internal_child_offset(page: &PageBuf, i: usize) -> Result<usize> {
    let data = page.bytes();
    let off = page.slot(i);
    let (klen, n1) = read_varint(&data[off..])?;
    Ok(off + n1 + klen as usize)
}

/// Encodes a leaf cell.
pub(crate) fn encode_leaf_cell(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut cell = Vec::with_capacity(key.len() + value.len() + 6);
    crate::codec::write_varint(&mut cell, key.len() as u64);
    crate::codec::write_varint(&mut cell, value.len() as u64);
    cell.extend_from_slice(key);
    cell.extend_from_slice(value);
    cell
}

/// Encodes an internal cell.
pub(crate) fn encode_internal_cell(key: &[u8], child: u32) -> Vec<u8> {
    let mut cell = Vec::with_capacity(key.len() + 8);
    crate::codec::write_varint(&mut cell, key.len() as u64);
    cell.extend_from_slice(key);
    cell.extend_from_slice(&child.to_le_bytes());
    cell
}

/// Binary search over a leaf page. Returns `Ok(i)` if cell `i` holds `key`,
/// `Err(i)` with the insertion position otherwise.
pub(crate) fn leaf_search(page: &PageBuf, key: &[u8]) -> Result<std::result::Result<usize, usize>> {
    let mut lo = 0usize;
    let mut hi = page.cell_count();
    while lo < hi {
        let mid = (lo + hi) / 2;
        let (k, _) = leaf_cell(page, mid)?;
        match k.cmp(key) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Ok(Ok(mid)),
        }
    }
    Ok(Err(lo))
}

/// For an internal page, the index of the cell whose child should be
/// descended for `key`: the first cell with `key < sep`. Returns
/// `cell_count()` when the right child should be used.
pub(crate) fn internal_child_index(page: &PageBuf, key: &[u8]) -> Result<usize> {
    let mut lo = 0usize;
    let mut hi = page.cell_count();
    while lo < hi {
        let mid = (lo + hi) / 2;
        let (sep, _) = internal_cell(page, mid)?;
        if key < sep {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageType;

    #[test]
    fn leaf_cell_round_trip() {
        let mut p = PageBuf::zeroed();
        p.init(PageType::Leaf);
        p.insert_cell(0, &encode_leaf_cell(b"alpha", b"one"));
        p.insert_cell(1, &encode_leaf_cell(b"beta", b""));
        let (k, v) = leaf_cell(&p, 0).unwrap();
        assert_eq!((k, v), (&b"alpha"[..], &b"one"[..]));
        let (k, v) = leaf_cell(&p, 1).unwrap();
        assert_eq!((k, v), (&b"beta"[..], &b""[..]));
    }

    #[test]
    fn internal_cell_round_trip_and_patch_offset() {
        let mut p = PageBuf::zeroed();
        p.init(PageType::Internal);
        p.insert_cell(0, &encode_internal_cell(b"mm", 17));
        let (k, c) = internal_cell(&p, 0).unwrap();
        assert_eq!((k, c), (&b"mm"[..], 17));
        let off = internal_child_offset(&p, 0).unwrap();
        p.bytes_mut()[off..off + 4].copy_from_slice(&99u32.to_le_bytes());
        let (_, c) = internal_cell(&p, 0).unwrap();
        assert_eq!(c, 99);
    }

    #[test]
    fn leaf_search_finds_position() {
        let mut p = PageBuf::zeroed();
        p.init(PageType::Leaf);
        for (i, k) in [b"b", b"d", b"f"].iter().enumerate() {
            p.insert_cell(i, &encode_leaf_cell(&k[..], b"v"));
        }
        assert_eq!(leaf_search(&p, b"d").unwrap(), Ok(1));
        assert_eq!(leaf_search(&p, b"a").unwrap(), Err(0));
        assert_eq!(leaf_search(&p, b"c").unwrap(), Err(1));
        assert_eq!(leaf_search(&p, b"g").unwrap(), Err(3));
    }

    #[test]
    fn internal_child_index_uses_upper_bound() {
        let mut p = PageBuf::zeroed();
        p.init(PageType::Internal);
        p.insert_cell(0, &encode_internal_cell(b"m", 1));
        p.insert_cell(1, &encode_internal_cell(b"t", 2));
        p.set_right_child(3);
        // keys < "m" go to cell 0's child
        assert_eq!(internal_child_index(&p, b"a").unwrap(), 0);
        // "m" itself belongs to the right of the separator
        assert_eq!(internal_child_index(&p, b"m").unwrap(), 1);
        assert_eq!(internal_child_index(&p, b"p").unwrap(), 1);
        assert_eq!(internal_child_index(&p, b"z").unwrap(), 2);
    }
}
