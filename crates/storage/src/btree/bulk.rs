//! Bottom-up bulk loading of a B+tree from pre-sorted entries.
//!
//! The TReX index builder writes posting lists in ascending key order
//! (term, then position), which lets the tree be built leaf-by-leaf with no
//! splits, no re-traversal, and near-full pages — the standard bulk-load
//! path of any production B-tree.

use std::sync::Arc;

use crate::buffer::BufferPool;
use crate::error::{Result, StorageError};
use crate::page::{PageId, PageType, PAGE_SIZE};

use super::tree::BTree;
use super::{encode_internal_cell, encode_leaf_cell, MAX_KEY_LEN, MAX_VALUE_LEN};

/// Fraction of a page's payload filled during bulk load, leaving headroom
/// for later in-place updates without immediate splits.
const FILL_NUM: usize = 15;
const FILL_DEN: usize = 16;

/// Builds a tree from `entries`, which must be strictly ascending by key.
/// Returns the finished tree. Errors on unsorted input or oversized
/// keys/values.
pub fn bulk_load(
    pool: Arc<BufferPool>,
    entries: impl Iterator<Item = (Vec<u8>, Vec<u8>)>,
) -> Result<BTree> {
    let budget = (PAGE_SIZE - crate::page::HEADER_LEN) * FILL_NUM / FILL_DEN;

    // ----- leaf level -----
    let mut leaves: Vec<(Vec<u8>, PageId)> = Vec::new(); // (first key, page)
    let mut current: Option<(PageId, crate::buffer::PageRef, Vec<u8>)> = None;
    let mut prev_key: Option<Vec<u8>> = None;

    for (key, value) in entries {
        if key.len() > MAX_KEY_LEN {
            return Err(StorageError::KeyTooLarge(key.len()));
        }
        if value.len() > MAX_VALUE_LEN {
            return Err(StorageError::ValueTooLarge(value.len()));
        }
        if let Some(prev) = &prev_key {
            if *prev >= key {
                return Err(StorageError::Corrupt(
                    "bulk load requires strictly ascending keys".into(),
                ));
            }
        }
        let cell = encode_leaf_cell(&key, &value);

        let start_new = match &current {
            None => true,
            Some((_, page, _)) => {
                let buf = page.buf.read();
                let used = PAGE_SIZE - buf.free_space() - crate::page::HEADER_LEN;
                used + cell.len() + 2 > budget || buf.free_space() < cell.len() + 2
            }
        };
        if start_new {
            // Seal the previous leaf and open a new one.
            let (new_id, new_page) = pool.allocate()?;
            new_page.buf.write().init(PageType::Leaf);
            new_page.mark_dirty();
            if let Some((prev_id, prev_page, first_key)) = current.take() {
                prev_page.buf.write().set_next_page(new_id);
                prev_page.mark_dirty();
                leaves.push((first_key, prev_id));
            }
            current = Some((new_id, new_page, key.clone()));
        }
        let (_, page, _) = current.as_ref().expect("just ensured");
        {
            let mut buf = page.buf.write();
            let idx = buf.cell_count();
            buf.insert_cell(idx, &cell);
        }
        page.mark_dirty();
        prev_key = Some(key);
    }

    match current {
        None => {
            // Empty input: a single empty leaf is the root.
            return BTree::create(pool);
        }
        Some((id, page, first_key)) => {
            page.mark_dirty();
            leaves.push((first_key, id));
        }
    }

    // ----- internal levels -----
    // Children covering keys < sep go left of sep; the level's last child is
    // the right child. Each internal node takes as many children as fit.
    let mut level: Vec<(Vec<u8>, PageId)> = leaves;
    while level.len() > 1 {
        let mut next_level: Vec<(Vec<u8>, PageId)> = Vec::new();
        let mut iter = level.into_iter().peekable();
        while let Some((node_first_key, first_child)) = iter.next() {
            let (node_id, node_page) = pool.allocate()?;
            {
                let mut buf = node_page.buf.write();
                buf.init(PageType::Internal);
                let mut last_child = first_child;
                // Add (sep = next child's first key, child = previous child)
                // while there is room and more children exist.
                while let Some((sep, child)) = iter.peek() {
                    let cell = encode_internal_cell(sep, last_child);
                    let used = PAGE_SIZE - buf.free_space() - crate::page::HEADER_LEN;
                    if used + cell.len() + 2 > budget {
                        break;
                    }
                    let idx = buf.cell_count();
                    buf.insert_cell(idx, &cell);
                    last_child = *child;
                    let _ = sep;
                    iter.next();
                }
                buf.set_right_child(last_child);
            }
            node_page.mark_dirty();
            next_level.push((node_first_key, node_id));
        }
        level = next_level;
    }

    let root = level[0].1;
    Ok(BTree::open(pool, root))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;

    fn pool(name: &str) -> (Arc<BufferPool>, std::path::PathBuf) {
        let mut p = std::env::temp_dir();
        p.push(format!("trex-bulk-{name}-{}", std::process::id()));
        let pager = Pager::create(&p).unwrap();
        (Arc::new(BufferPool::new(pager, 128)), p)
    }

    fn entries(n: u32) -> impl Iterator<Item = (Vec<u8>, Vec<u8>)> {
        (0..n).map(|i| (i.to_be_bytes().to_vec(), (i * 7).to_le_bytes().to_vec()))
    }

    #[test]
    fn bulk_loaded_tree_serves_gets_and_scans() {
        let (pool, path) = pool("basic");
        let tree = bulk_load(pool, entries(50_000)).unwrap();
        for i in (0..50_000u32).step_by(997) {
            assert_eq!(
                tree.get(&i.to_be_bytes()).unwrap().unwrap(),
                (i * 7).to_le_bytes()
            );
        }
        let mut cursor = tree.scan().unwrap();
        let mut count = 0u32;
        let mut prev: Option<Vec<u8>> = None;
        while let Some((k, _)) = cursor.next_entry().unwrap() {
            if let Some(p) = &prev {
                assert!(p < &k);
            }
            prev = Some(k);
            count += 1;
        }
        assert_eq!(count, 50_000);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_input_gives_empty_tree() {
        let (pool, path) = pool("empty");
        let tree = bulk_load(pool, std::iter::empty()).unwrap();
        assert!(tree.get(b"x").unwrap().is_none());
        let mut cursor = tree.scan().unwrap();
        assert!(cursor.next_entry().unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn single_entry() {
        let (pool, path) = pool("one");
        let tree = bulk_load(pool, entries(1)).unwrap();
        assert!(tree.get(&0u32.to_be_bytes()).unwrap().is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unsorted_input_is_rejected() {
        let (pool, path) = pool("unsorted");
        let items = vec![
            (b"b".to_vec(), b"1".to_vec()),
            (b"a".to_vec(), b"2".to_vec()),
        ];
        assert!(bulk_load(pool.clone(), items.into_iter()).is_err());
        let dup = vec![
            (b"a".to_vec(), b"1".to_vec()),
            (b"a".to_vec(), b"2".to_vec()),
        ];
        assert!(bulk_load(pool, dup.into_iter()).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bulk_tree_accepts_later_inserts() {
        let (pool, path) = pool("insertafter");
        let mut tree = bulk_load(
            pool,
            (0..1000u32).map(|i| ((i * 2).to_be_bytes().to_vec(), b"even".to_vec())),
        )
        .unwrap();
        // Insert odd keys afterwards; splits must work on near-full pages.
        for i in 0..1000u32 {
            tree.insert(&(i * 2 + 1).to_be_bytes(), b"odd").unwrap();
        }
        for i in 0..2000u32 {
            let want: &[u8] = if i % 2 == 0 { b"even" } else { b"odd" };
            assert_eq!(tree.get(&i.to_be_bytes()).unwrap().unwrap(), want);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn variable_sized_values_fill_multiple_levels() {
        let (pool, path) = pool("varsize");
        let tree = bulk_load(
            pool,
            (0..5000u32).map(|i| (i.to_be_bytes().to_vec(), vec![b'v'; (i % 700) as usize])),
        )
        .unwrap();
        for i in (0..5000u32).step_by(313) {
            assert_eq!(
                tree.get(&i.to_be_bytes()).unwrap().unwrap().len(),
                (i % 700) as usize
            );
        }
        std::fs::remove_file(&path).ok();
    }
}
