//! The store: a single file holding many named B+trees (tables) plus a
//! catalog on the meta page.
//!
//! TReX keeps its four tables — `Elements`, `PostingLists`, `RPLs`, `ERPLs` —
//! as tables of one store, mirroring the paper's use of BerkeleyDB databases
//! inside one environment.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::btree::{BTree, Cursor};
use crate::buffer::BufferPool;
use crate::error::{Result, StorageError};
use crate::page::{PageId, HEADER_LEN, PAGE_SIZE};
use crate::pager::Pager;

const MAGIC: &[u8; 8] = b"TREXSTOR";
const VERSION: u16 = 1;
/// Longest table name storable in the catalog.
pub const MAX_TABLE_NAME: usize = 64;

type Catalog = Arc<Mutex<HashMap<String, PageId>>>;

/// A store file: buffer pool + table catalog.
pub struct Store {
    pool: Arc<BufferPool>,
    catalog: Catalog,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("pages", &self.pool.page_count())
            .field("tables", &self.table_names())
            .finish()
    }
}

impl Store {
    /// Creates a new store file (truncating an existing one), with a buffer
    /// pool of `pool_capacity` pages.
    pub fn create(path: &Path, pool_capacity: usize) -> Result<Store> {
        let pager = Pager::create(path)?;
        let pool = Arc::new(BufferPool::new(pager, pool_capacity));
        let store = Store {
            pool,
            catalog: Arc::new(Mutex::new(HashMap::new())),
        };
        store.write_meta()?;
        Ok(store)
    }

    /// Opens an existing store file.
    pub fn open(path: &Path, pool_capacity: usize) -> Result<Store> {
        let mut pager = Pager::open(path)?;
        let (catalog, free_head) = {
            let mut meta = crate::page::PageBuf::zeroed();
            pager.read_page(0, &mut meta)?;
            Self::parse_meta(meta.bytes())?
        };
        pager.set_free_head(free_head);
        let pool = Arc::new(BufferPool::new(pager, pool_capacity));
        Ok(Store {
            pool,
            catalog: Arc::new(Mutex::new(catalog)),
        })
    }

    fn parse_meta(bytes: &[u8; PAGE_SIZE]) -> Result<(HashMap<String, PageId>, PageId)> {
        let payload = &bytes[HEADER_LEN..];
        if &payload[..8] != MAGIC {
            return Err(StorageError::Corrupt("bad store magic".into()));
        }
        let version = u16::from_le_bytes([payload[8], payload[9]]);
        if version != VERSION {
            return Err(StorageError::Corrupt(format!(
                "unsupported store version {version}"
            )));
        }
        let free_head = u32::from_le_bytes(payload[10..14].try_into().unwrap());
        let count = u16::from_le_bytes([payload[14], payload[15]]) as usize;
        let mut catalog = HashMap::with_capacity(count);
        let mut off = 16usize;
        for _ in 0..count {
            let name_len = payload[off] as usize;
            off += 1;
            let name = std::str::from_utf8(&payload[off..off + name_len])
                .map_err(|_| StorageError::Corrupt("non-utf8 table name".into()))?
                .to_string();
            off += name_len;
            let root = u32::from_le_bytes(payload[off..off + 4].try_into().unwrap());
            off += 4;
            catalog.insert(name, root);
        }
        Ok((catalog, free_head))
    }

    fn write_meta(&self) -> Result<()> {
        let catalog = self.catalog.lock();
        let mut payload = Vec::with_capacity(PAGE_SIZE - HEADER_LEN);
        payload.extend_from_slice(MAGIC);
        payload.extend_from_slice(&VERSION.to_le_bytes());
        let free_head = self.pool.free_head();
        payload.extend_from_slice(&free_head.to_le_bytes());
        payload.extend_from_slice(&(catalog.len() as u16).to_le_bytes());
        let mut names: Vec<_> = catalog.iter().collect();
        names.sort(); // deterministic on-disk layout
        for (name, root) in names {
            payload.push(name.len() as u8);
            payload.extend_from_slice(name.as_bytes());
            payload.extend_from_slice(&root.to_le_bytes());
        }
        if payload.len() > PAGE_SIZE - HEADER_LEN {
            return Err(StorageError::CatalogFull);
        }
        drop(catalog);

        let meta = self.pool.fetch(0)?;
        {
            let mut buf = meta.buf.write();
            buf.bytes_mut()[HEADER_LEN..HEADER_LEN + payload.len()].copy_from_slice(&payload);
        }
        meta.mark_dirty();
        Ok(())
    }

    /// Creates a new empty table. Errors if the name exists or is too long.
    pub fn create_table(&self, name: &str) -> Result<Table> {
        if name.len() > MAX_TABLE_NAME {
            return Err(StorageError::KeyTooLarge(name.len()));
        }
        {
            let catalog = self.catalog.lock();
            if catalog.contains_key(name) {
                return Err(StorageError::TableExists(name.to_string()));
            }
        }
        let tree = BTree::create(self.pool.clone())?;
        self.catalog.lock().insert(name.to_string(), tree.root());
        Ok(Table {
            name: name.to_string(),
            tree,
            catalog: self.catalog.clone(),
        })
    }

    /// Creates a new table bulk-loaded from strictly ascending entries —
    /// far faster than repeated [`Table::insert`] for pre-sorted data (the
    /// posting lists are written this way).
    pub fn create_table_bulk(
        &self,
        name: &str,
        entries: impl Iterator<Item = (Vec<u8>, Vec<u8>)>,
    ) -> Result<Table> {
        if name.len() > MAX_TABLE_NAME {
            return Err(StorageError::KeyTooLarge(name.len()));
        }
        if self.catalog.lock().contains_key(name) {
            return Err(StorageError::TableExists(name.to_string()));
        }
        let tree = crate::btree::bulk_load(self.pool.clone(), entries)?;
        self.catalog.lock().insert(name.to_string(), tree.root());
        Ok(Table {
            name: name.to_string(),
            tree,
            catalog: self.catalog.clone(),
        })
    }

    /// Opens an existing table by name.
    pub fn open_table(&self, name: &str) -> Result<Table> {
        let root = self
            .catalog
            .lock()
            .get(name)
            .copied()
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))?;
        Ok(Table {
            name: name.to_string(),
            tree: BTree::open(self.pool.clone(), root),
            catalog: self.catalog.clone(),
        })
    }

    /// Opens the table, creating it if absent.
    pub fn open_or_create_table(&self, name: &str) -> Result<Table> {
        match self.open_table(name) {
            Ok(t) => Ok(t),
            Err(StorageError::UnknownTable(_)) => self.create_table(name),
            Err(e) => Err(e),
        }
    }

    /// Whether a table with this name exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.catalog.lock().contains_key(name)
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.catalog.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Drops a table: removes it from the catalog and frees its pages.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let root = self
            .catalog
            .lock()
            .remove(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))?;
        BTree::open(self.pool.clone(), root).destroy()
    }

    /// Persists the catalog and all dirty pages.
    pub fn flush(&self) -> Result<()> {
        self.write_meta()?;
        self.pool.flush()
    }

    /// The shared buffer pool (exposed for I/O statistics in benchmarks).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The storage-layer observability counters (shared across the pager,
    /// buffer pool, and every B+-tree of this store).
    pub fn counters(&self) -> &Arc<trex_obs::StorageCounters> {
        self.pool.counters()
    }

    /// Total pages in the store file — the disk-space measure used by the
    /// self-managing advisor (paper §4: `S_RPL`, `S_ERPL` are measured in
    /// disk space consumed).
    pub fn page_count(&self) -> u32 {
        self.pool.page_count()
    }
}

/// A named ordered (key → value) table inside a [`Store`].
pub struct Table {
    name: String,
    tree: BTree,
    catalog: Catalog,
}

impl Table {
    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Inserts `key -> value`, replacing an existing binding.
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        let before = self.tree.root();
        self.tree.insert(key, value)?;
        let after = self.tree.root();
        if before != after {
            self.catalog.lock().insert(self.name.clone(), after);
        }
        Ok(())
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.tree.get(key)
    }

    /// Removes `key`; returns whether it was present.
    pub fn delete(&mut self, key: &[u8]) -> Result<bool> {
        self.tree.delete(key)
    }

    /// Cursor at the first entry with key `>= key`.
    pub fn seek(&self, key: &[u8]) -> Result<Cursor> {
        self.tree.seek(key)
    }

    /// Cursor at the smallest key.
    pub fn scan(&self) -> Result<Cursor> {
        self.tree.scan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("trex-store-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn tables_survive_reopen() {
        let path = temp("reopen");
        {
            let store = Store::create(&path, 64).unwrap();
            let mut t = store.create_table("elements").unwrap();
            for i in 0..500u32 {
                t.insert(&i.to_be_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
            store.flush().unwrap();
        }
        let store = Store::open(&path, 64).unwrap();
        let t = store.open_table("elements").unwrap();
        assert_eq!(t.get(&42u32.to_be_bytes()).unwrap().unwrap(), b"v42");
        assert_eq!(t.get(&499u32.to_be_bytes()).unwrap().unwrap(), b"v499");
        assert!(t.get(&500u32.to_be_bytes()).unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn create_duplicate_table_fails() {
        let path = temp("dup");
        let store = Store::create(&path, 64).unwrap();
        store.create_table("t").unwrap();
        assert!(matches!(
            store.create_table("t"),
            Err(StorageError::TableExists(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_table_errors() {
        let path = temp("unknown");
        let store = Store::create(&path, 64).unwrap();
        assert!(matches!(
            store.open_table("nope"),
            Err(StorageError::UnknownTable(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn drop_table_frees_pages_for_reuse() {
        let path = temp("drop");
        let store = Store::create(&path, 64).unwrap();
        let mut t = store.create_table("big").unwrap();
        for i in 0..3000u32 {
            t.insert(&i.to_be_bytes(), &[0u8; 64]).unwrap();
        }
        drop(t);
        let pages_before = store.page_count();
        store.drop_table("big").unwrap();
        assert!(!store.has_table("big"));
        // Recreating a similar table should not grow the file much, since
        // freed pages are reused.
        let mut t2 = store.create_table("big2").unwrap();
        for i in 0..3000u32 {
            t2.insert(&i.to_be_bytes(), &[0u8; 64]).unwrap();
        }
        assert!(store.page_count() <= pages_before + 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn catalog_tracks_root_splits_across_reopen() {
        let path = temp("rootsplit");
        {
            let store = Store::create(&path, 64).unwrap();
            let mut t = store.create_table("t").unwrap();
            // Enough entries to split the root several times.
            for i in 0..20_000u32 {
                t.insert(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
            }
            store.flush().unwrap();
        }
        let store = Store::open(&path, 64).unwrap();
        let t = store.open_table("t").unwrap();
        for i in (0..20_000u32).step_by(997) {
            assert_eq!(t.get(&i.to_be_bytes()).unwrap().unwrap(), i.to_le_bytes());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn table_names_are_sorted() {
        let path = temp("names");
        let store = Store::create(&path, 64).unwrap();
        store.create_table("zeta").unwrap();
        store.create_table("alpha").unwrap();
        assert_eq!(store.table_names(), vec!["alpha", "zeta"]);
        std::fs::remove_file(&path).ok();
    }
}
